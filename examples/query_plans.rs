//! Figure 4 reproduced: the operator tree for the paper's running COMP
//! query, plus the plans of each engine tier.

use ftsl::core::Ftsl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Ftsl::from_texts(&[
        "usability of a software measures how well the software supports users.\n\n\
         more on the usability of this software follows",
    ]);

    // Section 5.4's example: usability and software in the same paragraph,
    // not in the same sentence, within 5 words.
    let figure4 = "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' \
                   AND samepara(p1,p2) AND distance(p1,p2,5))";
    println!("=== Figure 4 query (positive predicates -> PPRED streaming plan) ===");
    println!("{}", engine.explain(figure4)?);

    let with_negation = "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' \
                         AND not_samesent(p1,p2) AND distance(p1,p2,5))";
    println!("=== with a negative predicate (NPRED) ===");
    println!("{}", engine.explain(with_negation)?);

    let comp_only = "SOME p1 (p1 HAS 'usability' AND NOT distance(p1,p1,0)) \
                     OR EVERY p2 (p2 HAS 'software')";
    println!("=== COMP-only query (materialized algebra) ===");
    println!("{}", engine.explain(comp_only)?);

    let bool_query = "('software' AND 'users' AND NOT 'testing') OR 'usability'";
    println!("=== BOOL query (doc-id merges) ===");
    println!("{}", engine.explain(bool_query)?);

    Ok(())
}
