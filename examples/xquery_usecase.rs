//! The paper's motivating Example 1 (XQuery Full-Text Use Case 10.4):
//!
//! > Given an XML document that contains book and article elements, find the
//! > book elements containing "efficient" and the phrase "task completion"
//! > in that order with at most 10 intervening tokens.
//!
//! The search context (book vs. article) is selected outside the full-text
//! language — here by indexing only the book elements — and the full-text
//! condition combines Boolean AND, phrase matching, order, and distance:
//! exactly the primitives COMP expresses and BOOL/DIST cannot.

use ftsl::core::Ftsl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Context nodes: book elements (their text content).
    let books = [
        // Satisfies everything: efficient ... task completion, in order,
        // within 10 intervening tokens.
        "this book presents an efficient approach to planning so that task \
         completion becomes routine",
        // Phrase present but before "efficient": order violated.
        "task completion strategies: how to be efficient at work",
        // Both words, but "task ... completion" is not a phrase.
        "efficient management of every task requires eventual completion of plans",
        // Too far apart: more than 10 intervening tokens.
        "an efficient method, developed over many years of careful and patient \
         experimentation across domains, guarantees task completion",
    ];
    let engine = Ftsl::from_texts(&books);

    // Use Case 10.4 in COMP. The phrase "task completion" is adjacency
    // (distance 0 + order); the window constraint applies between
    // "efficient" and the phrase start.
    let query = "SOME p1 SOME p2 SOME p3 (\
                   p1 HAS 'efficient' AND p2 HAS 'task' AND p3 HAS 'completion' \
                   AND ordered(p2, p3) AND distance(p2, p3, 0) \
                   AND ordered(p1, p2) AND distance(p1, p2, 10))";

    let hits = engine.search(query)?;
    println!(
        "use case 10.4 matches: {:?} (engine: {})",
        hits.node_ids(),
        hits.engine
    );
    for id in hits.node_ids() {
        println!(
            "  book {id}: {}...",
            &books[id as usize][..60.min(books[id as usize].len())]
        );
    }
    assert_eq!(hits.node_ids(), vec![0]);

    // For contrast: what the weaker languages see.
    let bool_hits = engine.search("'efficient' AND 'task' AND 'completion'")?;
    println!(
        "\nBOOL conjunction (no order/distance): {:?} — over-matches",
        bool_hits.node_ids()
    );
    let dist_hits = engine.search("dist('task', 'completion', 0)")?;
    println!(
        "DIST phrase only (no order w.r.t. 'efficient'): {:?}",
        dist_hits.node_ids()
    );

    println!("\nexecution plan:\n{}", engine.explain(query)?);
    Ok(())
}
