//! Live segmented indexing: add and delete documents while serving every
//! query language, then persist the segment set and reload it.
//!
//! ```sh
//! cargo run --example live_updates
//! ```

use ftsl::core::{LiveConfig, LiveFtsl, RankModel};
use ftsl::index::{manifest, LiveIndex};
use ftsl::model::NodeId;

fn main() {
    // A live engine: writes buffer in memory, flushes seal them into
    // immutable segments, deletes tombstone, a background thread compacts.
    let engine = LiveFtsl::with_config(LiveConfig {
        flush_threshold: 4, // tiny, so this demo produces several segments
        ..LiveConfig::default()
    });

    println!("== writes ==");
    let ids: Vec<NodeId> = [
        "usability of a software measures how well the software supports users",
        "an efficient algorithm for task completion",
        "software task completion with efficient usability testing",
        "information retrieval systems rank documents by relevance",
        "full text search languages trade expressiveness for performance",
        "usability testing is part of software engineering practice",
    ]
    .iter()
    .map(|text| engine.add(text))
    .collect();
    println!(
        "added {} documents, ids {:?}..{:?}",
        ids.len(),
        ids[0],
        ids[5]
    );

    // Every engine of the paper runs over the live snapshot: BOOL...
    let hits = engine.search("'software' AND 'usability'").unwrap();
    println!("BOOL  'software' AND 'usability' -> {:?}", hits.node_ids());
    // ...positional predicates (PPRED)...
    let hits = engine
        .search(
            "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' \
             AND ordered(p1,p2) AND distance(p1,p2,0))",
        )
        .unwrap();
    println!("PPRED task..completion adjacent -> {:?}", hits.node_ids());
    // ...and ranked retrieval with collection-wide statistics.
    let top = engine
        .search_top_k("'software' OR 'usability'", RankModel::TfIdf, 3)
        .unwrap();
    println!("top-3 tf-idf:");
    for (node, score) in &top.hits {
        println!("  {score:.5}  node {}", node.0);
    }

    println!("\n== deletes are visible immediately; ids stay stable ==");
    engine.delete(ids[0]);
    let hits = engine.search("'software' AND 'usability'").unwrap();
    println!("after delete(0)              -> {:?}", hits.node_ids());
    let replacement = engine.add("a replacement document about software usability");
    println!("replacement got fresh id       {:?}", replacement);

    println!("\n== segments ==");
    engine.flush();
    for r in engine.segment_reports() {
        println!(
            "segment {:>2}: {} docs, {} tombstones, live ratio {:.2}, {}B resident",
            r.id,
            r.docs,
            r.tombstones,
            r.live_ratio(),
            r.resident_bytes
        );
    }
    // A held snapshot pins its view while the collection moves on.
    let pinned = engine.snapshot();
    engine.delete(ids[2]);
    println!(
        "pinned snapshot still sees {} live docs; fresh queries see {}",
        pinned.live_doc_count(),
        engine.snapshot().live_doc_count()
    );

    // Compact: tombstoned documents are physically dropped, survivors keep
    // their global ids.
    engine.merge();
    let reports = engine.segment_reports();
    println!(
        "after merge: {} segment(s), {} tombstones",
        reports.len(),
        reports.iter().map(|r| r.tombstones).sum::<usize>()
    );

    println!("\n== manifest v8 round-trip ==");
    let bytes = manifest::encode(engine.live_index());
    println!("encoded manifest: {} bytes", bytes.len());
    let reloaded: LiveIndex = manifest::decode(bytes).expect("valid manifest");
    println!(
        "reloaded: {} live docs, {} segment(s); next add gets id {:?}",
        reloaded.live_doc_count(),
        reloaded.segment_count(),
        reloaded.add_document("added after reload")
    );
}
