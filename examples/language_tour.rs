//! A tour of the language hierarchy (Figure 3): the same corpus queried at
//! every expressiveness level, showing the classifier, the dispatched
//! engine, and the work counters.

use ftsl::core::Ftsl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Ftsl::from_texts(&[
        "the usability test went well. the test of the software followed",
        "software usability depends on testing",
        "a test is a test",
        "usability and nothing else",
        "software. software! software? and a test",
    ]);

    let queries: &[(&str, &str)] = &[
        ("BOOL-NONEG", "'test' AND 'usability' OR 'software'"),
        ("BOOL", "NOT 'test' AND ANY"),
        ("DIST", "dist('usability', 'test', 3)"),
        (
            "PPRED",
            "SOME p1 SOME p2 (p1 HAS 'software' AND p2 HAS 'test' AND samesent(p1,p2))",
        ),
        (
            "NPRED",
            "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'test' AND diffpos(p1,p2))",
        ),
        ("COMP", "EVERY p1 (p1 HAS 'software' OR p1 HAS 'test')"),
    ];

    println!(
        "{:<12} {:<22} {:<8} {:>8} {:>10} {:>8}",
        "expected", "matched nodes", "engine", "entries", "positions", "tuples"
    );
    println!("{}", "-".repeat(74));
    for (expected, q) in queries {
        let out = engine.search(q)?;
        println!(
            "{:<12} {:<22} {:<8} {:>8} {:>10} {:>8}",
            format!("{expected}/{}", out.class),
            format!("{:?}", out.node_ids()),
            out.engine.to_string(),
            out.counters.entries,
            out.counters.positions,
            out.counters.tuples,
        );
    }

    println!();
    println!("Each level adds expressiveness at a complexity price (Figure 3):");
    println!("BOOL merges doc-id lists; PPRED adds positional predicates in a single");
    println!("scan; NPRED pays per-ordering scans for negation; COMP materializes");
    println!("the full algebra and is the only engine for EVERY/general predicates.");
    Ok(())
}
