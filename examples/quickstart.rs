//! Quickstart: index a few documents and query them in all three languages.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftsl::core::{Ftsl, RankModel};
use ftsl::exec::engine::EngineKind;
use ftsl::lang::Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The corpus: the paper's Figure 1 book element plus a few articles.
    let engine = Ftsl::from_texts(&[
        ftsl::model::corpus::figure1_book_text(),
        "an efficient algorithm guarantees task completion in bounded time",
        "software testing requires careful usability testing of the software",
        "completion of the task was efficient. the software helped",
    ]);

    println!("indexed {} documents", engine.corpus().len());
    let stats = engine.index().stats();
    println!(
        "index: vocabulary={} entries_per_token<={} pos_per_entry<={}\n",
        stats.vocabulary, stats.entries_per_token, stats.pos_per_entry
    );

    // BOOL: keyword conjunction with negation (Section 4.1).
    let hits = engine.search_with(
        "'software' AND NOT 'algorithm'",
        Mode::Bool,
        EngineKind::Auto,
    )?;
    println!(
        "BOOL  'software' AND NOT 'algorithm'   -> nodes {:?} via {}",
        hits.node_ids(),
        hits.engine
    );

    // DIST: proximity search (Section 4.2).
    let hits = engine.search_with(
        "dist('task', 'completion', 0)",
        Mode::Dist,
        EngineKind::Auto,
    )?;
    println!(
        "DIST  dist('task','completion',0)      -> nodes {:?} via {}",
        hits.node_ids(),
        hits.engine
    );

    // COMP: position variables and predicates (Section 4.3).
    let comp = "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' \
                AND samepara(p1,p2) AND distance(p1,p2,5))";
    let hits = engine.search(comp)?;
    println!(
        "COMP  usability near software          -> nodes {:?} via {}",
        hits.node_ids(),
        hits.engine
    );

    // Ranked retrieval with the Section 3 scoring framework.
    let ranked = engine.search_ranked("'software' AND 'usability'", RankModel::TfIdf)?;
    println!("\nTF-IDF ranking for 'software' AND 'usability':");
    for (node, score) in &ranked.hits {
        println!("  node {node}: {score:.5}");
    }

    // How a query is executed.
    println!("\n{}", engine.explain(comp)?);
    Ok(())
}
