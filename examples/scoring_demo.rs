//! The Section 3 scoring framework in action: TF-IDF (3.1) and the
//! probabilistic relational algebra (3.2) ranking the same result sets,
//! plus the scored BOOL engine of Section 5.3.

use ftsl::core::{Ftsl, RankModel};
use ftsl::lang::{parse, Mode};
use ftsl::scoring::bool_scores::run_bool_scored;
use ftsl::scoring::classic::classic_tfidf;
use ftsl::scoring::{PraModel, ScoreStats, TfIdfModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Ftsl::from_texts(&[
        "usability",                                            // short, focused
        "usability usability usability of software interfaces", // repetitive
        "software usability in long documents about many other topics entirely",
        "software engineering without the other keyword",
        "unrelated text",
    ]);

    println!("== TF-IDF ranking (propagated through the algebra) ==");
    let ranked = engine.search_ranked("'usability' AND 'software'", RankModel::TfIdf)?;
    for (node, score) in &ranked.hits {
        println!("  node {node}: {score:.5}");
    }

    // Theorem 2, demonstrated: the propagated scores equal classic cosine
    // TF-IDF for conjunctive queries.
    let stats = ScoreStats::compute(engine.corpus(), engine.index());
    let model = TfIdfModel::for_query(&["usability", "software"], engine.corpus(), &stats);
    let classic = classic_tfidf(&["usability", "software"], engine.corpus(), &stats, &model);
    println!("\n== classic cosine TF-IDF (the Theorem 2 oracle) ==");
    for (node, score) in &classic {
        println!("  node {node}: {score:.5}");
    }
    for (node, score) in &ranked.hits {
        let reference = classic.iter().find(|(n, _)| n == node).unwrap().1;
        assert!((score - reference).abs() < 1e-9, "Theorem 2 violated!");
    }
    println!("(propagated == classic on the conjunctive result set ✓)");

    println!("\n== probabilistic (PRA) ranking ==");
    let ranked = engine.search_ranked("'usability' AND 'software'", RankModel::Pra)?;
    for (node, score) in &ranked.hits {
        println!("  node {node}: {score:.5}");
    }

    println!("\n== scored BOOL merge engine (Section 5.3) ==");
    let q = parse("'usability' OR 'software'", Mode::Bool).expect("parses");
    let pra = PraModel::new(engine.corpus(), &stats);
    let scored =
        run_bool_scored(&q, engine.corpus(), engine.index(), &stats, &pra).expect("bool query");
    for (node, score) in &scored {
        println!("  node {node}: {score:.5}");
    }
    Ok(())
}
