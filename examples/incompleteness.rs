//! Executable witnesses of the incompleteness theorems (Section 4).
//!
//! * **Theorem 3**: BOOL cannot express "contains a token that is not t1"
//!   when the token set is infinite. We build the proof's two context nodes
//!   CN1/CN2 and show COMP separating them while BOOL queries over any fixed
//!   token set cannot.
//! * **Theorem 5**: DIST cannot express "t1 and t2 occur NOT next to each
//!   other at least once"; same construction.
//! * **Theorem 4** (the positive result): over a *finite* alphabet, every
//!   restricted calculus query has a BOOL equivalent — we run the paper's
//!   normalization pipeline and print the (blown-up) BOOL query it emits.

use ftsl::calculus::bool_complete::to_bool;
use ftsl::calculus::normalize::normalize;
use ftsl::core::Ftsl;
use ftsl::lang::{lower, parse, Mode};
use ftsl::predicates::PredicateRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reg = PredicateRegistry::with_builtins();

    println!("== Theorem 3: BOOL is incomplete ==");
    // CN1 contains only t1; CN2 contains t1 and a token outside any fixed
    // BOOL query's vocabulary.
    let engine = Ftsl::from_texts(&["t1", "t1 zebra"]);
    let comp = "SOME p1 (NOT p1 HAS 't1')";
    let hits = engine.search(comp)?;
    println!("COMP  {comp}");
    println!(
        "      separates CN1 from CN2: matches {:?}",
        hits.node_ids()
    );
    assert_eq!(hits.node_ids(), vec![1]);
    // Any BOOL query built from tokens {t1, t2, ...} that doesn't mention
    // 'zebra' treats CN1 and CN2 identically (the proof's induction):
    for bool_q in [
        "'t1'",
        "NOT 't1'",
        "'t1' AND NOT 't2'",
        "'t2' OR NOT 't1'",
        "ANY",
    ] {
        let r = engine.search_with(bool_q, Mode::Bool, ftsl::exec::EngineKind::Bool)?;
        let ids = r.node_ids();
        assert_eq!(
            ids.contains(&0),
            ids.contains(&1),
            "BOOL query {bool_q} unexpectedly separated CN1/CN2"
        );
        println!("BOOL  {bool_q:<22} -> {ids:?}  (cannot separate)");
    }

    println!("\n== Theorem 5: DIST is incomplete ==");
    // CN1 = t1 t2 t1; CN2 = t1 t2 t1 t2. Only CN2 has t1,t2 NOT adjacent.
    let engine = Ftsl::from_texts(&["t1 t2 t1", "t1 t2 t1 t2"]);
    let comp = "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1,p2,0))";
    let hits = engine.search(comp)?;
    println!("COMP  {comp}");
    println!("      matches {:?}", hits.node_ids());
    assert_eq!(hits.node_ids(), vec![1]);
    for dist_q in ["dist('t1','t2',0)", "dist('t1','t2',5)", "'t1' AND 't2'"] {
        let r = engine.search_with(dist_q, Mode::Dist, ftsl::exec::EngineKind::Auto)?;
        let ids = r.node_ids();
        assert_eq!(ids.contains(&0), ids.contains(&1));
        println!("DIST  {dist_q:<22} -> {ids:?}  (cannot separate)");
    }

    println!("\n== Theorem 4: BOOL is complete over a finite alphabet ==");
    let alphabet: Vec<String> = ["t1", "t2", "t3", "t4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let surface = parse("SOME p1 (NOT p1 HAS 't1')", Mode::Comp)?;
    let expr = lower(&surface, &reg)?;
    let prop = normalize(&expr).expect("restricted query normalizes");
    let bool_query = to_bool(&prop, &alphabet);
    println!("calculus:  ∃p ¬hasToken(p, t1)   over T = {alphabet:?}");
    println!("BOOL:      {}", bool_query.render());
    println!(
        "(the complement must enumerate the alphabet — {} nodes of query AST,",
        bool_query.size()
    );
    println!(" which is why the paper calls this construction impractical)");
    Ok(())
}
