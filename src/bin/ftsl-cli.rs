//! `ftsl-cli` — a small command-line search shell over the library.
//!
//! ```text
//! ftsl-cli [--analyzed] [--blocks-only] [--live] [<file>...]
//! ```
//!
//! Each file is indexed as one context node. `--blocks-only` serves from
//! the compressed blocks alone (single residency). `--live` starts the
//! **live engine** instead of a frozen index: documents can be added and
//! deleted at any time (`:add`, `:delete`), the write buffer can be sealed
//! (`:flush`), segments compacted (`:merge`), and `:stats` reports the
//! per-segment footprint, live-document ratio, and tombstone counts.
//!
//! Then type queries (BOOL/DIST/COMP syntax) on stdin, one per line.
//! Commands: `:explain <query>` (an `EXPLAIN ANALYZE` profile — the span
//! tree with per-stage wall time, cursor counter deltas, and pair-path
//! vs position-intersection attribution), `:rank <query>`,
//! `:top <k> <query>`, `:near <k> <bound> <a> <b>` (proximity-ranked NEAR
//! via the word-pair auxiliary index; `:stats` shows pair coverage and how
//! many postings came off pair lists), `:stats`, `:quit`, and in live mode
//! `:add <text>`,
//! `:delete <node>`, `:flush`, `:merge`, plus the serving front door:
//! `:serve <n>` starts (or resizes) a worker pool with a shared result
//! cache — plain queries and `:top` then go through it — `:serve 0`
//! stops it, and `:bench-load [requests]` runs a short closed-loop mixed
//! read/write load against the pool and prints QPS and latency
//! percentiles. With a pool active, `:stats` adds per-worker served/hit
//! counts and the cache's hit rate, `:metrics` dumps the pool's metrics
//! registry as Prometheus text, and `:slow [n]` shows the most recent
//! slow-query log entries (`:slow-threshold <µs>` adjusts the cutoff at
//! runtime; 0 disables capture).

use ftsl_core::{Ftsl, LiveConfig, LiveFtsl, RankModel, Residency};
use ftsl_index::AccessCounters;
use ftsl_model::analysis::AnalysisConfig;
use ftsl_model::NodeId;
use ftsl_serve::{QueryRequest, ServeConfig, ServePool, ServePoolExt};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut analyzed = false;
    let mut blocks_only = false;
    let mut live = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--analyzed" => analyzed = true,
            "--blocks-only" => blocks_only = true,
            "--live" => live = true,
            "--help" | "-h" => {
                eprintln!("usage: ftsl-cli [--analyzed] [--blocks-only] [--live] [<file>...]");
                return;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() && !live {
        eprintln!("usage: ftsl-cli [--analyzed] [--blocks-only] [--live] [<file>...]");
        eprintln!("(a frozen index needs at least one file; --live may start empty)");
        std::process::exit(2);
    }
    if live && blocks_only {
        // Refuse rather than silently ignore: live segments are served
        // dual-resident today, so the flag would not do what it promises.
        eprintln!(
            "--blocks-only applies to the frozen index only (live segments are dual-resident)"
        );
        std::process::exit(2);
    }

    let mut texts = Vec::new();
    let mut names = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                texts.push(text);
                names.push(path.clone());
            }
            Err(e) => {
                eprintln!("skipping {path}: {e}");
            }
        }
    }

    if live {
        run_live(&texts, names, analyzed);
    } else {
        run_frozen(&texts, names, analyzed, blocks_only);
    }
}

/// Read stdin lines and hand them to `handle` until EOF or `:quit`.
fn repl(mut handle: impl FnMut(&str) -> Result<(), Box<dyn std::error::Error>>) {
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        eprint!("ftsl> ");
        line.clear();
        let Ok(n) = stdin.lock().read_line(&mut line) else {
            break;
        };
        if n == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if let Err(e) = handle(input) {
            eprintln!("error: {e}");
        }
        if input == ":quit" {
            break;
        }
    }
}

fn run_frozen(texts: &[String], names: Vec<String>, analyzed: bool, blocks_only: bool) {
    let mut engine = if analyzed {
        Ftsl::from_texts_analyzed(texts, AnalysisConfig::english())
    } else {
        Ftsl::from_texts(texts)
    };
    if blocks_only {
        engine.set_residency(Residency::BlocksOnly);
    }
    let stats = engine.index().stats();
    eprintln!(
        "indexed {} documents ({} terms, {} max positions/node, {})",
        engine.corpus().len(),
        stats.vocabulary,
        stats.pos_per_cnode,
        engine.index().residency()
    );
    eprintln!("enter queries (:help for commands)");
    let mut stdout = std::io::stdout();
    let mut last_counters: Option<AccessCounters> = None;
    repl(|input| dispatch(&engine, input, &names, &mut stdout, &mut last_counters));
}

fn run_live(texts: &[String], names: Vec<String>, analyzed: bool) {
    let engine = Arc::new(if analyzed {
        LiveFtsl::from_texts_analyzed(texts, AnalysisConfig::english(), LiveConfig::default())
    } else {
        LiveFtsl::from_texts_with(texts, LiveConfig::default())
    });
    eprintln!(
        "live engine: {} seeded documents, background merge on (:help for commands)",
        texts.len()
    );
    let mut stdout = std::io::stdout();
    let mut last_counters: Option<AccessCounters> = None;
    let mut pool: Option<ServePool> = None;
    repl(|input| {
        dispatch_live(
            &engine,
            input,
            &names,
            &mut stdout,
            &mut last_counters,
            &mut pool,
        )
    });
}

/// Display handle for a global node id: the seeding file name while the id
/// falls in the seeded range, `node N` for documents added live.
fn node_name(names: &[String], node: NodeId) -> String {
    names
        .get(node.index())
        .cloned()
        .unwrap_or_else(|| format!("node {}", node.0))
}

fn print_last_counters(
    out: &mut impl Write,
    last_counters: &Option<AccessCounters>,
) -> std::io::Result<()> {
    match last_counters {
        Some(c) => writeln!(
            out,
            "last query: {} entries decoded ({} from pair lists), {} positions decoded, \
             {} positions consumed, {} entries / {} blocks / {} segments skipped",
            c.entries,
            c.pair_entries,
            c.positions_decoded,
            c.positions,
            c.skipped,
            c.blocks_skipped,
            c.segments_skipped
        ),
        None => writeln!(out, "last query: none yet"),
    }
}

/// One `pair index:` stats line for a segment's (or the frozen) index.
fn print_pair_stats(
    out: &mut impl Write,
    index: &ftsl_index::InvertedIndex,
) -> std::io::Result<()> {
    let p = index.pairs();
    let cfg = p.config();
    if cfg.window == 0 {
        return writeln!(out, "pair index: disabled");
    }
    writeln!(
        out,
        "pair index: {} keys, {} entries, window {}, df cutoff {}, {}B",
        p.num_keys(),
        p.num_entries(),
        cfg.window,
        cfg.df_cutoff,
        p.resident_bytes()
    )
}

/// `:slow [n]` — the most recent slow-query log entries (newest first),
/// each with its sequence number, wall time, cache disposition, and
/// counter summary; entries captured while the engine traces carry the
/// full span tree and render it indented underneath.
fn print_slow_log(
    out: &mut impl Write,
    log: &ftsl_serve::SlowLog,
    limit: usize,
) -> std::io::Result<()> {
    let threshold = log.threshold_us();
    if threshold == 0 {
        writeln!(
            out,
            "slow-query capture disabled (:slow-threshold <µs> to enable)"
        )?;
    } else {
        writeln!(
            out,
            "slow queries: {} over {}µs since start, last {} retained",
            log.total(),
            threshold,
            log.capacity()
        )?;
    }
    let entries = log.entries();
    if entries.is_empty() {
        writeln!(out, "(none captured)")?;
        return Ok(());
    }
    for e in entries.iter().take(limit) {
        writeln!(
            out,
            "#{:<4} {:>8}µs{}  {}",
            e.seq,
            e.micros,
            if e.cached { " [cached]" } else { "" },
            e.query
        )?;
        writeln!(out, "      {}", e.summary)?;
        if let Some(trace) = &e.trace {
            for line in trace.render().lines() {
                writeln!(out, "      {line}")?;
            }
        }
    }
    Ok(())
}

/// `:near <k> <bound> <first> <second>` argument parsing (shared by the
/// frozen and live shells).
fn parse_near(rest: &str) -> Result<(usize, u32, &str, &str), Box<dyn std::error::Error>> {
    let mut it = rest.split_whitespace();
    let usage = ":near needs <k> <bound> <first> <second>";
    let k: usize = it.next().ok_or(usage)?.parse()?;
    let bound: u32 = it.next().ok_or(usage)?.parse()?;
    let first = it.next().ok_or(usage)?;
    let second = it.next().ok_or(usage)?;
    Ok((k, bound, first, second))
}

fn print_near(
    out: &mut impl Write,
    names: &[String],
    ranked: &ftsl_core::ScoredOutput,
) -> std::io::Result<()> {
    for (node, score) in &ranked.hits {
        writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
    }
    let c = ranked.counters;
    writeln!(
        out,
        "[proximity: {} pair entries walked, {} positions decoded (fallback), \
         {} blocks / {} segments skipped]",
        c.pair_entries, c.positions_decoded, c.blocks_skipped, c.segments_skipped
    )
}

fn dispatch(
    engine: &Ftsl,
    input: &str,
    names: &[String],
    out: &mut impl Write,
    last_counters: &mut Option<AccessCounters>,
) -> Result<(), Box<dyn std::error::Error>> {
    if input == ":quit" {
        return Ok(());
    }
    if input == ":help" {
        writeln!(
            out,
            ":explain <q> | :rank <q> | :top <k> <q> | :near <k> <bound> <a> <b> | \
             :stats | :quit"
        )?;
        return Ok(());
    }
    if input == ":stats" {
        let s = engine.index().stats();
        writeln!(
            out,
            "cnodes={} vocabulary={} pos_per_cnode={} entries_per_token={} pos_per_entry={}",
            s.cnodes, s.vocabulary, s.pos_per_cnode, s.entries_per_token, s.pos_per_entry
        )?;
        writeln!(out, "residency: {}", engine.index().residency())?;
        // The footprint Display labels the numbers by residency: dual shows
        // compressed + decoded, blocks-only shows compressed + decode-cache.
        writeln!(out, "memory: {}", engine.index().memory_footprint())?;
        let c = engine.index().decode_cache_stats();
        writeln!(
            out,
            "decode cache: {} lists, {} hits / {} misses, {}B",
            c.lists, c.hits, c.misses, c.resident_bytes
        )?;
        print_pair_stats(out, engine.index())?;
        print_last_counters(out, last_counters)?;
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":near ") {
        let (k, bound, first, second) = parse_near(rest)?;
        let ranked = engine.search_near_top_k(first, second, bound, false, k);
        *last_counters = Some(ranked.counters);
        print_near(out, names, &ranked)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":explain ") {
        writeln!(out, "{}", engine.explain_analyze(q)?)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":rank ") {
        let ranked = engine.search_ranked(q, RankModel::TfIdf)?;
        // Exhaustive ranking reports no counters; clear the stale ones so
        // `:stats` never misattributes an older query's numbers.
        *last_counters = None;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":top ") {
        let (k, q) = rest.split_once(' ').ok_or(":top needs <k> <query>")?;
        let k: usize = k.parse()?;
        let ranked = engine.search_top_k(q, RankModel::TfIdf, k)?;
        // None on the exhaustive fallback path — recorded either way so
        // `:stats` reflects *this* query, not an older one.
        *last_counters = ranked.counters;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        if let Some(c) = ranked.counters {
            writeln!(
                out,
                "[streamed: {} entries decoded, {} entries / {} blocks pruned, \
                 {} segments skipped]",
                c.entries, c.skipped, c.blocks_skipped, c.segments_skipped
            )?;
        }
        return Ok(());
    }
    let results = engine.search(input)?;
    *last_counters = Some(results.counters);
    writeln!(
        out,
        "{} hit(s) [{} engine, {} class, {} entries read, {} positions decoded]",
        results.len(),
        results.engine,
        results.class,
        results.counters.entries,
        results.counters.positions_decoded
    )?;
    for node in &results.nodes {
        writeln!(out, "  {}", node_name(names, *node))?;
    }
    Ok(())
}

fn dispatch_live(
    engine: &Arc<LiveFtsl>,
    input: &str,
    names: &[String],
    out: &mut impl Write,
    last_counters: &mut Option<AccessCounters>,
    pool: &mut Option<ServePool>,
) -> Result<(), Box<dyn std::error::Error>> {
    if input == ":quit" {
        return Ok(());
    }
    if input == ":help" {
        writeln!(
            out,
            ":add <text> | :delete <node> | :flush | :merge | :explain <q> | \
             :rank <q> | :top <k> <q> | :near <k> <bound> <a> <b> | :serve <n> | \
             :bench-load [requests] | :metrics | :slow [n] | \
             :slow-threshold <µs> | :stats | :quit"
        )?;
        return Ok(());
    }
    if let Some(n) = input.strip_prefix(":serve ") {
        let workers: usize = n.trim().parse()?;
        if workers == 0 {
            *pool = None;
            writeln!(out, "serve pool stopped")?;
        } else {
            *pool = Some(engine.serve_pool(ServeConfig {
                workers,
                ..ServeConfig::default()
            }));
            writeln!(
                out,
                "serve pool: {workers} worker(s), result cache on; queries and :top \
                 now go through the pool"
            )?;
        }
        return Ok(());
    }
    if input == ":bench-load" || input.starts_with(":bench-load ") {
        let requests: usize = input
            .strip_prefix(":bench-load")
            .unwrap()
            .trim()
            .parse()
            .unwrap_or(2000);
        let Some(p) = pool.as_ref() else {
            writeln!(out, "no serve pool — start one with :serve <n> first")?;
            return Ok(());
        };
        bench_load(engine, p, requests, out)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":explain ") {
        writeln!(out, "{}", engine.explain_analyze(q)?)?;
        return Ok(());
    }
    if input == ":metrics" {
        let Some(p) = pool.as_ref() else {
            writeln!(out, "no serve pool — start one with :serve <n> first")?;
            return Ok(());
        };
        write!(out, "{}", p.metrics_text())?;
        return Ok(());
    }
    if input == ":slow" || input.starts_with(":slow ") {
        let Some(p) = pool.as_ref() else {
            writeln!(out, "no serve pool — start one with :serve <n> first")?;
            return Ok(());
        };
        let limit: usize = input
            .strip_prefix(":slow")
            .unwrap()
            .trim()
            .parse()
            .unwrap_or(usize::MAX);
        print_slow_log(out, p.slow_log(), limit)?;
        return Ok(());
    }
    if let Some(us) = input.strip_prefix(":slow-threshold ") {
        let Some(p) = pool.as_ref() else {
            writeln!(out, "no serve pool — start one with :serve <n> first")?;
            return Ok(());
        };
        let us: u64 = us.trim().parse()?;
        p.slow_log().set_threshold_us(us);
        if us == 0 {
            writeln!(out, "slow-query capture disabled")?;
        } else {
            writeln!(out, "slow-query threshold set to {us}µs")?;
        }
        return Ok(());
    }
    if let Some(text) = input.strip_prefix(":add ") {
        let node = engine.add(text);
        writeln!(out, "added node {}", node.0)?;
        return Ok(());
    }
    if let Some(id) = input.strip_prefix(":delete ") {
        let node = NodeId(id.trim().parse()?);
        if engine.delete(node) {
            writeln!(out, "deleted node {}", node.0)?;
        } else {
            writeln!(out, "node {} not found (or already deleted)", node.0)?;
        }
        return Ok(());
    }
    if input == ":flush" {
        let sealed = engine.flush();
        writeln!(
            out,
            "{}",
            if sealed {
                "write buffer sealed into a new segment"
            } else {
                "write buffer empty, nothing to flush"
            }
        )?;
        return Ok(());
    }
    if input == ":merge" {
        let merged = engine.merge();
        writeln!(
            out,
            "{}",
            if merged {
                "segments compacted"
            } else {
                "nothing to compact"
            }
        )?;
        return Ok(());
    }
    if input == ":stats" {
        let snapshot = engine.snapshot();
        let reports = snapshot.segment_reports();
        writeln!(
            out,
            "{} live docs, {} tombstones, {} segment(s), version {}",
            snapshot.live_doc_count(),
            snapshot.tombstone_count(),
            reports.len(),
            snapshot.version()
        )?;
        let mut total_bytes = 0usize;
        for r in &reports {
            total_bytes += r.resident_bytes;
            writeln!(
                out,
                "  segment {:>3}: {:>6} docs, {:>5} tombstones, live ratio {:.2}, \
                 {:>9}B ({}B pair lists)",
                r.id,
                r.docs,
                r.tombstones,
                r.live_ratio(),
                r.resident_bytes,
                r.pair_bytes
            )?;
        }
        writeln!(
            out,
            "  buffer: {} docs; total resident {}B",
            engine.live_index().buffered_docs(),
            total_bytes
        )?;
        // Pair-index coverage summed across the snapshot's segments.
        let (mut pair_keys, mut pair_entries, mut pair_bytes) = (0usize, 0u64, 0usize);
        for seg in snapshot.segments() {
            let p = seg.data().index().pairs();
            pair_keys += p.num_keys();
            pair_entries += p.num_entries();
            pair_bytes += p.resident_bytes();
        }
        writeln!(
            out,
            "pair index: {pair_keys} keys, {pair_entries} entries, {pair_bytes}B \
             across {} segment(s)",
            reports.len()
        )?;
        if let Some(p) = pool.as_ref() {
            let stats = p.stats();
            writeln!(
                out,
                "serve pool: {} worker(s), {} served, {} cache hits, \
                 {} pair-list postings",
                p.workers(),
                stats.served(),
                stats.cache_hits(),
                stats.pair_entries()
            )?;
            let lat = &stats.latency;
            if lat.count() > 0 {
                writeln!(
                    out,
                    "  latency: p50 {}µs p95 {}µs p99 {}µs max {}µs over {} request(s)",
                    lat.quantile(0.50),
                    lat.quantile(0.95),
                    lat.quantile(0.99),
                    lat.max,
                    lat.count()
                )?;
            }
            let slow = p.slow_log();
            writeln!(
                out,
                "  slow queries: {} over {}µs (:slow to inspect)",
                slow.total(),
                slow.threshold_us()
            )?;
            for (id, w) in stats.workers.iter().enumerate() {
                writeln!(
                    out,
                    "  worker {id}: {} served, {} hits, {} scratch reuses / {} allocs",
                    w.served, w.cache_hits, w.scratch_reused, w.scratch_allocated
                )?;
            }
            let c = stats.cache;
            writeln!(
                out,
                "result cache: {}/{} entries, {} hits / {} misses ({:.1}% hit rate), \
                 {} evictions",
                c.entries,
                c.capacity,
                c.hits,
                c.misses,
                100.0 * c.hit_rate(),
                c.evictions
            )?;
        }
        print_last_counters(out, last_counters)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":rank ") {
        let ranked = engine.search_ranked(q, RankModel::TfIdf)?;
        *last_counters = None;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":near ") {
        let (k, bound, first, second) = parse_near(rest)?;
        let (ranked, cached) = match pool.as_ref() {
            Some(p) => {
                let served = p.execute(QueryRequest::near(first, second, bound, false, k))?;
                let r = served
                    .answer
                    .as_near()
                    .expect("near request yields near answer")
                    .clone();
                (r, served.cached)
            }
            None => (
                engine.search_near_top_k(first, second, bound, false, k),
                false,
            ),
        };
        *last_counters = Some(ranked.counters);
        print_near(out, names, &ranked)?;
        if cached {
            writeln!(out, "[served from result cache]")?;
        }
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":top ") {
        let (k, q) = rest.split_once(' ').ok_or(":top needs <k> <query>")?;
        let k: usize = k.parse()?;
        let (ranked, cached) = match pool.as_ref() {
            Some(p) => {
                let served = p.execute(QueryRequest::top_k(q, RankModel::TfIdf, k))?;
                let r = served
                    .answer
                    .as_top_k()
                    .expect("top-k request yields top-k answer")
                    .clone();
                (r, served.cached)
            }
            None => (engine.search_top_k(q, RankModel::TfIdf, k)?, false),
        };
        *last_counters = ranked.counters;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        if cached {
            writeln!(out, "[served from result cache]")?;
        } else if let Some(c) = ranked.counters {
            writeln!(
                out,
                "[streamed: {} entries decoded, {} entries / {} blocks pruned, \
                 {} segments skipped]",
                c.entries, c.skipped, c.blocks_skipped, c.segments_skipped
            )?;
        }
        return Ok(());
    }
    let (results, cached) = match pool.as_ref() {
        Some(p) => {
            let served = p.execute(QueryRequest::search(input))?;
            let r = served
                .answer
                .as_search()
                .expect("search request yields search answer")
                .clone();
            (r, served.cached)
        }
        None => (engine.search(input)?, false),
    };
    *last_counters = Some(results.counters);
    writeln!(
        out,
        "{} hit(s) [{} engine, {} class, {} entries read across {} segment(s)]{}",
        results.len(),
        results.engine,
        results.class,
        results.counters.entries,
        engine.snapshot().num_segments(),
        if cached { " [cached]" } else { "" }
    )?;
    for node in &results.nodes {
        writeln!(out, "  {}", node_name(names, *node))?;
    }
    Ok(())
}

/// `:bench-load` — a short closed-loop load against the active pool: one
/// client per worker replays a skewed mix of BOOL and top-k queries over
/// the engine's own vocabulary while this thread churns a write every few
/// milliseconds, then QPS and latency percentiles come from the merged
/// per-request timings. (The full configurable harness is the
/// `load_serve` bench in `ftsl-bench`; this is its interactive sibling.)
fn bench_load(
    engine: &Arc<LiveFtsl>,
    pool: &ServePool,
    requests: usize,
    out: &mut impl Write,
) -> Result<(), Box<dyn std::error::Error>> {
    // Query mix from the indexed vocabulary: the most frequent terms of
    // the widest segment, skew-sampled so the cache has something to do.
    let snapshot = engine.snapshot();
    let terms: Vec<String> = snapshot
        .widest_interner()
        .map(|i| {
            (0..i.len().min(16))
                .map(|t| i.name(ftsl_model::TokenId(t as u32)).to_string())
                .collect()
        })
        .unwrap_or_default();
    if terms.is_empty() {
        writeln!(out, "nothing indexed yet — :add some documents first")?;
        return Ok(());
    }
    let queries: Vec<QueryRequest> = terms
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i % 2 == 0 {
                QueryRequest::search(&format!("'{t}'"))
            } else {
                QueryRequest::top_k(&format!("'{t}'"), RankModel::TfIdf, 10)
            }
        })
        .collect();
    let clients = pool.workers();
    let per_client = requests.div_ceil(clients);
    let before = pool.stats();
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    let mut state = (c as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    for _ in 0..per_client {
                        // xorshift* skew: square the draw so low indices
                        // (popular queries) dominate, Zipf-ish.
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                        let idx = ((u * u) * queries.len() as f64) as usize;
                        let req = queries[idx.min(queries.len() - 1)].clone();
                        let t = Instant::now();
                        let _ = pool.execute(req);
                        lat.push(t.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        // Writer churn while clients run: add + delete + flush.
        let added = engine.add("bench load churn document");
        engine.delete(added);
        engine.flush();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let after = pool.stats();
    let hits = after.cache_hits() - before.cache_hits();
    let served = after.served() - before.served();
    writeln!(
        out,
        "{} requests over {} client(s) in {:.1?}: {:.0} QPS; \
         p50 {}µs p95 {}µs p99 {}µs; {}/{} cache hits ({:.1}%)",
        latencies.len(),
        clients,
        wall,
        latencies.len() as f64 / wall.as_secs_f64(),
        pct(0.50),
        pct(0.95),
        pct(0.99),
        hits,
        served,
        100.0 * hits as f64 / served.max(1) as f64,
    )?;
    Ok(())
}
