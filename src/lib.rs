//! Facade crate for the `ftsl` workspace: re-exports the public API of every
//! subsystem so examples and integration tests can use a single import root.
pub use ftsl_algebra as algebra;
pub use ftsl_calculus as calculus;
pub use ftsl_core as core;
pub use ftsl_corpus as corpus;
pub use ftsl_exec as exec;
pub use ftsl_index as index;
pub use ftsl_lang as lang;
pub use ftsl_model as model;
pub use ftsl_obs as obs;
pub use ftsl_predicates as predicates;
pub use ftsl_scoring as scoring;
pub use ftsl_serve as serve;
