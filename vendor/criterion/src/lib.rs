//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `criterion_main!` —
//! with a plain time-and-print measurement loop (median of `sample_size`
//! samples after a warm-up period). No statistical analysis, plots, or
//! result persistence; numbers go to stdout, one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self, None, &id, &mut f);
        self
    }
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Time a closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(self.criterion, Some(&self.name), &id, &mut f);
        self
    }

    /// Time a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(self.criterion, Some(&self.name), &id, &mut |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the measured routine.
pub struct Bencher {
    mode: BenchMode,
    samples: Vec<Duration>,
}

enum BenchMode {
    WarmUp { until: Instant },
    Measure { samples: usize },
}

impl Bencher {
    /// Run `routine` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::WarmUp { until } => {
                while Instant::now() < until {
                    std::hint::black_box(routine());
                }
            }
            BenchMode::Measure { samples } => {
                self.samples.reserve(samples);
                for _ in 0..samples {
                    let start = Instant::now();
                    std::hint::black_box(routine());
                    self.samples.push(start.elapsed());
                }
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &BenchmarkId,
    f: &mut F,
) {
    let full = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    let mut warm = Bencher {
        mode: BenchMode::WarmUp {
            until: Instant::now() + criterion.warm_up_time,
        },
        samples: Vec::new(),
    };
    f(&mut warm);

    let mut bencher = Bencher {
        mode: BenchMode::Measure {
            samples: criterion.sample_size,
        },
        samples: Vec::new(),
    };
    let budget = Instant::now() + criterion.measurement_time * 4;
    f(&mut bencher);
    let mut samples = bencher.samples;
    // Re-sample within budget for more stable medians on fast routines.
    while Instant::now() < budget && samples.len() < criterion.sample_size * 4 {
        let mut again = Bencher {
            mode: BenchMode::Measure {
                samples: criterion.sample_size,
            },
            samples: Vec::new(),
        };
        f(&mut again);
        samples.extend(again.samples);
    }
    samples.sort_unstable();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    let mean: Duration = if samples.is_empty() {
        Duration::ZERO
    } else {
        samples.iter().sum::<Duration>() / samples.len() as u32
    };
    println!(
        "bench {full:<50} median {:>12} mean {:>12} (n={})",
        fmt(median),
        fmt(mean),
        samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Entry point: `criterion_main!(bench_fn_a, bench_fn_b)` emits `fn main`.
#[macro_export]
macro_rules! criterion_main {
    ($($bench_fn:path),+ $(,)?) => {
        fn main() {
            $($bench_fn();)+
        }
    };
}

/// Compatibility shim for `criterion_group!` (binds a name to a run-all fn).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs > 0);
    }
}
