//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! real serde tooling can be dropped in when a registry is reachable; in this
//! offline build the derives expand to marker-trait impls with no methods.

use proc_macro::TokenStream;

/// Extract the type identifier following the `struct`/`enum` keyword.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        let s = tt.to_string();
        if saw_kw {
            return Some(s);
        }
        if s == "struct" || s == "enum" {
            saw_kw = true;
        }
    }
    None
}

/// Generic parameter names (e.g. `T`, `U`) of the deriving type, if any.
/// Only plain `<A, B, ...>` lists are supported, which covers this workspace.
fn generics(input: &TokenStream) -> Vec<String> {
    let mut toks: Vec<String> = Vec::new();
    let mut saw_kw = false;
    let mut depth = 0i32;
    for tt in input.clone() {
        let s = tt.to_string();
        if !saw_kw {
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
            continue;
        }
        match s.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "," => {}
            _ if depth == 1 => toks.push(s),
            _ if depth == 0 && !toks.is_empty() => break,
            _ if depth == 0 => break,
            _ => {}
        }
    }
    toks
}

fn impl_for(trait_path: &str, input: TokenStream) -> TokenStream {
    let Some(name) = type_name(&input) else {
        return TokenStream::new();
    };
    let gens = generics(&input);
    let code = if gens.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        let params = gens.join(", ");
        let bounds = gens
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("impl<{params}> {trait_path} for {name}<{params}> where {bounds} {{}}")
    };
    code.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits a marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_for("::serde::Serialize", input)
}

/// No-op `Deserialize` derive: emits a marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_for("::serde::DeserializeMarker", input)
}
