//! Offline stand-in for `serde`.
//!
//! This build environment has no access to crates.io, so the workspace ships
//! a minimal local `serde` exposing the two derive names its data types use.
//! The traits are empty markers: no serialization format crate is wired up,
//! and index persistence uses its own hand-rolled binary codec
//! (`ftsl_index::persist`) instead. Swapping in real serde is a
//! manifest-only change.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for the deserializable-type bound. The real
/// `Deserialize<'de>` trait is lifetime-parameterized, which a no-op derive
/// cannot faithfully emit, so the derive targets this marker instead.
pub trait DeserializeMarker {}

/// Alias so `use serde::{Deserialize, Serialize}` plus `#[derive(..)]`
/// resolve exactly as with real serde.
pub use serde_derive::{Deserialize, Serialize};

macro_rules! mark {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl DeserializeMarker for $t {})*
    };
}

mark!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: DeserializeMarker> DeserializeMarker for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: DeserializeMarker> DeserializeMarker for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: DeserializeMarker> DeserializeMarker for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: DeserializeMarker, B: DeserializeMarker> DeserializeMarker for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: DeserializeMarker, V: DeserializeMarker> DeserializeMarker
    for std::collections::BTreeMap<K, V>
{
}
