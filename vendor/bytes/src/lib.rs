//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset the workspace uses: little-endian integer
//! reads/writes through [`Buf`]/[`BufMut`], a growable [`BytesMut`] and a
//! frozen, cheaply-sliceable [`Bytes`]. Backed by `Vec<u8>`/`Arc<[u8]>` with
//! no unsafe code; drop-in replaceable by the real crate when a registry is
//! reachable.

use std::sync::Arc;

/// Read side of a byte buffer: a cursor over remaining bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

/// Write side of a byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer, freezable into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
            start: 0,
            pos: 0,
            end_offset: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, reference-counted byte slice. Reading through [`Buf`]
/// advances an internal cursor; [`Bytes::slice`] shares the allocation.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    pos: usize,
    /// Bytes trimmed off the end of `data` (so `slice` never copies).
    end_offset: usize,
}

impl Bytes {
    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src.to_vec().into_boxed_slice()),
            start: 0,
            pos: 0,
            end_offset: 0,
        }
    }

    /// Total length of this view (independent of the read cursor).
    pub fn len(&self) -> usize {
        self.data.len() - self.start - self.end_offset
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            pos: 0,
            end_offset: self.data.len() - (self.start + range.end),
        }
    }

    /// The full view as a byte slice (ignores the read cursor).
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.data.len() - self.end_offset]
    }

    /// Copy the full view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Equality compares the viewed bytes, not the read cursor.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len() - self.pos
    }
    fn chunk(&self) -> &[u8] {
        &self.as_slice()[self.pos..]
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining());
        self.pos += n;
    }
}

/// Reading a plain byte slice consumes it front-first.
impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_u8(9);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 13);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_share_and_trim() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1, 2, 3, 4, 5]);
        let b = buf.freeze();
        let mid = b.slice(1..4);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        let inner = mid.slice(1..2);
        assert_eq!(inner.as_slice(), &[3]);
    }
}
