//! Offline stand-in for the `rand` crate.
//!
//! Deterministic xoshiro256** generator behind the small API surface the
//! workspace uses: `StdRng::seed_from_u64`, `random::<T>()` and
//! `random_range(a..b)`. Corpus synthesis only needs reproducible,
//! well-mixed streams — not cryptographic quality.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Width of `lo..hi` as u64 and mapping back from an offset.
    fn range_width(lo: Self, hi: Self) -> u64;
    /// `lo + offset`.
    fn from_offset(lo: Self, offset: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn range_width(lo: Self, hi: Self) -> u64 {
                (hi as i128 - lo as i128) as u64
            }
            fn from_offset(lo: Self, offset: u64) -> Self {
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods (the `rand` 0.9 `Rng` surface this
/// workspace relies on).
pub trait RngExt: RngCore {
    /// Draw a uniformly distributed value.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range` (which must be non-empty).
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(
            range.start < range.end,
            "random_range called with empty range"
        );
        let width = T::range_width(range.start, range.end);
        // Debiased multiply-shift (Lemire); width is tiny vs 2^64 here, so
        // a single draw with 128-bit multiply keeps bias negligible.
        let offset = ((self.next_u64() as u128 * width as u128) >> 64) as u64;
        T::from_offset(range.start, offset)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic default generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }
}
