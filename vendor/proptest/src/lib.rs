//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the generation-side subset of proptest the workspace's property tests
//! use: [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! range/tuple/`Just`/`Union` strategies, `collection::{vec, btree_set}`,
//! `option::of`, `any::<T>()`, and the `proptest!`, `prop_oneof!`,
//! `prop_assert*!` and `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking** — failures report the generated values via the
//!   panic message only. Cases are seeded deterministically per test name
//!   and case index, so failures reproduce exactly.
//! * Rejected cases (`prop_assume!`) are skipped, not regenerated, so a
//!   run executes at most `cases` bodies.

use rand::rngs::StdRng;

/// Configuration for a `proptest!` block.
pub mod test_runner {
    /// Number-of-cases knob, mirroring proptest's `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Core strategy trait and combinators.
pub mod strategy {
    use super::StdRng;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate an intermediate value, then generate from the strategy
        /// it selects.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase into a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T: 'static> Union<T> {
        /// Uniform choice over `arms`.
        pub fn new<S, I>(arms: I) -> Self
        where
            S: Strategy<Value = T> + 'static,
            I: IntoIterator<Item = S>,
        {
            Union {
                arms: arms.into_iter().map(|s| (1, s.boxed())).collect(),
            }
        }

        /// Weighted choice over `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "Union requires at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::RngExt;
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            let mut pick = rng.random_range(0..total.max(1));
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            self.arms.last().expect("non-empty").1.generate(rng)
        }
    }

    /// Integer ranges generate uniformly within the range.
    impl<T: rand::UniformInt + 'static> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            use rand::RngExt;
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random::<u64>() as $t
                }
            }
        )+};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.is_empty() {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Sets with cardinality drawn from `size` (best-effort when the
    /// element domain is smaller than the requested cardinality).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngExt;

    /// Strategy yielding `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// `Some` of the inner strategy, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a property test file conventionally imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[doc(hidden)]
pub mod runtime {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-(test, case) rng.
    pub fn case_rng(test_name: &str, case: u64) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Weighted/uniform choice between strategies: `prop_oneof![a, b]` or
/// `prop_oneof![2 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-scoped assertion (panics — no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut __proptest_rng = $crate::runtime::case_rng(stringify!($name), case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let __proptest_outcome: ::std::result::Result<(), ()> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    // Err means the case was rejected by prop_assume!; skip.
                    let _ = __proptest_outcome;
                }
            }
        )*
    };
}

pub use rand::rngs::StdRng as TestStdRng;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = crate::runtime::case_rng("smoke", 0);
        let s = crate::collection::vec(0usize..5, 1..4);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let u = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        for _ in 0..20 {
            let x = Strategy::generate(&u, &mut rng);
            assert!(x == 1 || x == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_assumes(x in 0u32..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(flip as u32 <= 1, true);
        }
    }
}
