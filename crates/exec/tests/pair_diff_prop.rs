//! Differential lockdown of the word-pair fast path.
//!
//! The contract: rewriting a two-scan proximity core (phrase, NEAR,
//! ordered-window) to a walk over the word-pair auxiliary lists is
//! **invisible** — `use_pairs: true` must return node lists bit-identical
//! to the `use_pairs: false` position-intersection oracle, on every corpus,
//! every physical layout, and every pair-index configuration (default
//! df cutoff, cutoff disabled, a window small enough to force fallback,
//! and pairs disabled entirely).
//!
//! Corpora are Zipf-skewed so the same run exercises both coverage
//! regimes: frequent tokens resolve from pair lists, rare ones fall below
//! the df cutoff and take the fallback path.
//!
//! The deterministic tests pin the edge cases: same-token phrases
//! (`a a`), adjacent repeats (`a a a`), `window(…, 0)` (refused — two
//! variables may bind one position), phrases longer than any document,
//! and pair lists straddling a 128-entry block boundary.
//!
//! The scheduled CI fuzz job raises the case count via
//! `FTSL_PROPTEST_CASES`; the default keeps PR builds quick.

use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::{IndexBuilder, IndexLayout, InvertedIndex, PairConfig};
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;
use proptest::prelude::*;

fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

const VOCAB: usize = 12;

fn token(i: usize) -> String {
    format!("t{i}")
}

/// Zipf-ish corpus: raw draws in `0..1024` squared down so low token
/// indices dominate — index 0 appears ~25× as often as index 11.
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0u32..1024, 0..30), 1..12).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|draws| {
                    let mut text = String::new();
                    for d in draws {
                        let u = f64::from(d) / 1024.0;
                        let idx = ((u * u) * VOCAB as f64) as usize;
                        text.push_str(&token(idx.min(VOCAB - 1)));
                        text.push(' ');
                    }
                    text
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// The proximity shapes the rewrite recognizes (plus `window` alone,
/// which is undirected).
#[derive(Clone, Copy, Debug)]
enum Shape {
    /// `ordered + distance(0)`: adjacency, the phrase core.
    Phrase,
    /// `ordered + window(w)`: directed, gap ≤ w.
    OrderedWindow(u32),
    /// `distance(d)` alone: symmetric, gap ≤ d+1 either way.
    Near(u32),
    /// `window(w)` alone: symmetric.
    Window(u32),
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Phrase),
        (1u32..20).prop_map(Shape::OrderedWindow),
        (0u32..20).prop_map(Shape::Near),
        (0u32..20).prop_map(Shape::Window),
    ]
}

fn render_query(a: &str, b: &str, shape: Shape) -> String {
    let preds = match shape {
        Shape::Phrase => "ordered(p1,p2) AND distance(p1,p2,0)".to_string(),
        Shape::OrderedWindow(w) => format!("ordered(p1,p2) AND window(p1,p2,{w})"),
        Shape::Near(d) => format!("distance(p1,p2,{d})"),
        Shape::Window(w) => format!("window(p1,p2,{w})"),
    };
    format!("SOME p1 SOME p2 (p1 HAS '{a}' AND p2 HAS '{b}' AND {preds})")
}

/// Pair-index configurations under test: the default (window 16,
/// df cutoff 2), cutoff off (every pair indexed), a window small enough
/// that wide bounds must fall back, and pairs disabled entirely.
fn pair_configs() -> [PairConfig; 4] {
    [
        PairConfig::default(),
        PairConfig {
            window: 16,
            df_cutoff: 0,
        },
        PairConfig {
            window: 4,
            df_cutoff: 2,
        },
        PairConfig::disabled(),
    ]
}

/// Pair path vs oracle on one (corpus, index, query): node lists must be
/// bit-identical on both layouts.
fn assert_pair_matches_oracle(
    corpus: &Corpus,
    index: &InvertedIndex,
    query: &str,
    ctx: &str,
) -> Result<(), ()> {
    let reg = PredicateRegistry::with_builtins();
    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let paired = Executor::with_options(
            corpus,
            index,
            &reg,
            ExecOptions {
                layout,
                use_pairs: true,
                ..Default::default()
            },
        );
        let oracle = Executor::with_options(
            corpus,
            index,
            &reg,
            ExecOptions {
                layout,
                use_pairs: false,
                ..Default::default()
            },
        );
        let got = paired
            .run_str(query, EngineKind::Ppred)
            .expect("pair path runs");
        let want = oracle
            .run_str(query, EngineKind::Ppred)
            .expect("oracle runs");
        prop_assert_eq!(
            &got.nodes,
            &want.nodes,
            "{} {:?}: pair path diverged on {}",
            ctx,
            layout,
            query
        );
        // The oracle never reads pair lists — its counters prove it is
        // the independent position-intersection implementation.
        prop_assert_eq!(
            want.counters.pair_entries,
            0,
            "{}: oracle touched pairs",
            ctx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// Every proximity shape, on every pair configuration, over Zipf
    /// corpora: the pair rewrite is invisible.
    #[test]
    fn pair_path_is_bit_identical_to_intersection_oracle(
        corpus in arb_corpus(),
        a in 0..VOCAB,
        b in 0..VOCAB,
        shape in arb_shape(),
    ) {
        let query = render_query(&token(a), &token(b), shape);
        for config in pair_configs() {
            let index = IndexBuilder::new().pair_config(config).build(&corpus);
            let ctx = format!("window={} cutoff={}", config.window, config.df_cutoff);
            assert_pair_matches_oracle(&corpus, &index, &query, &ctx)?;
        }
    }
}

// ── deterministic edge cases ─────────────────────────────────────────────

fn check(corpus: &Corpus, query: &str, ctx: &str) {
    for config in pair_configs() {
        let index = IndexBuilder::new().pair_config(config).build(corpus);
        let full = format!("{ctx} window={} cutoff={}", config.window, config.df_cutoff);
        assert_pair_matches_oracle(corpus, &index, query, &full).unwrap();
    }
}

/// A "phrase" whose two slots bind the same token: `a a`. Directed
/// self-pairs are indexed, so this still takes the fast path — and the
/// symmetric variants must refuse it (two variables may bind the *same*
/// occurrence, which pair lists cannot represent).
#[test]
fn same_token_phrase_and_near() {
    let corpus = Corpus::from_texts(&["a a b", "a b a", "a", "b a"]);
    check(
        &corpus,
        &render_query("a", "a", Shape::Phrase),
        "a-a phrase",
    );
    check(&corpus, &render_query("a", "a", Shape::Near(2)), "a-a near");
    check(
        &corpus,
        &render_query("a", "a", Shape::Window(3)),
        "a-a window",
    );
}

/// `window(p1,p2,0)` binds both variables to one offset — satisfiable
/// exactly when the document has the token at all (p1 = p2). The rewrite
/// must refuse (pair gaps start at 1) and the fallback must agree.
#[test]
fn window_zero_is_position_equality() {
    let corpus = Corpus::from_texts(&["a b", "b a", "a", "c"]);
    check(&corpus, &render_query("a", "b", Shape::Window(0)), "w0 a-b");
    check(&corpus, &render_query("a", "a", Shape::Window(0)), "w0 a-a");
    // distance(…,0) symmetric: adjacency either way.
    check(&corpus, &render_query("a", "b", Shape::Near(0)), "d0 a-b");
}

/// Adjacent repeats: every consecutive `a a` is a self-pair with gap 1;
/// the minimum-gap semantics must not double-count or miss the overlap.
#[test]
fn adjacent_repeats() {
    let corpus = Corpus::from_texts(&["a a a", "a a", "a", "a b a"]);
    check(
        &corpus,
        &render_query("a", "a", Shape::Phrase),
        "aaa phrase",
    );
    check(
        &corpus,
        &render_query("a", "a", Shape::OrderedWindow(2)),
        "aaa ow2",
    );
    check(
        &corpus,
        &render_query("a", "a", Shape::Near(1)),
        "aaa near1",
    );
}

/// A phrase longer than any document matches nothing — on both paths.
#[test]
fn phrase_longer_than_any_document() {
    let corpus = Corpus::from_texts(&["a", "b", "a", "b"]);
    let query = render_query("a", "b", Shape::Phrase);
    check(&corpus, &query, "1-token docs");
    let reg = PredicateRegistry::with_builtins();
    let index = IndexBuilder::new()
        .pair_config(PairConfig {
            window: 16,
            df_cutoff: 0,
        })
        .build(&corpus);
    let exec = Executor::new(&corpus, &index, &reg);
    let out = exec.run_str(&query, EngineKind::Ppred).expect("runs");
    assert!(out.nodes.is_empty(), "no document can hold the phrase");
}

/// A pair list long enough to straddle the 128-entry block boundary:
/// 300 planted `a b` documents make one (a,b) list spanning 3 blocks.
/// The block-at-a-time walk must not lose entries at the seams.
#[test]
fn pair_list_straddles_block_boundary() {
    let mut texts: Vec<String> = Vec::new();
    for i in 0..300 {
        // Vary the gap so the distance column is not constant: even docs
        // adjacent, odd docs one filler apart.
        if i % 2 == 0 {
            texts.push("a b".to_string());
        } else {
            texts.push("a x b".to_string());
        }
    }
    texts.push("b a".to_string());
    let corpus = Corpus::from_texts(&texts);
    check(
        &corpus,
        &render_query("a", "b", Shape::Phrase),
        "300-doc phrase",
    );
    check(
        &corpus,
        &render_query("a", "b", Shape::OrderedWindow(2)),
        "300-doc ow",
    );
    check(
        &corpus,
        &render_query("a", "b", Shape::Near(1)),
        "300-doc near",
    );

    // And prove the fast path actually engaged: with pairs on, the walk
    // reads pair postings; the planted phrase resolves without decoding
    // any position payload.
    let reg = PredicateRegistry::with_builtins();
    let index = IndexBuilder::new().build(&corpus);
    let exec = Executor::with_options(
        &corpus,
        &index,
        &reg,
        ExecOptions {
            layout: IndexLayout::Blocks,
            ..Default::default()
        },
    );
    let out = exec
        .run_str(&render_query("a", "b", Shape::Phrase), EngineKind::Ppred)
        .expect("runs");
    // The 150 even docs are adjacent; odd docs (gap 2) and the reversed
    // `b a` are not phrase matches.
    assert_eq!(out.nodes.len(), 150);
    assert!(out.counters.pair_entries > 0, "pair path engaged");
    assert_eq!(out.counters.positions_decoded, 0, "no positions touched");
}
