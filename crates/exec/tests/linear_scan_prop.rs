//! The Section 5.5 complexity guarantee, machine-checked: a PPRED query is
//! evaluated in a *single scan* over the query-token inverted lists. We
//! verify it with access counters: the positions consumed never exceed the
//! total size of the lists the plan scans (once per scan leaf), and the
//! NPRED engine's consumption is bounded by that total times the number of
//! evaluation threads.

use ftsl_calculus::ast::QueryExpr;
use ftsl_exec::plan::{build_plan, PlanNode};
use ftsl_exec::{npred, ppred};
use ftsl_index::{IndexBuilder, InvertedIndex};
use ftsl_lang::{lower, parse, Mode};
use ftsl_model::Corpus;
use ftsl_predicates::{AdvanceMode, PredicateRegistry};
use proptest::prelude::*;

const VOCAB: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..VOCAB.len(), 0..20), 1..10).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// Random PPRED query strings over the vocabulary.
fn arb_ppred_query() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(0..VOCAB.len(), 1..4),
        proptest::collection::vec((0..3usize, 0..8i64), 0..3),
    )
        .prop_map(|(tokens, preds)| {
            let n = tokens.len();
            let mut conjuncts: Vec<String> = tokens
                .iter()
                .enumerate()
                .map(|(i, &t)| format!("p{i} HAS '{}'", VOCAB[t]))
                .collect();
            for (kind, c) in preds {
                let a = 0;
                let b = n - 1;
                conjuncts.push(match kind {
                    0 => format!("distance(p{a}, p{b}, {c})"),
                    1 => format!("ordered(p{a}, p{b})"),
                    _ => format!("samepara(p{a}, p{b})"),
                });
            }
            let mut q = conjuncts.join(" AND ");
            for i in (0..n).rev() {
                q = format!("SOME p{i} ({q})");
            }
            q
        })
}

/// Sum of (entries, positions) over every scan leaf of the rewritten plan —
/// the "size of the query token inverted lists" in the paper's bounds,
/// counting a list once per leaf occurrence.
fn scanned_totals(node: &PlanNode, corpus: &Corpus, index: &InvertedIndex) -> (u64, u64) {
    match node {
        PlanNode::Scan { token, .. } => match corpus.token_id(token) {
            Some(id) => {
                let list = index.list(id);
                (list.num_entries() as u64, list.num_positions() as u64)
            }
            None => (0, 0),
        },
        PlanNode::ScanAny { .. } => {
            let list = index.any();
            (list.num_entries() as u64, list.num_positions() as u64)
        }
        PlanNode::Join(a, b) | PlanNode::Union(a, b) | PlanNode::Diff(a, b) => {
            let (e1, p1) = scanned_totals(a, corpus, index);
            let (e2, p2) = scanned_totals(b, corpus, index);
            (e1 + e2, p1 + p2)
        }
        PlanNode::Select { input, .. } | PlanNode::Project { input, .. } => {
            scanned_totals(input, corpus, index)
        }
    }
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn ppred_is_single_scan(
        query in arb_ppred_query(),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let surface = parse(&query, Mode::Comp).expect("generated query parses");
        let expr: QueryExpr = lower(&surface, &reg).expect("lowers");

        let plan = build_plan(&expr, &reg, false).expect("PPRED-plannable");
        let (max_entries, max_positions) = scanned_totals(&plan.root, &corpus, &index);

        for mode in [AdvanceMode::Aggressive, AdvanceMode::Conservative] {
            let (_, counters) =
                ppred::run_ppred(&expr, &corpus, &index, &reg, mode).expect("runs");
            prop_assert!(
                counters.entries <= max_entries,
                "entries {} > list total {max_entries} for {query}",
                counters.entries
            );
            prop_assert!(
                counters.positions <= max_positions,
                "positions {} > list total {max_positions} for {query} ({mode:?})",
                counters.positions
            );
            prop_assert_eq!(counters.tuples, 0, "PPRED must not materialize");
        }
    }

    #[test]
    fn npred_is_linear_per_thread(
        query in arb_ppred_query(),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let surface = parse(&query, Mode::Comp).expect("parses");
        let expr: QueryExpr = lower(&surface, &reg).expect("lowers");

        let plan = build_plan(&expr, &reg, true).expect("plannable");
        let (_, max_positions) = scanned_totals(&plan.root, &corpus, &index);
        let mut scan_vars = plan.scan_vars.clone();
        scan_vars.sort_unstable();
        scan_vars.dedup();
        let threads: u64 = (1..=scan_vars.len() as u64).product();

        let opts = npred::NpredOptions { full_permutations: true, ..Default::default() };
        let (_, counters) = npred::run_npred(&expr, &corpus, &index, &reg, opts).expect("runs");
        prop_assert!(
            counters.positions <= max_positions * threads,
            "positions {} > {} × {} threads for {query}",
            counters.positions,
            max_positions,
            threads
        );
        prop_assert_eq!(counters.tuples, 0, "NPRED must not materialize");
    }
}
