//! Acceptance test for streaming scored retrieval on a skewed (Zipf)
//! corpus: block-max/MaxScore-pruned top-k over a `'rare' OR 'common'`
//! disjunction must decode *measurably fewer* entries than the exhaustive
//! scored pass — which touches every entry of every query list — while
//! returning exactly the oracle's first k rows. Checked on both physical
//! layouts via the dispatcher, so the whole path under
//! `ExecOptions::layout` is exercised.

use ftsl_corpus::SynthConfig;
use ftsl_exec::engine::{ExecOptions, Executor};
use ftsl_exec::scored::run_scored_top_k_filtered;
use ftsl_exec::{ScoreModel, ScoredPath, ScoredTopK, SnapshotExecutor};
use ftsl_index::{IndexBuilder, IndexLayout, InvertedIndex, LiveConfig, LiveIndex};
use ftsl_lang::{parse, Mode};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::bool_scores::run_bool_scored;
use ftsl_scoring::classic::classic_tfidf;
use ftsl_scoring::{PraModel, ScoreStats, SnapshotStats, TfIdfModel};

/// One rare, high-impact token against one very common one, over a Zipf
/// background — the regime where pruning pays.
fn skewed_env() -> (Corpus, InvertedIndex, ScoreStats) {
    let config = SynthConfig {
        cnodes: 3000,
        vocabulary: 1500,
        tokens_per_doc: 60,
        ..SynthConfig::default()
    }
    .plant("rare", 0.03, 4)
    .plant("common", 0.8, 1);
    let corpus = config.build();
    let index = IndexBuilder::new().build(&corpus);
    let stats = ScoreStats::compute(&corpus, &index);
    (corpus, index, stats)
}

/// Entries an exhaustive scored pass decodes: every entry of every list the
/// query mentions.
fn exhaustive_entries(corpus: &Corpus, index: &InvertedIndex, tokens: &[&str]) -> u64 {
    tokens
        .iter()
        .filter_map(|t| corpus.token_id(t))
        .map(|id| index.list(id).num_entries() as u64)
        .sum()
}

#[test]
fn pruned_topk_decodes_a_fraction_of_the_exhaustive_pass() {
    let (corpus, index, stats) = skewed_env();
    let registry = PredicateRegistry::with_builtins();
    let tokens = ["rare", "common"];
    let total = exhaustive_entries(&corpus, &index, &tokens);
    assert!(total > 2000, "corpus not skewed as expected: {total}");

    let tfidf = TfIdfModel::for_query(&tokens, &corpus, &stats);
    let oracle = classic_tfidf(&tokens, &corpus, &stats, &tfidf);

    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = Executor::with_options(
            &corpus,
            &index,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let out = exec
            .run_top_k_str(
                "'rare' OR 'common'",
                ScoredTopK { k: 10 },
                &stats,
                &ScoreModel::TfIdf(&tfidf),
            )
            .expect("scored top-k runs");
        assert_eq!(out.path, ScoredPath::PrunedUnion);

        // Exactness: the streamed top-10 is the oracle's first 10 rows.
        assert_eq!(out.hits.len(), 10);
        for ((gn, gs), (on, os)) in out.hits.iter().zip(&oracle) {
            assert_eq!(gn, on, "{layout:?}: node order diverged");
            assert!((gs - os).abs() < 1e-9, "{layout:?}: {gs} vs {os}");
        }

        // The acceptance bound: a fraction of the exhaustive decode count.
        // The rare list must be decoded in full (it drives candidates); the
        // common list should be almost entirely pruned once the heap fills
        // with rare+common nodes.
        assert!(
            out.counters.entries * 2 < total,
            "{layout:?}: pruned top-10 decoded {} of {} entries",
            out.counters.entries,
            total
        );
    }
}

/// Block-max pruning proper: once the heap threshold exceeds a block's
/// impact bound, the whole block is skipped without decoding. Doc 0 carries
/// the only tf=2 entry of `hot`; every later block holds tf=1 entries whose
/// bound falls below the top-1 threshold, so all of them are bypassed.
#[test]
fn block_max_skips_low_impact_blocks_wholesale() {
    let texts: Vec<String> = std::iter::once("hot hot".to_string())
        .chain((0..600).map(|i| format!("hot filler{}", i % 13)))
        .collect();
    let corpus = Corpus::from_texts(&texts);
    let index = IndexBuilder::new().build(&corpus);
    let stats = ScoreStats::compute(&corpus, &index);
    let registry = PredicateRegistry::with_builtins();
    let pra = PraModel::new(&corpus, &stats);

    let exec = Executor::with_options(
        &corpus,
        &index,
        &registry,
        ExecOptions {
            layout: IndexLayout::Blocks,
            ..Default::default()
        },
    );
    let out = exec
        .run_top_k_str("'hot'", ScoredTopK { k: 1 }, &stats, &ScoreModel::Pra(&pra))
        .expect("scored top-k runs");
    assert_eq!(out.hits.len(), 1);
    assert_eq!(out.hits[0].0, NodeId(0), "the tf=2 doc must win");

    let hot_entries = index.list(corpus.token_id("hot").unwrap()).num_entries() as u64;
    assert_eq!(hot_entries, 601);
    // Block 0 (which holds the winner) decodes; blocks 1..4 are skipped
    // whole on their impact bound.
    assert!(
        out.counters.blocks_skipped >= 3,
        "low-impact blocks should be skipped whole: {:?}",
        out.counters
    );
    assert!(
        out.counters.entries < 200,
        "decoded {} of {hot_entries} entries",
        out.counters.entries
    );
    assert!(out.counters.skipped > 300, "counters: {:?}", out.counters);
}

#[test]
fn pra_disjunction_also_prunes_and_matches_its_oracle() {
    let (corpus, index, stats) = skewed_env();
    let registry = PredicateRegistry::with_builtins();
    let total = exhaustive_entries(&corpus, &index, &["rare", "common"]);

    let pra = PraModel::new(&corpus, &stats);
    let query = parse("'rare' OR 'common'", Mode::Bool).expect("parses");
    let oracle = run_bool_scored(&query, &corpus, &index, &stats, &pra).expect("oracle");

    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = Executor::with_options(
            &corpus,
            &index,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let out = exec
            .run_top_k(&query, ScoredTopK { k: 10 }, &stats, &ScoreModel::Pra(&pra))
            .expect("scored top-k runs");
        assert_eq!(out.path, ScoredPath::PrunedUnion);
        assert_eq!(out.hits.len(), 10);
        for ((gn, gs), (on, os)) in out.hits.iter().zip(&oracle) {
            assert_eq!(gn, on, "{layout:?}: node order diverged");
            assert!((gs - os).abs() < 1e-9, "{layout:?}: {gs} vs {os}");
        }
        assert!(
            out.counters.entries * 2 < total,
            "{layout:?}: pruned top-10 decoded {} of {} entries",
            out.counters.entries,
            total
        );
    }
}

/// Deterministic skewed texts (the live-index cousin of [`skewed_env`]):
/// a rare high-tf token and a very common one over an LCG background.
fn skewed_texts(docs: usize) -> Vec<String> {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..docs)
        .map(|d| {
            let mut words: Vec<String> = (0..30).map(|_| format!("bg{}", rng() % 400)).collect();
            if d % 37 == 0 {
                for _ in 0..4 {
                    words.push("rare".to_string());
                }
            }
            if rng() % 5 != 0 {
                words.push("common".to_string());
            }
            words.join(" ")
        })
        .collect()
}

/// Build a live index holding `texts` spread over `segments` sealed
/// segments.
fn segmented_live(texts: &[String], segments: usize) -> LiveIndex {
    let live = LiveIndex::with_config(LiveConfig {
        background_merge: false,
        flush_threshold: usize::MAX,
        ..LiveConfig::default()
    });
    let per = texts.len().div_ceil(segments);
    for (i, t) in texts.iter().enumerate() {
        live.add_document(t);
        if (i + 1) % per == 0 {
            live.flush();
        }
    }
    live.flush();
    live
}

/// The pruning invariant the global threshold buys: at 16 segments, the
/// shared-heap run decodes strictly fewer entries than sixteen independent
/// per-segment heaps (the pre-global baseline, still reachable through
/// [`run_scored_top_k_filtered`]) — on both layouts.
#[test]
fn global_heap_beats_per_segment_heaps_at_16_segments() {
    let texts = skewed_texts(2000);
    let live = segmented_live(&texts, 16);
    let snap = live.snapshot();
    assert_eq!(snap.num_segments(), 16);
    let stats = SnapshotStats::compute(&snap);
    let tfidf = stats.tfidf_model(&["rare", "common"], &snap);
    let registry = PredicateRegistry::with_builtins();
    let query = parse("'rare' OR 'common'", Mode::Bool).expect("parses");

    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = SnapshotExecutor::with_options(
            &snap,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let global = exec
            .run_top_k(
                &query,
                ScoredTopK { k: 10 },
                &stats,
                &ScoreModel::TfIdf(&tfidf),
            )
            .expect("global top-k runs");
        assert_eq!(global.hits.len(), 10);

        // Baseline: each segment runs to its own exact top-10 with a fresh
        // heap, exactly what run_top_k did before the global threshold.
        let mut baseline = 0u64;
        for (i, seg) in snap.segments().iter().enumerate() {
            let out = run_scored_top_k_filtered(
                &query,
                seg.data().corpus(),
                seg.data().index(),
                stats.segment(i),
                &ScoreModel::TfIdf(&tfidf),
                layout,
                ScoredTopK { k: 10 },
                Some(seg.deletes()),
            )
            .expect("per-segment top-k runs");
            baseline += out.counters.entries;
        }
        assert!(
            global.counters.entries < baseline,
            "{layout:?}: global heap decoded {} entries, per-segment heaps {}",
            global.counters.entries,
            baseline
        );
    }
}

/// Whole-segment skipping on a graded-impact corpus: one segment holds the
/// only tf=4 document of the query token, so once it fills the k=1 heap
/// every tf=1 segment's total impact bound falls below the threshold and
/// the segment is bypassed without touching a posting.
#[test]
fn low_impact_segments_are_skipped_whole() {
    let live = LiveIndex::with_config(LiveConfig {
        background_merge: false,
        ..LiveConfig::default()
    });
    live.add_document("peak peak peak peak");
    live.flush();
    for s in 0..8 {
        for d in 0..4 {
            live.add_document(&format!("peak pad{s}x{d}"));
        }
        live.flush();
    }
    let snap = live.snapshot();
    assert_eq!(snap.num_segments(), 9);
    let stats = SnapshotStats::compute(&snap);
    let pra = stats.pra_model(&snap);
    let registry = PredicateRegistry::with_builtins();
    let query = parse("'peak'", Mode::Bool).expect("parses");

    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = SnapshotExecutor::with_options(
            &snap,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let out = exec
            .run_top_k(&query, ScoredTopK { k: 1 }, &stats, &ScoreModel::Pra(&pra))
            .expect("top-k runs");
        assert_eq!(out.hits[0].0, NodeId(0), "the tf=4 document wins");
        assert_eq!(
            out.counters.segments_skipped, 8,
            "{layout:?}: every tf=1 segment must be skipped whole: {:?}",
            out.counters
        );
        // A skipped segment contributes no decode work: only the peak
        // segment's 1-entry list is consumed.
        assert_eq!(out.counters.entries, 1, "{layout:?}: {:?}", out.counters);
    }
}

/// With `k` at least the full result size the heap never fills, nothing is
/// ever pruned or skipped, and the global run's counters equal the sum of
/// the per-segment runs exactly — segmentation changes where work happens,
/// never how it is counted.
#[test]
fn counters_sum_exactly_across_segments_when_nothing_prunes() {
    let texts = skewed_texts(300);
    let live = segmented_live(&texts, 4);
    let snap = live.snapshot();
    let stats = SnapshotStats::compute(&snap);
    let tfidf = stats.tfidf_model(&["rare", "common"], &snap);
    let registry = PredicateRegistry::with_builtins();
    let query = parse("'rare' OR 'common'", Mode::Bool).expect("parses");
    let k = texts.len(); // larger than any possible result set

    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = SnapshotExecutor::with_options(
            &snap,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let global = exec
            .run_top_k(&query, ScoredTopK { k }, &stats, &ScoreModel::TfIdf(&tfidf))
            .expect("global top-k runs");
        assert_eq!(global.counters.segments_skipped, 0);

        let mut summed = ftsl_index::AccessCounters::new();
        for (i, seg) in snap.segments().iter().enumerate() {
            let out = run_scored_top_k_filtered(
                &query,
                seg.data().corpus(),
                seg.data().index(),
                stats.segment(i),
                &ScoreModel::TfIdf(&tfidf),
                layout,
                ScoredTopK { k },
                Some(seg.deletes()),
            )
            .expect("per-segment top-k runs");
            summed += out.counters;
        }
        assert_eq!(
            global.counters, summed,
            "{layout:?}: unpruned global counters must be the per-segment sum"
        );
    }
}

#[test]
fn stream_tree_handles_general_bool_on_both_layouts() {
    let (corpus, index, stats) = skewed_env();
    let registry = PredicateRegistry::with_builtins();
    let pra = PraModel::new(&corpus, &stats);
    let query = parse("('rare' AND 'common') OR NOT 'common'", Mode::Bool).expect("parses");
    let oracle = run_bool_scored(&query, &corpus, &index, &stats, &pra).expect("oracle");

    let mut per_layout: Vec<Vec<(NodeId, f64)>> = Vec::new();
    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = Executor::with_options(
            &corpus,
            &index,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let out = exec
            .run_top_k(&query, ScoredTopK { k: 25 }, &stats, &ScoreModel::Pra(&pra))
            .expect("scored top-k runs");
        assert_eq!(out.path, ScoredPath::StreamTree);
        assert_eq!(out.hits.len(), 25);
        for ((gn, gs), (on, os)) in out.hits.iter().zip(&oracle) {
            assert_eq!(gn, on, "{layout:?}: node order diverged");
            assert_eq!(gs, os, "{layout:?}: stream tree should be bit-exact");
        }
        per_layout.push(out.hits);
    }
    assert_eq!(
        per_layout[0], per_layout[1],
        "layouts must agree bit-exactly"
    );
}
