//! Acceptance test for streaming scored retrieval on a skewed (Zipf)
//! corpus: block-max/MaxScore-pruned top-k over a `'rare' OR 'common'`
//! disjunction must decode *measurably fewer* entries than the exhaustive
//! scored pass — which touches every entry of every query list — while
//! returning exactly the oracle's first k rows. Checked on both physical
//! layouts via the dispatcher, so the whole path under
//! `ExecOptions::layout` is exercised.

use ftsl_corpus::SynthConfig;
use ftsl_exec::engine::{ExecOptions, Executor};
use ftsl_exec::{ScoreModel, ScoredPath, ScoredTopK};
use ftsl_index::{IndexBuilder, IndexLayout, InvertedIndex};
use ftsl_lang::{parse, Mode};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::bool_scores::run_bool_scored;
use ftsl_scoring::classic::classic_tfidf;
use ftsl_scoring::{PraModel, ScoreStats, TfIdfModel};

/// One rare, high-impact token against one very common one, over a Zipf
/// background — the regime where pruning pays.
fn skewed_env() -> (Corpus, InvertedIndex, ScoreStats) {
    let config = SynthConfig {
        cnodes: 3000,
        vocabulary: 1500,
        tokens_per_doc: 60,
        ..SynthConfig::default()
    }
    .plant("rare", 0.03, 4)
    .plant("common", 0.8, 1);
    let corpus = config.build();
    let index = IndexBuilder::new().build(&corpus);
    let stats = ScoreStats::compute(&corpus, &index);
    (corpus, index, stats)
}

/// Entries an exhaustive scored pass decodes: every entry of every list the
/// query mentions.
fn exhaustive_entries(corpus: &Corpus, index: &InvertedIndex, tokens: &[&str]) -> u64 {
    tokens
        .iter()
        .filter_map(|t| corpus.token_id(t))
        .map(|id| index.list(id).num_entries() as u64)
        .sum()
}

#[test]
fn pruned_topk_decodes_a_fraction_of_the_exhaustive_pass() {
    let (corpus, index, stats) = skewed_env();
    let registry = PredicateRegistry::with_builtins();
    let tokens = ["rare", "common"];
    let total = exhaustive_entries(&corpus, &index, &tokens);
    assert!(total > 2000, "corpus not skewed as expected: {total}");

    let tfidf = TfIdfModel::for_query(&tokens, &corpus, &stats);
    let oracle = classic_tfidf(&tokens, &corpus, &stats, &tfidf);

    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = Executor::with_options(
            &corpus,
            &index,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let out = exec
            .run_top_k_str(
                "'rare' OR 'common'",
                ScoredTopK { k: 10 },
                &stats,
                &ScoreModel::TfIdf(&tfidf),
            )
            .expect("scored top-k runs");
        assert_eq!(out.path, ScoredPath::PrunedUnion);

        // Exactness: the streamed top-10 is the oracle's first 10 rows.
        assert_eq!(out.hits.len(), 10);
        for ((gn, gs), (on, os)) in out.hits.iter().zip(&oracle) {
            assert_eq!(gn, on, "{layout:?}: node order diverged");
            assert!((gs - os).abs() < 1e-9, "{layout:?}: {gs} vs {os}");
        }

        // The acceptance bound: a fraction of the exhaustive decode count.
        // The rare list must be decoded in full (it drives candidates); the
        // common list should be almost entirely pruned once the heap fills
        // with rare+common nodes.
        assert!(
            out.counters.entries * 2 < total,
            "{layout:?}: pruned top-10 decoded {} of {} entries",
            out.counters.entries,
            total
        );
    }
}

/// Block-max pruning proper: once the heap threshold exceeds a block's
/// impact bound, the whole block is skipped without decoding. Doc 0 carries
/// the only tf=2 entry of `hot`; every later block holds tf=1 entries whose
/// bound falls below the top-1 threshold, so all of them are bypassed.
#[test]
fn block_max_skips_low_impact_blocks_wholesale() {
    let texts: Vec<String> = std::iter::once("hot hot".to_string())
        .chain((0..600).map(|i| format!("hot filler{}", i % 13)))
        .collect();
    let corpus = Corpus::from_texts(&texts);
    let index = IndexBuilder::new().build(&corpus);
    let stats = ScoreStats::compute(&corpus, &index);
    let registry = PredicateRegistry::with_builtins();
    let pra = PraModel::new(&corpus, &stats);

    let exec = Executor::with_options(
        &corpus,
        &index,
        &registry,
        ExecOptions {
            layout: IndexLayout::Blocks,
            ..Default::default()
        },
    );
    let out = exec
        .run_top_k_str("'hot'", ScoredTopK { k: 1 }, &stats, &ScoreModel::Pra(&pra))
        .expect("scored top-k runs");
    assert_eq!(out.hits.len(), 1);
    assert_eq!(out.hits[0].0, NodeId(0), "the tf=2 doc must win");

    let hot_entries = index.list(corpus.token_id("hot").unwrap()).num_entries() as u64;
    assert_eq!(hot_entries, 601);
    // Block 0 (which holds the winner) decodes; blocks 1..4 are skipped
    // whole on their impact bound.
    assert!(
        out.counters.blocks_skipped >= 3,
        "low-impact blocks should be skipped whole: {:?}",
        out.counters
    );
    assert!(
        out.counters.entries < 200,
        "decoded {} of {hot_entries} entries",
        out.counters.entries
    );
    assert!(out.counters.skipped > 300, "counters: {:?}", out.counters);
}

#[test]
fn pra_disjunction_also_prunes_and_matches_its_oracle() {
    let (corpus, index, stats) = skewed_env();
    let registry = PredicateRegistry::with_builtins();
    let total = exhaustive_entries(&corpus, &index, &["rare", "common"]);

    let pra = PraModel::new(&corpus, &stats);
    let query = parse("'rare' OR 'common'", Mode::Bool).expect("parses");
    let oracle = run_bool_scored(&query, &corpus, &index, &stats, &pra).expect("oracle");

    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = Executor::with_options(
            &corpus,
            &index,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let out = exec
            .run_top_k(&query, ScoredTopK { k: 10 }, &stats, &ScoreModel::Pra(&pra))
            .expect("scored top-k runs");
        assert_eq!(out.path, ScoredPath::PrunedUnion);
        assert_eq!(out.hits.len(), 10);
        for ((gn, gs), (on, os)) in out.hits.iter().zip(&oracle) {
            assert_eq!(gn, on, "{layout:?}: node order diverged");
            assert!((gs - os).abs() < 1e-9, "{layout:?}: {gs} vs {os}");
        }
        assert!(
            out.counters.entries * 2 < total,
            "{layout:?}: pruned top-10 decoded {} of {} entries",
            out.counters.entries,
            total
        );
    }
}

#[test]
fn stream_tree_handles_general_bool_on_both_layouts() {
    let (corpus, index, stats) = skewed_env();
    let registry = PredicateRegistry::with_builtins();
    let pra = PraModel::new(&corpus, &stats);
    let query = parse("('rare' AND 'common') OR NOT 'common'", Mode::Bool).expect("parses");
    let oracle = run_bool_scored(&query, &corpus, &index, &stats, &pra).expect("oracle");

    let mut per_layout: Vec<Vec<(NodeId, f64)>> = Vec::new();
    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let exec = Executor::with_options(
            &corpus,
            &index,
            &registry,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let out = exec
            .run_top_k(&query, ScoredTopK { k: 25 }, &stats, &ScoreModel::Pra(&pra))
            .expect("scored top-k runs");
        assert_eq!(out.path, ScoredPath::StreamTree);
        assert_eq!(out.hits.len(), 25);
        for ((gn, gs), (on, os)) in out.hits.iter().zip(&oracle) {
            assert_eq!(gn, on, "{layout:?}: node order diverged");
            assert_eq!(gs, os, "{layout:?}: stream tree should be bit-exact");
        }
        per_layout.push(out.hits);
    }
    assert_eq!(
        per_layout[0], per_layout[1],
        "layouts must agree bit-exactly"
    );
}
