//! Differential testing of all four engines against the FTC reference
//! interpreter — the executable content of Section 5's correctness claims.
//!
//! Random queries are drawn *within* each language class; every engine that
//! claims the class must agree with the interpreter (and therefore with
//! every other engine).

use ftsl_calculus::interp::Interpreter;
use ftsl_calculus::CalcQuery;
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::IndexBuilder;
use ftsl_lang::{classify, lower, LanguageClass, SurfaceQuery};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::{AdvanceMode, PredicateRegistry};
use proptest::prelude::*;

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    // Documents as token-index sequences; value 100+ inserts a sentence
    // break, 200+ a paragraph break.
    proptest::collection::vec(proptest::collection::vec(0usize..9, 0..14), 1..8).prop_map(|docs| {
        let texts: Vec<String> = docs
            .into_iter()
            .map(|toks| {
                let mut text = String::new();
                for t in toks {
                    match t {
                        0..=5 => {
                            text.push_str(VOCAB[t]);
                            text.push(' ');
                        }
                        6 | 7 => text.push_str(". "),
                        _ => text.push_str("\n\n"),
                    }
                }
                text
            })
            .collect();
        Corpus::from_texts(&texts)
    })
}

/// One positive or negative binary predicate application over bound vars.
fn arb_pred(nvars: usize, allow_negative: bool) -> impl Strategy<Value = SurfaceQuery> {
    let positive = prop_oneof![
        (0..6i64).prop_map(|d| ("distance".to_string(), vec![d])),
        Just(("ordered".to_string(), vec![])),
        Just(("samepara".to_string(), vec![])),
        Just(("samesent".to_string(), vec![])),
        Just(("samepos".to_string(), vec![])),
        (0..8i64).prop_map(|w| ("window".to_string(), vec![w])),
    ];
    let negative = prop_oneof![
        (0..5i64).prop_map(|d| ("not_distance".to_string(), vec![d])),
        Just(("not_ordered".to_string(), vec![])),
        Just(("diffpos".to_string(), vec![])),
        Just(("not_samepara".to_string(), vec![])),
        Just(("not_samesent".to_string(), vec![])),
    ];
    let name_consts = if allow_negative {
        prop_oneof![2 => positive, 3 => negative].boxed()
    } else {
        positive.boxed()
    };
    (name_consts, 0..nvars, 0..nvars).prop_map(|((name, consts), i, j)| SurfaceQuery::Pred {
        name,
        vars: vec![format!("p{i}"), format!("p{j}")],
        consts,
    })
}

/// A random PPRED/NPRED-class query: quantified conjunction of token
/// bindings (possibly OR-alternatives), predicates, and an optional closed
/// negation.
fn arb_stream_query(allow_negative: bool) -> impl Strategy<Value = SurfaceQuery> {
    let bindings = proptest::collection::vec((0..VOCAB.len(), any::<bool>(), 0..VOCAB.len()), 1..4);
    let preds = move |nvars| proptest::collection::vec(arb_pred(nvars, allow_negative), 0..3);
    (bindings, proptest::option::of(0..VOCAB.len())).prop_flat_map(move |(binds, not_tok)| {
        let nvars = binds.len();
        preds(nvars).prop_map(move |preds| {
            let mut conjuncts: Vec<SurfaceQuery> = Vec::new();
            for (i, (tok, use_or, alt)) in binds.iter().enumerate() {
                let var = format!("p{i}");
                let base = SurfaceQuery::VarHas(var.clone(), VOCAB[*tok].to_string());
                let bind = if *use_or {
                    SurfaceQuery::Or(
                        Box::new(base),
                        Box::new(SurfaceQuery::VarHas(var, VOCAB[*alt].to_string())),
                    )
                } else {
                    base
                };
                conjuncts.push(bind);
            }
            conjuncts.extend(preds.clone());
            let mut body = conjuncts
                .into_iter()
                .reduce(|a, b| SurfaceQuery::And(Box::new(a), Box::new(b)))
                .expect("non-empty");
            if let Some(nt) = not_tok {
                body = SurfaceQuery::And(
                    Box::new(body),
                    Box::new(SurfaceQuery::Not(Box::new(SurfaceQuery::Lit(
                        VOCAB[nt].to_string(),
                    )))),
                );
            }
            let mut query = body;
            for i in (0..nvars).rev() {
                query = SurfaceQuery::Some(format!("p{i}"), Box::new(query));
            }
            query
        })
    })
}

/// Random BOOL query.
fn arb_bool_query(depth: u32) -> BoxedStrategy<SurfaceQuery> {
    let leaf = prop_oneof![
        5 => (0..VOCAB.len()).prop_map(|t| SurfaceQuery::Lit(VOCAB[t].to_string())),
        1 => Just(SurfaceQuery::Any),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_bool_query(depth - 1);
    prop_oneof![
        2 => leaf,
        2 => (sub.clone(), sub.clone())
            .prop_map(|(a, b)| SurfaceQuery::And(Box::new(a), Box::new(b))),
        2 => (sub.clone(), sub.clone())
            .prop_map(|(a, b)| SurfaceQuery::Or(Box::new(a), Box::new(b))),
        1 => sub.prop_map(|a| SurfaceQuery::Not(Box::new(a))),
    ]
    .boxed()
}

fn reference(surface: &SurfaceQuery, corpus: &Corpus, reg: &PredicateRegistry) -> Vec<NodeId> {
    let expr = lower(surface, reg).expect("lowers");
    Interpreter::new(corpus, reg).eval_query(&CalcQuery::new(expr))
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn ppred_engine_matches_reference(
        query in arb_stream_query(false),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let expected = reference(&query, &corpus, &reg);
        let class = classify(&query, &reg);
        prop_assert!(class <= LanguageClass::Ppred, "generator produced {class}");

        let exec = Executor::new(&corpus, &index, &reg);
        let got = exec.run_surface(&query, EngineKind::Ppred).expect("ppred runs");
        prop_assert_eq!(&got.nodes, &expected, "PPRED diverged on {}", query.render());

        // Conservative advances must agree with aggressive ones.
        let slow = Executor::with_options(
            &corpus, &index, &reg,
            ExecOptions { advance_mode: AdvanceMode::Conservative, ..Default::default() },
        );
        let got_slow = slow.run_surface(&query, EngineKind::Ppred).expect("ppred runs");
        prop_assert_eq!(&got_slow.nodes, &expected, "conservative PPRED diverged");

        // The COMP engine is complete: must agree too.
        let comp = exec.run_surface(&query, EngineKind::Comp).expect("comp runs");
        prop_assert_eq!(&comp.nodes, &expected, "COMP diverged on {}", query.render());
    }

    #[test]
    fn npred_engine_matches_reference(
        query in arb_stream_query(true),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let expected = reference(&query, &corpus, &reg);

        let exec = Executor::new(&corpus, &index, &reg);
        let got = exec.run_surface(&query, EngineKind::Npred).expect("npred runs");
        prop_assert_eq!(&got.nodes, &expected, "NPRED(partial) diverged on {}", query.render());

        let full = Executor::with_options(
            &corpus, &index, &reg,
            ExecOptions { npred_full_permutations: true, ..Default::default() },
        );
        let got_full = full.run_surface(&query, EngineKind::Npred).expect("npred runs");
        prop_assert_eq!(&got_full.nodes, &expected, "NPRED(full) diverged on {}", query.render());

        let comp = exec.run_surface(&query, EngineKind::Comp).expect("comp runs");
        prop_assert_eq!(&comp.nodes, &expected, "COMP diverged on {}", query.render());
    }

    #[test]
    fn bool_engine_matches_reference(
        query in arb_bool_query(3),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let expected = reference(&query, &corpus, &reg);
        let exec = Executor::new(&corpus, &index, &reg);
        let got = exec.run_surface(&query, EngineKind::Bool).expect("bool runs");
        prop_assert_eq!(&got.nodes, &expected, "BOOL diverged on {}", query.render());

        let comp = exec.run_surface(&query, EngineKind::Comp).expect("comp runs");
        prop_assert_eq!(&comp.nodes, &expected, "COMP diverged on {}", query.render());
    }

    #[test]
    fn auto_dispatch_always_matches_reference(
        query in prop_oneof![arb_stream_query(true), arb_bool_query(2)],
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let expected = reference(&query, &corpus, &reg);
        let exec = Executor::new(&corpus, &index, &reg);
        let got = exec.run_surface(&query, EngineKind::Auto).expect("auto runs");
        prop_assert_eq!(&got.nodes, &expected, "auto diverged on {}", query.render());
    }
}
