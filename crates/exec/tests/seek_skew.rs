//! Acceptance tests for skip-aware seeking on a skewed corpus: conjunctive
//! evaluation driven by the rarest list must *decode* strictly fewer
//! inverted-list entries than a sequential scan of the operand lists, with
//! the bypassed entries accounted in [`AccessCounters::skipped`] — and the
//! block-compressed layout must agree with the decoded layout on every
//! engine that can read both.

use ftsl_corpus::SynthConfig;
use ftsl_exec::bool_eval::run_bool;
use ftsl_exec::build::IndexLayout;
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::{AccessCounters, IndexBuilder, InvertedIndex};
use ftsl_lang::{parse, Mode};
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;

/// Zipf background plus one rare and one common planted token: the regime
/// where seek-driven conjunction wins by orders of magnitude.
fn skewed_env() -> (Corpus, InvertedIndex) {
    let config = SynthConfig {
        cnodes: 1500,
        vocabulary: 800,
        tokens_per_doc: 60,
        ..SynthConfig::default()
    }
    .plant("rare", 0.01, 2)
    .plant("common", 0.6, 3);
    let corpus = config.build();
    let index = IndexBuilder::new().build(&corpus);
    (corpus, index)
}

fn df(corpus: &Corpus, index: &InvertedIndex, token: &str) -> u64 {
    index.df(corpus.token_id(token).expect("planted token")) as u64
}

#[test]
fn bool_conjunction_decodes_fewer_entries_than_sequential_scan() {
    let (corpus, index) = skewed_env();
    let rare_df = df(&corpus, &index, "rare");
    let common_df = df(&corpus, &index, "common");
    assert!(
        rare_df * 10 < common_df,
        "corpus must be skewed: {rare_df} vs {common_df}"
    );
    // What the seed's lock-step merge decoded: every entry of both lists.
    let sequential_entries = rare_df + common_df;

    let query = parse("'rare' AND 'common'", Mode::Bool).expect("parses");
    let (nodes, counters) = run_bool(&query, &corpus, &index).expect("runs");

    assert!(
        counters.entries < sequential_entries,
        "decoded {} entries, sequential scan costs {sequential_entries}",
        counters.entries
    );
    assert!(
        counters.skipped > 0,
        "seek must bypass entries on a skewed corpus"
    );
    // The seek path cannot decode more than O(rare · log common) entries;
    // generously bound by 4·rare + log-factor slack.
    assert!(
        counters.entries <= 4 * rare_df + 64,
        "decoded {} entries for rare df {rare_df}",
        counters.entries
    );

    // Same answer as the naive merge over the decoded node-id arrays.
    let rare_ids = index.list(corpus.token_id("rare").unwrap()).node_ids();
    let common_ids = index.list(corpus.token_id("common").unwrap()).node_ids();
    let expected = ftsl_exec::bool_eval::intersect_sorted(rare_ids, common_ids);
    assert_eq!(nodes, expected);
}

#[test]
fn streaming_join_seeks_instead_of_scanning() {
    let (corpus, index) = skewed_env();
    let reg = PredicateRegistry::with_builtins();
    let exec = Executor::new(&corpus, &index, &reg);
    let out = exec
        .run_surface(
            &parse("'rare' AND 'common'", Mode::Comp).unwrap(),
            EngineKind::Ppred,
        )
        .expect("ppred runs");

    let sequential_entries = df(&corpus, &index, "rare") + df(&corpus, &index, "common");
    assert!(
        out.counters.entries < sequential_entries,
        "PPRED decoded {} entries, lock-step costs {sequential_entries}",
        out.counters.entries
    );
    assert!(out.counters.skipped > 0);
}

fn layouts_agree(query: &str, engine: EngineKind) -> AccessCounters {
    let (corpus, index) = skewed_env();
    let reg = PredicateRegistry::with_builtins();
    let surface = parse(query, Mode::Comp).expect("parses");

    let decoded = Executor::new(&corpus, &index, &reg)
        .run_surface(&surface, engine)
        .expect("decoded layout runs");
    let blocks = Executor::with_options(
        &corpus,
        &index,
        &reg,
        ExecOptions {
            layout: IndexLayout::Blocks,
            ..Default::default()
        },
    )
    .run_surface(&surface, engine)
    .expect("block layout runs");

    assert_eq!(decoded.nodes, blocks.nodes, "layouts disagree on {query}");
    assert!(!decoded.nodes.is_empty(), "vacuous agreement on {query}");
    blocks.counters
}

#[test]
fn block_layout_agrees_with_decoded_on_bool() {
    let counters = layouts_agree(
        "('rare' AND 'common') OR ('common' AND NOT 'rare')",
        EngineKind::Bool,
    );
    // The compressed conjunction path must seek, not scan.
    assert!(
        counters.skipped > 0,
        "BOOL block cursors should skip: {counters:?}"
    );
}

#[test]
fn block_layout_agrees_with_decoded_on_ppred() {
    let counters = layouts_agree(
        "SOME p1 SOME p2 (p1 HAS 'rare' AND p2 HAS 'common' AND samepara(p1,p2))",
        EngineKind::Ppred,
    );
    // The compressed cursors skip whole blocks of the common list.
    assert!(
        counters.skipped > 0,
        "block cursors should skip: {counters:?}"
    );
}

#[test]
fn block_layout_agrees_with_decoded_on_npred() {
    layouts_agree(
        "SOME p1 SOME p2 (p1 HAS 'rare' AND p2 HAS 'common' AND not_distance(p1,p2,2))",
        EngineKind::Npred,
    );
}

#[test]
fn block_layout_agrees_on_union_and_negation() {
    layouts_agree(
        "SOME p1 SOME p2 ((p1 HAS 'rare' OR p1 HAS 'common') AND p2 HAS 'common' \
         AND distance(p1,p2,40)) AND NOT 'nonexistent-token'",
        EngineKind::Ppred,
    );
}
