//! Differential property tests for the physical layouts and residency
//! policies: the block-compressed layout (and the blocks-only-resident
//! index) must produce *bit-identical* results to the decoded layout for
//! random corpora and random positional-predicate trees — and the lazy
//! position decoding must be visible in the counters: a conjunction that
//! rejects entries on node ids alone decodes strictly fewer position
//! payloads than there are entries or positions in the scanned lists.

use ftsl_corpus::SynthConfig;
use ftsl_exec::build::IndexLayout;
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::{IndexBuilder, InvertedIndex, Residency};
use ftsl_lang::SurfaceQuery;
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;
use proptest::prelude::*;

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0usize..9, 0..14), 1..8).prop_map(|docs| {
        let texts: Vec<String> = docs
            .into_iter()
            .map(|toks| {
                let mut text = String::new();
                for t in toks {
                    match t {
                        0..=5 => {
                            text.push_str(VOCAB[t]);
                            text.push(' ');
                        }
                        6 | 7 => text.push_str(". "),
                        _ => text.push_str("\n\n"),
                    }
                }
                text
            })
            .collect();
        Corpus::from_texts(&texts)
    })
}

/// One random binary predicate application over bound variables — the
/// positional workhorses (ordered / distance / window / same*) plus the
/// negative forms when `allow_negative`.
fn arb_pred(nvars: usize, allow_negative: bool) -> impl Strategy<Value = SurfaceQuery> {
    let positive = prop_oneof![
        (0..6i64).prop_map(|d| ("distance".to_string(), vec![d])),
        Just(("ordered".to_string(), vec![])),
        Just(("samepara".to_string(), vec![])),
        Just(("samesent".to_string(), vec![])),
        Just(("samepos".to_string(), vec![])),
        (0..8i64).prop_map(|w| ("window".to_string(), vec![w])),
    ];
    let negative = prop_oneof![
        (0..5i64).prop_map(|d| ("not_distance".to_string(), vec![d])),
        Just(("not_ordered".to_string(), vec![])),
        Just(("diffpos".to_string(), vec![])),
        Just(("not_samepara".to_string(), vec![])),
        Just(("not_samesent".to_string(), vec![])),
    ];
    let name_consts = if allow_negative {
        prop_oneof![2 => positive, 3 => negative].boxed()
    } else {
        positive.boxed()
    };
    (name_consts, 0..nvars, 0..nvars).prop_map(|((name, consts), i, j)| SurfaceQuery::Pred {
        name,
        vars: vec![format!("p{i}"), format!("p{j}")],
        consts,
    })
}

/// A random quantified conjunction of token bindings and predicates — a
/// random predicate tree in the PPRED (or NPRED) fragment.
fn arb_stream_query(allow_negative: bool) -> impl Strategy<Value = SurfaceQuery> {
    let bindings = proptest::collection::vec((0..VOCAB.len(), any::<bool>(), 0..VOCAB.len()), 1..4);
    let preds = move |nvars| proptest::collection::vec(arb_pred(nvars, allow_negative), 0..3);
    bindings.prop_flat_map(move |binds| {
        let nvars = binds.len();
        preds(nvars).prop_map(move |preds| {
            let mut conjuncts: Vec<SurfaceQuery> = Vec::new();
            for (i, (tok, use_or, alt)) in binds.iter().enumerate() {
                let var = format!("p{i}");
                let base = SurfaceQuery::VarHas(var.clone(), VOCAB[*tok].to_string());
                conjuncts.push(if *use_or {
                    SurfaceQuery::Or(
                        Box::new(base),
                        Box::new(SurfaceQuery::VarHas(var, VOCAB[*alt].to_string())),
                    )
                } else {
                    base
                });
            }
            conjuncts.extend(preds.clone());
            let mut query = conjuncts
                .into_iter()
                .reduce(|a, b| SurfaceQuery::And(Box::new(a), Box::new(b)))
                .expect("non-empty");
            for i in (0..nvars).rev() {
                query = SurfaceQuery::Some(format!("p{i}"), Box::new(query));
            }
            query
        })
    })
}

fn run(
    corpus: &Corpus,
    index: &InvertedIndex,
    reg: &PredicateRegistry,
    query: &SurfaceQuery,
    engine: EngineKind,
    layout: IndexLayout,
) -> Vec<ftsl_model::NodeId> {
    Executor::with_options(
        corpus,
        index,
        reg,
        ExecOptions {
            layout,
            ..Default::default()
        },
    )
    .run_surface(query, engine)
    .expect("engine runs")
    .nodes
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// PPRED on `Blocks` is bit-identical to `Decoded`, and a blocks-only
    /// resident index (decoded views dropped, every engine forced onto the
    /// compressed form) agrees with both.
    #[test]
    fn ppred_blocks_bit_identical_to_decoded(
        query in arb_stream_query(false),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let decoded = run(&corpus, &index, &reg, &query, EngineKind::Ppred, IndexLayout::Decoded);
        let blocks = run(&corpus, &index, &reg, &query, EngineKind::Ppred, IndexLayout::Blocks);
        prop_assert_eq!(&decoded, &blocks, "layouts diverged on {}", query.render());

        let mut lean = index.clone();
        lean.set_residency(Residency::BlocksOnly);
        // Even a Decoded request must resolve to the compressed form.
        let resident = run(&corpus, &lean, &reg, &query, EngineKind::Ppred, IndexLayout::Decoded);
        prop_assert_eq!(&decoded, &resident, "blocks-only diverged on {}", query.render());
    }

    /// NPRED (negative predicates, multi-ordering threads) on `Blocks` is
    /// bit-identical to `Decoded`, including under blocks-only residency.
    #[test]
    fn npred_blocks_bit_identical_to_decoded(
        query in arb_stream_query(true),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let decoded = run(&corpus, &index, &reg, &query, EngineKind::Npred, IndexLayout::Decoded);
        let blocks = run(&corpus, &index, &reg, &query, EngineKind::Npred, IndexLayout::Blocks);
        prop_assert_eq!(&decoded, &blocks, "layouts diverged on {}", query.render());

        let mut lean = index.clone();
        lean.set_residency(Residency::BlocksOnly);
        let resident = run(&corpus, &lean, &reg, &query, EngineKind::Npred, IndexLayout::Blocks);
        prop_assert_eq!(&decoded, &resident, "blocks-only diverged on {}", query.render());
    }

    /// COMP (materialized algebra) streams its leaf relations at the block
    /// cursor on `Blocks` and must agree with the decoded scan — also when
    /// the decoded views only exist inside the LRU decode cache.
    #[test]
    fn comp_blocks_bit_identical_to_decoded(
        query in arb_stream_query(true),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let index = IndexBuilder::new().build(&corpus);
        let decoded = run(&corpus, &index, &reg, &query, EngineKind::Comp, IndexLayout::Decoded);
        let blocks = run(&corpus, &index, &reg, &query, EngineKind::Comp, IndexLayout::Blocks);
        prop_assert_eq!(&decoded, &blocks, "COMP layouts diverged on {}", query.render());

        let mut lean = index.clone();
        lean.set_residency(Residency::BlocksOnly);
        let resident = run(&corpus, &lean, &reg, &query, EngineKind::Comp, IndexLayout::Blocks);
        prop_assert_eq!(&decoded, &resident, "COMP blocks-only diverged on {}", query.render());
    }
}

/// Zipf background plus one rare and one common planted token — the skewed
/// regime where node-id rejection dominates.
fn skewed_env() -> (Corpus, InvertedIndex) {
    let config = SynthConfig {
        cnodes: 1500,
        vocabulary: 800,
        tokens_per_doc: 60,
        ..SynthConfig::default()
    }
    .plant("rare", 0.01, 2)
    .plant("common", 0.6, 3);
    let corpus = config.build();
    // These tests measure the *token-list* layout machinery (lazy decode,
    // residency shrink); build without the pair auxiliary index so its
    // resident bytes and rerouted query paths don't skew the counters.
    let index = IndexBuilder::new()
        .pair_config(ftsl_index::PairConfig::disabled())
        .build(&corpus);
    (corpus, index)
}

/// The lazy-decode acceptance criterion: a positional conjunction driven by
/// a rare list rejects almost every entry of the common list on node id
/// alone, so the number of decoded position payloads stays strictly below
/// both the total entry count and the total position count of the scanned
/// lists.
#[test]
fn skewed_conjunction_decodes_positions_lazily_on_blocks() {
    let (corpus, index) = skewed_env();
    let reg = PredicateRegistry::with_builtins();
    let rare = corpus.token_id("rare").unwrap();
    let common = corpus.token_id("common").unwrap();
    let total_entries =
        (index.block_list(rare).num_entries() + index.block_list(common).num_entries()) as u64;
    let total_positions =
        (index.block_list(rare).num_positions() + index.block_list(common).num_positions()) as u64;

    let exec = Executor::with_options(
        &corpus,
        &index,
        &reg,
        ExecOptions {
            layout: IndexLayout::Blocks,
            ..Default::default()
        },
    );
    let out = exec
        .run_str(
            "SOME p1 SOME p2 (p1 HAS 'rare' AND p2 HAS 'common' AND distance(p1,p2,5))",
            EngineKind::Ppred,
        )
        .expect("ppred runs");

    let c = out.counters;
    assert!(
        c.positions_decoded > 0,
        "predicate evaluation must inspect some positions: {c:?}"
    );
    assert!(
        c.positions_decoded < total_entries,
        "expected lazy decoding: {} payload positions decoded vs {total_entries} entries",
        c.positions_decoded
    );
    assert!(
        c.positions_decoded < total_positions,
        "expected lazy decoding: {} of {total_positions} positions decoded",
        c.positions_decoded
    );
    // And the same query on the decoded layout agrees bit-for-bit.
    let decoded = Executor::new(&corpus, &index, &reg)
        .run_str(
            "SOME p1 SOME p2 (p1 HAS 'rare' AND p2 HAS 'common' AND distance(p1,p2,5))",
            EngineKind::Ppred,
        )
        .expect("ppred runs");
    assert_eq!(out.nodes, decoded.nodes);
    assert!(!out.nodes.is_empty(), "vacuous agreement");
}

/// The residency acceptance criterion: dropping the decoded views shrinks
/// the resident footprint by at least 2× on the bench-style corpus — and
/// the bound survives a workload that decodes lists through the LRU cache
/// (including `IL_ANY`, the largest decoded structure), because the cache
/// is byte-budgeted.
#[test]
fn blocks_only_footprint_at_least_2x_smaller() {
    let (corpus, mut index) = skewed_env();
    let dual = index.memory_footprint();
    assert_eq!(dual.residency, Residency::Dual);
    index.set_residency(Residency::BlocksOnly);
    let lean = index.memory_footprint();
    assert_eq!(lean.decoded, 0);
    assert!(
        lean.total() * 2 <= dual.total(),
        "blocks-only {}B vs dual {}B — expected ≥2× shrink",
        lean.total(),
        dual.total()
    );

    // Hammer the decode cache: IL_ANY plus every planted/background token
    // we can name. The byte budget must keep the footprint bound intact.
    let _any = index.decoded_any();
    for tok in ["rare", "common"] {
        let _ = index.decoded_list(corpus.token_id(tok).unwrap());
    }
    let warmed = index.memory_footprint();
    assert!(
        warmed.total() * 2 <= dual.total(),
        "after cache warm-up: blocks-only {}B vs dual {}B — cache broke the bound",
        warmed.total(),
        dual.total()
    );
}
