//! Predicate selection cursors.
//!
//! Positive predicates follow Algorithm 2: `advancePosUntilSat` repeatedly
//! evaluates the predicate and, on failure, advances the cursor named by the
//! predicate's `f_i` function. Negative predicates follow Algorithm 7: the
//! selection first restores the evaluation thread's ordering among its
//! argument columns, then — on failure — moves only the cursor holding the
//! *largest* position in that ordering. Per-thread enforcement of the
//! ordering at the predicate's own arguments is exactly what makes the
//! negative-advance skip sound (Section 5.6.4); tuples violating the
//! ordering are found by the thread with the matching permutation.

use crate::cursor::FtCursor;
use ftsl_index::AccessCounters;
use ftsl_model::{NodeId, Position};
use ftsl_predicates::{AdvanceMode, Predicate};
use std::sync::Arc;

/// σ_pred over a streaming input.
pub struct SelectCursor<'a> {
    input: Box<dyn FtCursor + 'a>,
    pred: Arc<dyn Predicate>,
    arg_cols: Vec<usize>,
    consts: Vec<i64>,
    mode: AdvanceMode,
    /// For negative predicates: argument indices sorted by the evaluation
    /// thread's ordering rank, ascending. `None` for positive predicates.
    neg_order: Option<Vec<usize>>,
    /// Scratch buffer for predicate arguments.
    args: Vec<Position>,
}

impl<'a> SelectCursor<'a> {
    /// A positive-predicate selection (Algorithm 2).
    pub fn positive(
        input: Box<dyn FtCursor + 'a>,
        pred: Arc<dyn Predicate>,
        arg_cols: Vec<usize>,
        consts: Vec<i64>,
        mode: AdvanceMode,
    ) -> Self {
        let n = arg_cols.len();
        SelectCursor {
            input,
            pred,
            arg_cols,
            consts,
            mode,
            neg_order: None,
            args: vec![Position::flat(0); n],
        }
    }

    /// A negative-predicate selection (Algorithm 7). `neg_order` lists the
    /// predicate's argument indices from smallest to largest thread rank.
    pub fn negative(
        input: Box<dyn FtCursor + 'a>,
        pred: Arc<dyn Predicate>,
        arg_cols: Vec<usize>,
        consts: Vec<i64>,
        neg_order: Vec<usize>,
    ) -> Self {
        let n = arg_cols.len();
        SelectCursor {
            input,
            pred,
            arg_cols,
            consts,
            mode: AdvanceMode::Aggressive,
            neg_order: Some(neg_order),
            args: vec![Position::flat(0); n],
        }
    }

    fn load_args(&mut self) {
        for (slot, &col) in self.args.iter_mut().zip(&self.arg_cols) {
            *slot = self.input.position(col);
        }
    }

    /// `advancePosUntilSat` (Algorithm 2 / Algorithm 7).
    fn advance_until_sat(&mut self) -> bool {
        loop {
            self.load_args();
            // Negative mode: restore the thread ordering among our argument
            // columns before judging the predicate.
            if let Some(order) = self.neg_order.as_ref() {
                let mut repair: Option<(usize, u32)> = None;
                for w in order.windows(2) {
                    let (earlier, later) = (w[0], w[1]);
                    if self.args[later].offset < self.args[earlier].offset {
                        repair = Some((later, self.args[earlier].offset));
                        break;
                    }
                }
                if let Some((arg_idx, min)) = repair {
                    if !self.input.advance_position(self.arg_cols[arg_idx], min) {
                        return false;
                    }
                    continue;
                }
            }
            if self.pred.eval(&self.args, &self.consts) {
                return true;
            }
            let adv = match self.neg_order.as_ref() {
                None => self
                    .pred
                    .positive_advance(&self.args, &self.consts, self.mode)
                    .expect("positive predicate provides advances"),
                Some(order) => {
                    let move_arg = *order.last().expect("non-empty ordering");
                    self.pred
                        .negative_advance(&self.args, &self.consts, move_arg)
                        .expect("negative predicate provides advances")
                }
            };
            if !self
                .input
                .advance_position(self.arg_cols[adv.column], adv.min_offset)
            {
                return false;
            }
        }
    }
}

impl FtCursor for SelectCursor<'_> {
    fn arity(&self) -> usize {
        self.input.arity()
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        // Algorithm 2 lines 2-6.
        loop {
            self.input.advance_node()?;
            if self.advance_until_sat() {
                return self.input.node();
            }
        }
    }

    fn node(&self) -> Option<NodeId> {
        self.input.node()
    }

    fn position(&self, col: usize) -> Position {
        self.input.position(col)
    }

    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool {
        // Algorithm 2 lines 8-12.
        if !self.input.advance_position(col, min_offset) {
            return false;
        }
        self.advance_until_sat()
    }

    fn seek_node(&mut self, target: NodeId) -> Option<NodeId> {
        if let Some(n) = self.input.node() {
            if n >= target {
                return Some(n);
            }
        }
        // Seek the input past the non-candidate range, then fall back to the
        // regular satisfy-or-advance loop from the landing node.
        self.input.seek_node(target)?;
        if self.advance_until_sat() {
            return self.input.node();
        }
        self.advance_node()
    }

    fn counters(&self) -> AccessCounters {
        self.input.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::ScanCursor;
    use crate::join::JoinCursor;
    use ftsl_index::IndexBuilder;
    use ftsl_model::{Corpus, NodeId};
    use ftsl_predicates::PredicateRegistry;

    fn pred(reg: &PredicateRegistry, name: &str) -> Arc<dyn Predicate> {
        reg.get_shared(reg.lookup(name).unwrap())
    }

    fn two_token_join<'a>(
        corpus: &Corpus,
        index: &'a ftsl_index::InvertedIndex,
        t1: &str,
        t2: &str,
    ) -> Box<dyn FtCursor + 'a> {
        let a = corpus.token_id(t1).unwrap();
        let b = corpus.token_id(t2).unwrap();
        Box::new(JoinCursor::new(
            Box::new(ScanCursor::new(index.list(a))),
            Box::new(ScanCursor::new(index.list(b))),
        ))
    }

    #[test]
    fn distance_selection_matches_section_5_5_1_walkthrough() {
        // Positions mirror Figure 2: usability at 3,12,39; software at 25,
        // 29, 42 in node 0 — only (39, 42) is within distance 5.
        let text =
            "u x x x x x x x x x x x u x x x x x x x x x x x x s x x x s x x x x x x x x x u x x s";
        let corpus = Corpus::from_texts(&[text]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let join = two_token_join(&corpus, &index, "u", "s");
        let mut sel = SelectCursor::positive(
            join,
            pred(&reg, "distance"),
            vec![0, 1],
            vec![5],
            AdvanceMode::Aggressive,
        );
        assert_eq!(sel.advance_node(), Some(NodeId(0)));
        assert_eq!(sel.position(0).offset, 39);
        assert_eq!(sel.position(1).offset, 42);
        assert_eq!(sel.advance_node(), None);
    }

    #[test]
    fn selection_skips_nodes_without_solutions() {
        let corpus = Corpus::from_texts(&[
            "a x x x x x x x x b", // too far for distance 2
            "a b",                 // adjacent
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let join = two_token_join(&corpus, &index, "a", "b");
        let mut sel = SelectCursor::positive(
            join,
            pred(&reg, "distance"),
            vec![0, 1],
            vec![2],
            AdvanceMode::Aggressive,
        );
        assert_eq!(sel.advance_node(), Some(NodeId(1)));
        assert_eq!(sel.advance_node(), None);
    }

    #[test]
    fn negative_selection_finds_wide_gaps() {
        // not_distance(a, b, 4): need more than 4 intervening tokens.
        let corpus = Corpus::from_texts(&[
            "a b",             // gap 0: no
            "a x x x x x x b", // 6 intervening: yes
            "b x x x x x x a", // reversed, 6 intervening: yes
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();

        let mut found = Vec::new();
        // Thread 1: order (arg0 <= arg1); thread 2: (arg1 <= arg0).
        for order in [vec![0usize, 1], vec![1, 0]] {
            let join = two_token_join(&corpus, &index, "a", "b");
            let mut sel = SelectCursor::negative(
                join,
                pred(&reg, "not_distance"),
                vec![0, 1],
                vec![4],
                order,
            );
            while let Some(n) = sel.advance_node() {
                found.push(n.0);
            }
        }
        found.sort_unstable();
        found.dedup();
        assert_eq!(found, vec![1, 2]);
    }
}
