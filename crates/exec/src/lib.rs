//! # ftsl-exec — the query evaluation engines
//!
//! Section 5 of the paper defines one evaluation strategy per language class
//! and proves the complexity hierarchy of Figure 3. This crate implements
//! all four engines plus the dispatcher:
//!
//! * [`bool_eval`] — **BOOL / BOOL-NONEG** (5.3): sort-merge over doc-id
//!   lists; `NOT`/`ANY` complement against the node universe;
//! * [`comp`] — **COMP** (5.4): translate the calculus to the algebra
//!   (Lemma 2) and evaluate fully materialized — polynomial in the data,
//!   exponential in the query;
//! * [`ppred`] — **PPRED** (5.5, Algorithms 1–5): a pipelined cursor engine
//!   evaluating positive-predicate queries in a *single scan* over the query
//!   token inverted lists;
//! * [`npred`] — **NPRED** (5.6, Algorithms 6–7): per-ordering evaluation
//!   threads for negative predicates; implements both the paper's presented
//!   full-permutation scheme and the partial-order optimization it mentions,
//!   optionally running threads in parallel;
//! * [`engine`] — dispatch by [`ftsl_lang::LanguageClass`], with COMP as the
//!   universal fallback;
//! * [`pairscan`] — the PPRED fast path for phrase/NEAR shapes: two-scan
//!   proximity cores are rewritten to walks over the index's word-pair
//!   auxiliary lists ([`ftsl_index::pair`]) when coverage allows, with
//!   automatic fallback to position intersection;
//! * [`scored`] — **scored top-k** (Section 5.3's scoring extension as a
//!   streaming engine): flat disjunctions run a MaxScore/block-max pruned
//!   union, general BOOL trees a cursor-driven score-stream combination,
//!   both draining into a bounded heap instead of scoring every node.
//!
//! Every engine reports [`ftsl_index::AccessCounters`] so the Figure 3
//! bounds can be validated with machine-independent measurements.
//!
//! ## Positional evaluation on the compressed layout
//!
//! The streaming engines run unchanged over either physical layout
//! ([`ftsl_index::IndexLayout`]). On `Blocks`, positional predicates
//! (`ordered`, `distance`, `window`, …) evaluate *at the cursor*: entries
//! are decoded out of the delta/varint stream one at a time, and an entry's
//! position payload is only decompressed when the predicate actually
//! inspects it — entries rejected on node id alone are stepped over using
//! the stored byte length, visible in
//! [`ftsl_index::AccessCounters::positions_decoded`]:
//!
//! ```
//! use ftsl_exec::build::IndexLayout;
//! use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
//! use ftsl_index::IndexBuilder;
//! use ftsl_model::Corpus;
//! use ftsl_predicates::PredicateRegistry;
//!
//! let corpus = Corpus::from_texts(&[
//!     "rust makes systems programming approachable",
//!     "approachable systems without rust too",
//!     "rust rust rust",
//! ]);
//! let index = IndexBuilder::new().build(&corpus);
//! let registry = PredicateRegistry::with_builtins();
//! // `use_pairs: false` forces the position-intersection path this
//! // example demonstrates; by default the phrase below would resolve
//! // from the word-pair auxiliary index without touching positions.
//! let options = ExecOptions {
//!     layout: IndexLayout::Blocks,
//!     use_pairs: false,
//!     ..Default::default()
//! };
//! let exec = Executor::with_options(&corpus, &index, &registry, options);
//!
//! // "rust" strictly before "approachable", at most 3 intervening tokens —
//! // a PPRED query, evaluated directly on the compressed blocks.
//! let out = exec
//!     .run_str(
//!         "SOME p1 SOME p2 (p1 HAS 'rust' AND p2 HAS 'approachable' \
//!          AND ordered(p1,p2) AND distance(p1,p2,3))",
//!         EngineKind::Auto,
//!     )
//!     .unwrap();
//! assert_eq!(out.nodes.iter().map(|n| n.0).collect::<Vec<_>>(), vec![0]);
//! // Node 2 ("rust rust rust") was rejected on node ids alone: the join
//! // never inspected its entry, so its three position payloads were never
//! // decompressed. Only the two join-matched nodes paid position decodes.
//! let rust = corpus.token_id("rust").unwrap();
//! let total_positions = (index.block_list(rust).num_positions()
//!     + index.block_list(corpus.token_id("approachable").unwrap()).num_positions()) as u64;
//! assert!(out.counters.positions_decoded < total_positions);
//! ```

#![warn(missing_docs)]

pub mod bool_eval;
pub mod build;
pub mod comp;
pub mod cursor;
pub mod engine;
pub mod error;
pub mod join;
pub mod npred;
pub mod pairscan;
pub mod plan;
pub mod ppred;
pub mod project;
pub mod scored;
pub mod select;
pub mod setops;
pub mod snapshot;

pub use engine::{EngineKind, Executor, QueryOutput};
pub use error::{ExecError, PlanError};
pub use pairscan::PairQuery;
pub use plan::{build_plan, PlanNode};
pub use ppred::PairAttribution;
pub use scored::{ScoreModel, ScoredOutput, ScoredPath, ScoredTopK};
pub use snapshot::{ExecScratch, SnapshotExecutor};
