//! # ftsl-exec — the query evaluation engines
//!
//! Section 5 of the paper defines one evaluation strategy per language class
//! and proves the complexity hierarchy of Figure 3. This crate implements
//! all four engines plus the dispatcher:
//!
//! * [`bool_eval`] — **BOOL / BOOL-NONEG** (5.3): sort-merge over doc-id
//!   lists; `NOT`/`ANY` complement against the node universe;
//! * [`comp`] — **COMP** (5.4): translate the calculus to the algebra
//!   (Lemma 2) and evaluate fully materialized — polynomial in the data,
//!   exponential in the query;
//! * [`ppred`] — **PPRED** (5.5, Algorithms 1–5): a pipelined cursor engine
//!   evaluating positive-predicate queries in a *single scan* over the query
//!   token inverted lists;
//! * [`npred`] — **NPRED** (5.6, Algorithms 6–7): per-ordering evaluation
//!   threads for negative predicates; implements both the paper's presented
//!   full-permutation scheme and the partial-order optimization it mentions,
//!   optionally running threads in parallel;
//! * [`engine`] — dispatch by [`ftsl_lang::LanguageClass`], with COMP as the
//!   universal fallback;
//! * [`scored`] — **scored top-k** (Section 5.3's scoring extension as a
//!   streaming engine): flat disjunctions run a MaxScore/block-max pruned
//!   union, general BOOL trees a cursor-driven score-stream combination,
//!   both draining into a bounded heap instead of scoring every node.
//!
//! Every engine reports [`ftsl_index::AccessCounters`] so the Figure 3
//! bounds can be validated with machine-independent measurements.

pub mod bool_eval;
pub mod build;
pub mod comp;
pub mod cursor;
pub mod engine;
pub mod error;
pub mod join;
pub mod npred;
pub mod plan;
pub mod ppred;
pub mod project;
pub mod scored;
pub mod select;
pub mod setops;

pub use engine::{EngineKind, Executor, QueryOutput};
pub use error::{ExecError, PlanError};
pub use plan::{build_plan, PlanNode};
pub use scored::{ScoreModel, ScoredOutput, ScoredPath, ScoredTopK};
