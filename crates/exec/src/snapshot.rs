//! Query evaluation over a live-index [`Snapshot`]: every engine, unchanged,
//! across segments.
//!
//! A snapshot is a list of segments, each an ordinary corpus + inverted
//! index over *local* node ids plus a tombstone bitmap. Every query in this
//! workspace is per-node — a context node matches (and scores) based on its
//! own content plus collection-level statistics — so multi-segment
//! evaluation decomposes exactly:
//!
//! 1. run the engine on each segment as-is (the engines are byte-for-byte
//!    the single-index ones; the compressed layout, seeking cursors, and
//!    plan selection all apply per segment);
//! 2. drop tombstoned nodes (streaming top-k filters *inside* the
//!    evaluation via [`ftsl_index::DeleteFilteredCursor`], so deleted
//!    documents cannot occupy heap slots; the set-producing engines filter
//!    their result lists);
//! 3. remap surviving local ids to global ids and concatenate — segments
//!    own disjoint, ascending global ranges, so concatenation *is* the
//!    merged ascending result;
//! 4. **sum** the per-segment [`AccessCounters`] into one report (the
//!    total decode work of the query, not the work of whichever segment
//!    happened to run last).
//!
//! Scored paths take their statistics from
//! [`ftsl_scoring::SnapshotStats`], whose per-segment [`ScoreStats`] carry
//! collection-wide `df`/`db_size` — which is what makes snapshot scores
//! bit-identical to a monolithic index over the same live documents.

use crate::engine::{counter_attrs, EngineKind, EngineUsed, ExecOptions, Executor, QueryOutput};
use crate::error::ExecError;
use crate::pairscan::{self, PairQuery};
use crate::scored::{
    flat_disjunction, run_scored_top_k_filtered, ScoreModel, ScoredOutput, ScoredPath, ScoredTopK,
};
use ftsl_index::{AccessCounters, IndexBuilder, InvertedIndex, ScoredCursor, Snapshot};
use ftsl_lang::{classify, parse, LanguageClass, Mode, SurfaceQuery};
use ftsl_model::{Corpus, NodeId};
use ftsl_obs::TraceBuilder;
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::{
    pra_tree_bound, pra_union_cursors, run_bool_topk_into, tfidf_union_cursors, topk_union_into,
    union_bound, ScoreStats, SnapshotStats, TopK, UnionKind,
};
use std::sync::OnceLock;

/// The empty corpus/index pair a zero-segment snapshot evaluates against,
/// so error semantics (wrong engine, unstreamable shapes) match a frozen
/// empty index exactly.
fn empty_pair() -> &'static (Corpus, InvertedIndex) {
    static EMPTY: OnceLock<(Corpus, InvertedIndex)> = OnceLock::new();
    EMPTY.get_or_init(|| {
        let corpus = Corpus::new();
        let index = IndexBuilder::new().build(&corpus);
        (corpus, index)
    })
}

/// Reusable per-worker evaluation state for [`SnapshotExecutor::run_top_k_with`].
///
/// A serving worker keeps one `ExecScratch` for its lifetime and threads it
/// through every query it runs: the top-k collector inside is
/// [`TopK::reset`] between queries instead of reconstructed, so its heap
/// allocation is paid once per worker, not once per query. Pairs with the
/// thread-local cursor-scratch pool in `ftsl-index` (cursors lease decoded
/// block buffers per thread automatically) to make the steady-state scored
/// hot path allocation-free.
#[derive(Debug)]
pub struct ExecScratch {
    topk: TopK,
}

impl ExecScratch {
    /// Fresh scratch; the collector grows to the first query's `k` and is
    /// reused from then on.
    pub fn new() -> Self {
        ExecScratch { topk: TopK::new(0) }
    }
}

impl Default for ExecScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Executor over a point-in-time snapshot of a live index.
pub struct SnapshotExecutor<'a> {
    snapshot: &'a Snapshot,
    registry: &'a PredicateRegistry,
    options: ExecOptions,
}

impl<'a> SnapshotExecutor<'a> {
    /// Executor with default options.
    pub fn new(snapshot: &'a Snapshot, registry: &'a PredicateRegistry) -> Self {
        Self::with_options(snapshot, registry, ExecOptions::default())
    }

    /// Executor with explicit options (layout, advance mode, ...).
    pub fn with_options(
        snapshot: &'a Snapshot,
        registry: &'a PredicateRegistry,
        options: ExecOptions,
    ) -> Self {
        SnapshotExecutor {
            snapshot,
            registry,
            options,
        }
    }

    /// Parse a query (COMP syntax subsumes all three languages) and run it.
    pub fn run_str(&self, input: &str, engine: EngineKind) -> Result<QueryOutput, ExecError> {
        let surface = parse(input, Mode::Comp).map_err(|e| ExecError::Lang(e.to_string()))?;
        self.run_surface(&surface, engine)
    }

    /// Run an already-parsed surface query over every segment, returning
    /// globally-remapped matches in ascending global-id order with the
    /// per-segment work counters summed.
    pub fn run_surface(
        &self,
        surface: &SurfaceQuery,
        engine: EngineKind,
    ) -> Result<QueryOutput, ExecError> {
        let class = classify(surface, self.registry);
        if self.snapshot.segments().is_empty() {
            let (corpus, index) = empty_pair();
            let exec = Executor::with_options(corpus, index, self.registry, self.options);
            return exec.run_surface(surface, engine);
        }
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut counters = AccessCounters::new();
        let mut used: Option<EngineUsed> = None;
        let mut tb = self.options.trace.then(TraceBuilder::new);
        for (i, seg) in self.snapshot.segments().iter().enumerate() {
            let data = seg.data();
            let exec =
                Executor::with_options(data.corpus(), data.index(), self.registry, self.options);
            let seg_span = tb.as_mut().map(|b| b.open(format!("segment {i}")));
            let mut out = exec.run_surface(surface, engine)?;
            if let (Some(b), Some(id)) = (tb.as_mut(), seg_span) {
                if let Some(t) = out.trace.take() {
                    b.adopt(*t);
                }
                counter_attrs(b, id, &out.counters);
                b.attr(id, "matches", out.nodes.len() as u64);
                b.close(id);
            }
            counters += out.counters;
            // A segment may individually fall back (e.g. PPRED → COMP);
            // report the most general engine any segment needed.
            used = Some(match used {
                Some(prev) => max_engine(prev, out.engine),
                None => out.engine,
            });
            nodes.extend(
                out.nodes
                    .iter()
                    .filter(|n| seg.deletes().is_live(n.index()))
                    .map(|n| data.global_of(n.index())),
            );
        }
        Ok(QueryOutput {
            nodes,
            counters,
            engine: used.expect("at least one segment ran"),
            class,
            trace: tb.map(|b| Box::new(b.finish())),
        })
    }

    /// Run a streaming scored top-k query across segments through **one
    /// shared heap with a global threshold**: every segment's impact bound
    /// is read from list metadata first (no posting decoded), segments are
    /// evaluated in descending-bound order so later ones start against an
    /// already-tightened k-th score, and a segment whose whole bound falls
    /// below the current threshold is skipped outright
    /// ([`AccessCounters::segments_skipped`]).
    ///
    /// Results are bit-identical to a monolithic index over the same live
    /// documents: per-segment scores fold in the same token order with the
    /// same collection-wide statistics, candidates enter the heap under
    /// their *global* ids (so tie-breaks match the monolithic ranking), and
    /// every pruning decision tests a sound upper bound against a threshold
    /// that only ever tightens.
    pub fn run_top_k(
        &self,
        surface: &SurfaceQuery,
        spec: ScoredTopK,
        stats: &SnapshotStats,
        model: &ScoreModel<'_>,
    ) -> Result<ScoredOutput, ExecError> {
        self.run_top_k_with(surface, spec, stats, model, &mut ExecScratch::new())
    }

    /// [`Self::run_top_k`] with caller-owned reusable evaluation state —
    /// the serving hot path. Identical results; the only difference is
    /// where the top-k collector's allocation lives.
    pub fn run_top_k_with(
        &self,
        surface: &SurfaceQuery,
        spec: ScoredTopK,
        stats: &SnapshotStats,
        model: &ScoreModel<'_>,
        scratch: &mut ExecScratch,
    ) -> Result<ScoredOutput, ExecError> {
        if self.snapshot.segments().is_empty() {
            let (corpus, index) = empty_pair();
            let empty_stats = ScoreStats::compute(corpus, index);
            return run_scored_top_k_filtered(
                surface,
                corpus,
                index,
                &empty_stats,
                model,
                self.options.layout,
                spec,
                None,
            );
        }
        // Dispatch once for the whole snapshot (it depends only on query
        // shape), so shape errors surface regardless of segment pruning.
        let flat = flat_disjunction(surface);
        let layout = self.options.layout;
        enum SegPlan<'s> {
            /// Flat disjunction: prebuilt union cursors (their construction
            /// reads only list metadata, so a skipped segment costs no
            /// decode work).
            Union(Vec<Box<dyn ScoredCursor + 's>>, UnionKind),
            /// General BOOL tree under PRA; streams are built only if the
            /// segment is actually evaluated.
            Tree,
        }
        let mut plans: Vec<(usize, f64, SegPlan)> = Vec::new();
        for (i, seg) in self.snapshot.segments().iter().enumerate() {
            let data = seg.data();
            let (corpus, index) = (data.corpus(), data.index());
            let seg_stats = stats.segment(i);
            let live = Some(seg.deletes());
            let (bound, plan) = match (model, &flat) {
                (ScoreModel::TfIdf(m), Some(tokens)) => {
                    let cursors =
                        tfidf_union_cursors(tokens, corpus, index, seg_stats, m, layout, live);
                    (
                        union_bound(&cursors, UnionKind::Sum),
                        SegPlan::Union(cursors, UnionKind::Sum),
                    )
                }
                (ScoreModel::TfIdf(_), None) => {
                    return Err(ExecError::WrongEngine {
                        engine: "TOPK",
                        reason: format!(
                            "TF-IDF top-k ranks flat token disjunctions; {} is not one",
                            surface.render()
                        ),
                    });
                }
                (ScoreModel::Pra(m), Some(tokens)) => {
                    let cursors =
                        pra_union_cursors(tokens, corpus, index, seg_stats, m, layout, live);
                    (
                        union_bound(&cursors, UnionKind::ProbOr),
                        SegPlan::Union(cursors, UnionKind::ProbOr),
                    )
                }
                (ScoreModel::Pra(m), None) => {
                    let bound = pra_tree_bound(surface, corpus, index, seg_stats, m, layout)
                        .map_err(|reason| ExecError::WrongEngine {
                            engine: "TOPK",
                            reason,
                        })?;
                    (bound, SegPlan::Tree)
                }
            };
            plans.push((i, bound, plan));
        }
        // Highest-impact segments first (stable on ties: snapshot order),
        // so the threshold tightens as early as possible.
        plans.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let path = if flat.is_some() {
            ScoredPath::PrunedUnion
        } else {
            ScoredPath::StreamTree
        };
        let topk = &mut scratch.topk;
        topk.reset(spec.k);
        let mut counters = AccessCounters::new();
        let mut tb = self.options.trace.then(TraceBuilder::new);
        let root_span = tb.as_mut().map(|b| {
            b.open(match path {
                ScoredPath::PrunedUnion => "top-k pruned union",
                _ => "top-k stream tree",
            })
        });
        for (i, bound, plan) in plans {
            if !topk.could_enter(bound) {
                counters.segments_skipped += 1;
                if let Some(b) = tb.as_mut() {
                    let id = b.open(format!("segment {i}"));
                    b.note(
                        id,
                        format!("skipped: score bound {bound:.4} below threshold"),
                    );
                    b.close(id);
                }
                continue;
            }
            let seg = &self.snapshot.segments()[i];
            let data = seg.data();
            let globals = Some(data.globals());
            let seg_span = tb.as_mut().map(|b| b.open(format!("segment {i}")));
            let delta = match plan {
                SegPlan::Union(cursors, kind) => topk_union_into(cursors, kind, topk, globals),
                SegPlan::Tree => {
                    let ScoreModel::Pra(m) = model else {
                        unreachable!("TF-IDF tree shapes were rejected at dispatch")
                    };
                    run_bool_topk_into(
                        surface,
                        data.corpus(),
                        data.index(),
                        stats.segment(i),
                        m,
                        layout,
                        Some(seg.deletes()),
                        topk,
                        globals,
                    )
                    .map_err(|reason| ExecError::WrongEngine {
                        engine: "TOPK",
                        reason,
                    })?
                }
            };
            if let (Some(b), Some(id)) = (tb.as_mut(), seg_span) {
                b.note(id, format!("score bound {bound:.4}"));
                counter_attrs(b, id, &delta);
                b.close(id);
            }
            counters += delta;
        }
        let hits = topk.drain_ranked();
        let trace = tb.map(|mut b| {
            if let Some(id) = root_span {
                b.attr(id, "hits", hits.len() as u64);
                b.attr(id, "segments_skipped", counters.segments_skipped);
                b.close(id);
            }
            Box::new(b.finish())
        });
        Ok(ScoredOutput {
            hits,
            counters,
            path,
            trace,
        })
    }

    /// Run a proximity-ranked NEAR/phrase top-k across segments: documents
    /// matching the pair query score by [`ftsl_scoring::closeness`] of
    /// their minimum qualifying gap, through the same global-threshold
    /// machinery as [`Self::run_top_k`] — segments are visited in
    /// descending score-bound order (bounds read from pair-list `min_gap`
    /// metadata without decoding a posting), whole segments that cannot
    /// beat the k-th score are skipped, and within a segment whole pair
    /// blocks are skipped on their block-max closeness. Tombstoned
    /// documents are filtered before insertion; segments the pair index
    /// does not cover fall back to position intersection.
    pub fn run_near_top_k(&self, q: &PairQuery, k: usize) -> ScoredOutput {
        self.run_near_top_k_with(q, k, &mut ExecScratch::new())
    }

    /// [`Self::run_near_top_k`] with caller-owned reusable evaluation
    /// state — the serving hot path.
    pub fn run_near_top_k_with(
        &self,
        q: &PairQuery,
        k: usize,
        scratch: &mut ExecScratch,
    ) -> ScoredOutput {
        let topk = &mut scratch.topk;
        topk.reset(k);
        let mut counters = AccessCounters::new();
        let mut tb = self.options.trace.then(TraceBuilder::new);
        let root_span = tb.as_mut().map(|b| b.open("near top-k (pair proximity)"));
        let mut plans: Vec<(usize, f64)> = self
            .snapshot
            .segments()
            .iter()
            .enumerate()
            .map(|(i, seg)| {
                let data = seg.data();
                (i, pairscan::near_bound(q, data.corpus(), data.index()))
            })
            .collect();
        // Highest-bound segments first (stable on ties: snapshot order),
        // so the threshold tightens as early as possible.
        plans.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for (i, bound) in plans {
            if bound <= 0.0 || !topk.could_enter(bound) {
                counters.segments_skipped += 1;
                if let Some(b) = tb.as_mut() {
                    let id = b.open(format!("segment {i}"));
                    b.note(id, format!("skipped: closeness bound {bound:.4}"));
                    b.close(id);
                }
                continue;
            }
            let seg = &self.snapshot.segments()[i];
            let data = seg.data();
            let seg_span = tb.as_mut().map(|b| b.open(format!("segment {i}")));
            let delta = pairscan::near_topk_into(q, data.corpus(), data.index(), topk, |n| {
                seg.deletes()
                    .is_live(n.index())
                    .then(|| data.global_of(n.index()))
            });
            if let (Some(b), Some(id)) = (tb.as_mut(), seg_span) {
                b.note(id, format!("closeness bound {bound:.4}"));
                b.note(
                    id,
                    if delta.pair_entries > 0 {
                        "pair path: word-pair list walk"
                    } else if delta.positions > 0 || delta.positions_decoded > 0 {
                        "pair path: not covered — position-intersection fallback"
                    } else {
                        "no candidates"
                    },
                );
                counter_attrs(b, id, &delta);
                b.close(id);
            }
            counters += delta;
        }
        let hits = topk.drain_ranked();
        let trace = tb.map(|mut b| {
            if let Some(id) = root_span {
                b.attr(id, "hits", hits.len() as u64);
                b.attr(id, "segments_skipped", counters.segments_skipped);
                b.close(id);
            }
            Box::new(b.finish())
        });
        ScoredOutput {
            hits,
            counters,
            path: ScoredPath::PairProximity,
            trace,
        }
    }

    /// The snapshot this executor reads.
    pub fn snapshot(&self) -> &Snapshot {
        self.snapshot
    }

    /// The language class the query would be assigned (Figure 3).
    pub fn classify(&self, surface: &SurfaceQuery) -> LanguageClass {
        classify(surface, self.registry)
    }
}

/// The more general of two engines (dispatch order of Figure 3): if any
/// segment needed the COMP fallback, the query as a whole is reported as
/// COMP.
fn max_engine(a: EngineUsed, b: EngineUsed) -> EngineUsed {
    let rank = |e: EngineUsed| match e {
        EngineUsed::Bool => 0,
        EngineUsed::Ppred => 1,
        EngineUsed::Npred => 2,
        EngineUsed::Comp => 3,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::{LiveConfig, LiveIndex};

    fn manual() -> LiveConfig {
        LiveConfig {
            background_merge: false,
            ..LiveConfig::default()
        }
    }

    fn live_fixture() -> LiveIndex {
        let live = LiveIndex::with_config(manual());
        live.add_document("test driven usability");
        live.add_document("usability test");
        live.flush();
        live.add_document("test test something");
        live.add_document("nothing here");
        live.flush();
        live.add_document("buffered test usability");
        live
    }

    #[test]
    fn multi_segment_bool_query_remaps_and_concatenates() {
        let live = live_fixture();
        let snap = live.snapshot();
        let reg = PredicateRegistry::with_builtins();
        let exec = SnapshotExecutor::new(&snap, &reg);
        let out = exec
            .run_str("'test' AND 'usability'", EngineKind::Auto)
            .unwrap();
        assert_eq!(out.engine, EngineUsed::Bool);
        let ids: Vec<u32> = out.nodes.iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 1, 4], "ascending global ids across segments");
    }

    #[test]
    fn deleted_nodes_vanish_from_all_engines() {
        let live = live_fixture();
        live.delete_node(NodeId(1));
        let snap = live.snapshot();
        let reg = PredicateRegistry::with_builtins();
        let exec = SnapshotExecutor::new(&snap, &reg);
        for engine in [EngineKind::Auto, EngineKind::Comp] {
            let out = exec.run_str("'usability'", engine).unwrap();
            let ids: Vec<u32> = out.nodes.iter().map(|n| n.0).collect();
            assert_eq!(ids, vec![0, 4], "{engine:?}");
        }
    }

    #[test]
    fn counters_are_summed_across_segments_not_last_writer_wins() {
        let live = live_fixture();
        let snap = live.snapshot();
        let reg = PredicateRegistry::with_builtins();
        let exec = SnapshotExecutor::new(&snap, &reg);
        let whole = exec.run_str("'test'", EngineKind::Auto).unwrap();
        // Oracle: run each segment alone and sum by hand.
        let mut by_hand = AccessCounters::new();
        let mut last = AccessCounters::new();
        for seg in snap.segments() {
            let single = Executor::new(seg.data().corpus(), seg.data().index(), &reg)
                .run_str("'test'", EngineKind::Auto)
                .unwrap();
            by_hand += single.counters;
            last = single.counters;
        }
        assert_eq!(whole.counters, by_hand, "summed, not sampled");
        assert_ne!(
            whole.counters, last,
            "the last segment alone must not masquerade as the total"
        );
    }

    #[test]
    fn empty_snapshot_preserves_error_semantics() {
        let live = LiveIndex::with_config(manual());
        let snap = live.snapshot();
        let reg = PredicateRegistry::with_builtins();
        let exec = SnapshotExecutor::new(&snap, &reg);
        let ok = exec.run_str("'anything'", EngineKind::Auto).unwrap();
        assert!(ok.nodes.is_empty());
        let err = exec.run_str("SOME p1 (p1 HAS 'x')", EngineKind::Bool);
        assert!(matches!(err, Err(ExecError::WrongEngine { .. })));
    }

    #[test]
    fn ppred_and_comp_run_per_segment() {
        let live = live_fixture();
        let snap = live.snapshot();
        let reg = PredicateRegistry::with_builtins();
        let exec = SnapshotExecutor::new(&snap, &reg);
        let q = "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))";
        let ppred = exec.run_str(q, EngineKind::Ppred).unwrap();
        let comp = exec.run_str(q, EngineKind::Comp).unwrap();
        assert_eq!(ppred.nodes, comp.nodes);
        assert!(!ppred.nodes.is_empty());
        assert_eq!(ppred.engine, EngineUsed::Ppred);
    }
}
