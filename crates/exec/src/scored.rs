//! Scored top-k dispatch: route a BOOL-shaped query to the cheapest sound
//! streaming scored evaluator.
//!
//! Mirrors the unscored dispatcher's philosophy (classify, then pick the
//! least-work engine): flat disjunctions — the ranked-query workhorse — go
//! through the MaxScore/block-max pruned union; general `AND`/`OR`/`NOT`
//! trees under PRA semantics go through the cursor-driven score-stream
//! tree. Both run on whichever physical layout
//! ([`crate::engine::ExecOptions::layout`]) the executor was configured
//! with, and report [`ftsl_index::AccessCounters`] so pruning wins are
//! measurable.

use crate::error::ExecError;
use ftsl_index::{AccessCounters, DeleteSet, IndexLayout, InvertedIndex};
use ftsl_lang::SurfaceQuery;
use ftsl_model::{Corpus, NodeId};
use ftsl_scoring::{PraModel, ScoreStats, TfIdfModel};

/// The scored top-k query spec: how many results to retain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoredTopK {
    /// Number of results to keep (the pruning budget: smaller `k` means a
    /// higher heap threshold sooner, hence more skipped blocks).
    pub k: usize,
}

/// Which scoring model ranks the hits.
pub enum ScoreModel<'m> {
    /// Section 3.1 cosine TF-IDF (additive union). Only flat disjunctions
    /// of tokens are rankable — the classic oracle defines nothing else.
    TfIdf(&'m TfIdfModel),
    /// Section 3.2/5.3 probabilistic scoring: full BOOL trees.
    Pra(&'m PraModel),
}

/// The streaming strategy the dispatcher chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoredPath {
    /// MaxScore/block-max pruned k-way union over a flat disjunction.
    PrunedUnion,
    /// Cursor-driven score-stream tree (AND/OR/NOT combination).
    StreamTree,
    /// Word-pair proximity walk ranked by closeness
    /// ([`crate::pairscan::near_topk_into`]), block-max pruned on the
    /// pair lists' `min_gap` headers.
    PairProximity,
}

/// Result of a scored top-k run.
#[derive(Clone, Debug)]
pub struct ScoredOutput {
    /// `(node, score)` in ranking order, at most `k` rows.
    pub hits: Vec<(NodeId, f64)>,
    /// Decode/skip work counters — `entries` is what pruning saves,
    /// `skipped`/`blocks_skipped` is where the savings went.
    pub counters: AccessCounters,
    /// Strategy used.
    pub path: ScoredPath,
    /// Span tree recorded when tracing was requested (snapshot top-k
    /// paths); `None` on the untraced paths.
    pub trace: Option<Box<ftsl_obs::Trace>>,
}

/// If `query` is a flat disjunction of token literals (`'a' OR 'b' OR ...`,
/// including a single literal), collect its tokens.
pub fn flat_disjunction(query: &SurfaceQuery) -> Option<Vec<&str>> {
    fn walk<'q>(q: &'q SurfaceQuery, out: &mut Vec<&'q str>) -> bool {
        match q {
            SurfaceQuery::Lit(tok) => {
                out.push(tok);
                true
            }
            SurfaceQuery::Or(a, b) => walk(a, out) && walk(b, out),
            _ => false,
        }
    }
    let mut tokens = Vec::new();
    walk(query, &mut tokens).then_some(tokens)
}

/// Run a scored top-k query on the given layout.
pub fn run_scored_top_k(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &ScoreModel<'_>,
    layout: IndexLayout,
    spec: ScoredTopK,
) -> Result<ScoredOutput, ExecError> {
    run_scored_top_k_filtered(query, corpus, index, stats, model, layout, spec, None)
}

/// [`run_scored_top_k`] over one live-index segment: a delete set routes
/// every streaming path through its tombstone-filtered variant, so deleted
/// documents neither appear in nor displace the top-k.
#[allow(clippy::too_many_arguments)]
pub fn run_scored_top_k_filtered(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &ScoreModel<'_>,
    layout: IndexLayout,
    spec: ScoredTopK,
    live: Option<&DeleteSet>,
) -> Result<ScoredOutput, ExecError> {
    let flat = flat_disjunction(query);
    match model {
        ScoreModel::TfIdf(m) => {
            let Some(tokens) = flat else {
                return Err(ExecError::WrongEngine {
                    engine: "TOPK",
                    reason: format!(
                        "TF-IDF top-k ranks flat token disjunctions; {} is not one",
                        query.render()
                    ),
                });
            };
            let out = ftsl_scoring::topk_tfidf_filtered(
                &tokens, corpus, index, stats, m, layout, spec.k, live,
            );
            Ok(ScoredOutput {
                hits: out.hits,
                counters: out.counters,
                path: ScoredPath::PrunedUnion,
                trace: None,
            })
        }
        ScoreModel::Pra(m) => {
            if let Some(tokens) = flat {
                let out = ftsl_scoring::topk_pra_disjunction_filtered(
                    &tokens, corpus, index, stats, m, layout, spec.k, live,
                );
                return Ok(ScoredOutput {
                    hits: out.hits,
                    counters: out.counters,
                    path: ScoredPath::PrunedUnion,
                    trace: None,
                });
            }
            let out = ftsl_scoring::run_bool_topk_filtered(
                query, corpus, index, stats, m, layout, spec.k, live,
            )
            .map_err(|reason| ExecError::WrongEngine {
                engine: "TOPK",
                reason,
            })?;
            Ok(ScoredOutput {
                hits: out.hits,
                counters: out.counters,
                path: ScoredPath::StreamTree,
                trace: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{parse, Mode};

    #[test]
    fn flat_disjunctions_are_detected() {
        let q = parse("'a' OR 'b' OR 'c'", Mode::Bool).unwrap();
        assert_eq!(flat_disjunction(&q), Some(vec!["a", "b", "c"]));
        let q = parse("'a'", Mode::Bool).unwrap();
        assert_eq!(flat_disjunction(&q), Some(vec!["a"]));
        let q = parse("'a' OR ('b' AND 'c')", Mode::Bool).unwrap();
        assert_eq!(flat_disjunction(&q), None);
        let q = parse("NOT 'a'", Mode::Bool).unwrap();
        assert_eq!(flat_disjunction(&q), None);
    }

    #[test]
    fn tfidf_rejects_non_disjunctions() {
        let corpus = Corpus::from_texts(&["a b", "b c"]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&["a"], &corpus, &stats);
        let q = parse("'a' AND 'b'", Mode::Bool).unwrap();
        let err = run_scored_top_k(
            &q,
            &corpus,
            &index,
            &stats,
            &ScoreModel::TfIdf(&model),
            IndexLayout::Decoded,
            ScoredTopK { k: 3 },
        );
        assert!(matches!(err, Err(ExecError::WrongEngine { .. })));
    }
}
