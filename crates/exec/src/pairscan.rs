//! Pair-index fast path: recognize two-scan proximity cores and answer
//! them from the word-pair auxiliary index ([`ftsl_index::pair`]).
//!
//! A PPRED plan of the shape
//!
//! ```text
//! project*                                 (Exists projections)
//!   select {ordered | distance | window}*  (≥ 1 gap-bounding predicate)
//!     join
//!       scan ("a")
//!       scan ("b")
//! ```
//!
//! asks exactly the question the pair index precomputes: *is there an
//! occurrence pair of `a` and `b` in this document with forward gap at
//! most `g`?* [`recognize`] detects the shape and folds every predicate
//! into a single gap bound plus an optional direction; [`execute`] then
//! answers it from one pair-list walk (two, merged, for the symmetric
//! case) instead of intersecting two position streams.
//!
//! Both halves are total over inputs and *conservative*: any shape,
//! predicate, bound, or coverage condition outside the contract returns
//! `None` and the caller proceeds down the ordinary streaming path, so
//! the rewrite can never change a query's answer — only how it is
//! computed. The one non-obvious refusal is a symmetric query over the
//! *same* token (`distance(p1,p2,d)` with both scans on `'a'`): the two
//! variables may bind the same position, which satisfies `distance`
//! trivially, while the pair index only stores strictly-forward gaps.
//!
//! The tri-state [`PairLookup`] makes absence useful: when both tokens
//! are covered but the key is missing, the answer is **provably empty**
//! and the fast path returns the empty result without touching a single
//! posting.

use crate::plan::PlanNode;
use ftsl_index::pair::min_forward_gaps;
use ftsl_index::{AccessCounters, InvertedIndex, PairCursor, PairList, PairLookup};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::{closeness, TopK};

/// A recognized two-token proximity query, normalized to pair-index
/// terms: documents where `second` occurs after `first` with forward gap
/// `≤ bound` (both directions when not `directed`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairQuery {
    /// Token the forward gap is measured from.
    pub first: String,
    /// Token the forward gap is measured to.
    pub second: String,
    /// True when `ordered` pins the direction `first → second`; false
    /// means either direction within the bound qualifies.
    pub directed: bool,
    /// Largest qualifying forward gap (offset difference), ≥ 1.
    pub bound: u32,
}

/// Constraints gathered while walking a candidate plan.
#[derive(Default)]
struct Gathered {
    /// Token of each leaf scan, in plan order (at most two).
    scans: Vec<String>,
    /// Direction pinned by `ordered(sa, sb)`, as scan indices.
    direction: Option<(usize, usize)>,
    /// Tightest gap bound implied by `distance`/`window` selections.
    bound: Option<u32>,
}

impl Gathered {
    fn tighten(&mut self, bound: u32) {
        self.bound = Some(self.bound.map_or(bound, |b| b.min(bound)));
    }
}

/// Try to fold `root` (a PPRED plan, pre-join-reordering) into a
/// [`PairQuery`]. `None` means the plan is outside the pair fragment and
/// must run on the ordinary streaming path.
pub fn recognize(root: &PlanNode, registry: &PredicateRegistry) -> Option<PairQuery> {
    let mut st = Gathered::default();
    walk(root, registry, &mut st)?;
    if st.scans.len() != 2 {
        return None;
    }
    // A direction alone (`ordered` without a distance/window) is an
    // unbounded forward search, which the windowed pair index cannot
    // answer; a bound of 0 has no forward witness either (and for equal
    // tokens is satisfied by a shared binding the index cannot see).
    let bound = st.bound.filter(|&b| b >= 1)?;
    match st.direction {
        Some((s0, s1)) => Some(PairQuery {
            first: st.scans[s0].clone(),
            second: st.scans[s1].clone(),
            directed: true,
            bound,
        }),
        // Symmetric over one token: p1 and p2 may bind the *same*
        // position, satisfying distance/window with gap 0 — outside the
        // strictly-forward pair semantics.
        None if st.scans[0] == st.scans[1] => None,
        None => Some(PairQuery {
            first: st.scans[0].clone(),
            second: st.scans[1].clone(),
            directed: false,
            bound,
        }),
    }
}

/// Walk one plan node, returning the scan index feeding each output
/// column (`None` = shape outside the pair fragment).
fn walk(node: &PlanNode, registry: &PredicateRegistry, st: &mut Gathered) -> Option<Vec<usize>> {
    match node {
        PlanNode::Scan { token, .. } => {
            if st.scans.len() == 2 {
                return None;
            }
            st.scans.push(token.clone());
            Some(vec![st.scans.len() - 1])
        }
        PlanNode::Join(a, b) => {
            let mut cols = walk(a, registry, st)?;
            cols.extend(walk(b, registry, st)?);
            Some(cols)
        }
        PlanNode::Project { input, keep } => {
            let cols = walk(input, registry, st)?;
            keep.iter().map(|&k| cols.get(k).copied()).collect()
        }
        PlanNode::Select {
            input,
            pred,
            arg_cols,
            consts,
        } => {
            let cols = walk(input, registry, st)?;
            if arg_cols.len() != 2 {
                return None; // n-ary window over 3+ variables, etc.
            }
            let sa = cols.get(*arg_cols.first()?).copied()?;
            let sb = cols.get(*arg_cols.get(1)?).copied()?;
            if sa == sb {
                return None; // predicate over a single variable
            }
            match registry.get(*pred).name() {
                "ordered" => match st.direction {
                    None => st.direction = Some((sa, sb)),
                    Some(d) if d == (sa, sb) => {}
                    // Contradictory directions: provably empty, but rare
                    // enough that the ordinary path can say so.
                    Some(_) => return None,
                },
                // `distance(p1, p2, d)`: at most `d` intervening tokens,
                // i.e. offset gap ≤ d + 1 in either direction.
                "distance" => {
                    let d = *consts.first()?;
                    if d < 0 {
                        return None;
                    }
                    st.tighten(u32::try_from(d.saturating_add(1)).unwrap_or(u32::MAX));
                }
                // `window(p1, p2, w)`: max − min offset ≤ w.
                "window" => {
                    let w = *consts.first()?;
                    if w < 1 {
                        return None;
                    }
                    st.tighten(u32::try_from(w).unwrap_or(u32::MAX));
                }
                _ => return None, // samepos/samepara/samesent/…
            }
            Some(cols)
        }
        PlanNode::ScanAny { .. } | PlanNode::Union(..) | PlanNode::Diff(..) => None,
    }
}

/// Answer a recognized query from the index's pair lists. `None` means
/// the index cannot cover it (pairs disabled, bound beyond the indexed
/// window, or a token below the df cutoff) and the caller must fall back
/// to position intersection. `Some` results are exact: matching nodes
/// ascending, plus the access counters the walk paid.
pub fn execute(
    q: &PairQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
) -> Option<(Vec<NodeId>, AccessCounters)> {
    let pairs = index.pairs();
    if pairs.config().window == 0 || q.bound > pairs.config().window {
        return None;
    }
    let mut counters = AccessCounters::new();
    let (Some(a), Some(b)) = (corpus.token_id(&q.first), corpus.token_id(&q.second)) else {
        // A token absent from the corpus has an empty scan, so the join
        // is empty regardless of predicates.
        return Some((Vec::new(), counters));
    };
    if a == b && !q.directed {
        return None; // guarded by `recognize`; kept for direct callers
    }
    let forward = match pairs.lookup(a, b) {
        PairLookup::NotCovered => return None,
        PairLookup::Empty => Vec::new(),
        PairLookup::List(list) => collect(list, q.bound, &mut counters),
    };
    if q.directed {
        return Some((forward, counters));
    }
    let backward = match pairs.lookup(b, a) {
        PairLookup::NotCovered => return None,
        PairLookup::Empty => Vec::new(),
        PairLookup::List(list) => collect(list, q.bound, &mut counters),
    };
    Some((merge(&forward, &backward), counters))
}

/// Walk one pair list collecting nodes whose min forward gap is within
/// `bound`, skipping whole blocks whose `min_gap` header already exceeds
/// it (the block-max proximity bound).
fn collect(list: &PairList, bound: u32, counters: &mut AccessCounters) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut cur = list.cursor();
    while !cur.exhausted() {
        let node = if cur.block_min_gap() > bound {
            cur.skip_block()
        } else {
            cur.next_entry()
        };
        match node {
            Some(n) if cur.gap() <= bound => out.push(n),
            Some(_) => {}
            None => break,
        }
    }
    *counters += cur.counters();
    out
}

/// Upper bound on the [`closeness`] score any document in this
/// corpus/index can reach for `q` — read from pair-list `min_gap`
/// metadata alone, without decoding a posting. `1.0` when the pair index
/// cannot cover the query (the fallback path is unbounded), `0.0` when
/// the answer is provably empty. Drives segment ordering and whole-segment
/// skipping in the snapshot-global proximity top-k.
pub fn near_bound(q: &PairQuery, corpus: &Corpus, index: &InvertedIndex) -> f64 {
    let pairs = index.pairs();
    if pairs.config().window == 0 || q.bound > pairs.config().window {
        return 1.0;
    }
    let (Some(a), Some(b)) = (corpus.token_id(&q.first), corpus.token_id(&q.second)) else {
        return 0.0;
    };
    let list_bound = |la: ftsl_model::TokenId, lb: ftsl_model::TokenId| match pairs.lookup(la, lb) {
        PairLookup::NotCovered => 1.0,
        PairLookup::Empty => 0.0,
        PairLookup::List(list) => closeness(list.min_gap(), q.bound),
    };
    let fwd = list_bound(a, b);
    if q.directed || a == b {
        fwd
    } else {
        fwd.max(list_bound(b, a))
    }
}

/// Score `q`'s matches in one corpus/index into a shared top-k heap:
/// each qualifying document enters as `(keep(node), closeness(min_gap))`.
/// `keep` filters tombstones and remaps to global ids (`None` = drop).
///
/// Covered pairs stream from the pair lists with **block-max pruning**:
/// a block whose `min_gap` header cannot beat the heap threshold (or the
/// query bound) is skipped without decoding an entry. Uncovered pairs
/// fall back to the [`min_forward_gaps`] position-intersection oracle.
/// For undirected queries the two directed walks merge per node on the
/// *minimum* gap, so a document scores by its closest qualifying pair in
/// either direction.
pub fn near_topk_into<F>(
    q: &PairQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    topk: &mut TopK,
    keep: F,
) -> AccessCounters
where
    F: Fn(NodeId) -> Option<NodeId>,
{
    let mut counters = AccessCounters::new();
    if q.bound == 0 {
        return counters;
    }
    let (Some(a), Some(b)) = (corpus.token_id(&q.first), corpus.token_id(&q.second)) else {
        return counters;
    };
    let pairs = index.pairs();
    // For one token, the backward direction is the same (a, a) key: walk
    // it once.
    let both_ways = !q.directed && a != b;
    let covered = pairs.config().window != 0
        && q.bound <= pairs.config().window
        && pairs.covers(a)
        && pairs.covers(b);
    if covered {
        let list_of = |x, y| match pairs.lookup(x, y) {
            PairLookup::List(list) => Some(list),
            _ => None,
        };
        let fwd = list_of(a, b);
        let back = if both_ways { list_of(b, a) } else { None };
        let mut ca = fwd.map(PairList::cursor);
        let mut cb = back.map(PairList::cursor);
        let mut na = ca.as_mut().and_then(|c| next_within(c, q.bound, topk));
        let mut nb = cb.as_mut().and_then(|c| next_within(c, q.bound, topk));
        while na.is_some() || nb.is_some() {
            let (node, gap) = match (na, nb) {
                (Some((xn, xg)), Some((yn, yg))) => {
                    if xn < yn {
                        na = ca.as_mut().and_then(|c| next_within(c, q.bound, topk));
                        (xn, xg)
                    } else if yn < xn {
                        nb = cb.as_mut().and_then(|c| next_within(c, q.bound, topk));
                        (yn, yg)
                    } else {
                        na = ca.as_mut().and_then(|c| next_within(c, q.bound, topk));
                        nb = cb.as_mut().and_then(|c| next_within(c, q.bound, topk));
                        (xn, xg.min(yg))
                    }
                }
                (Some((xn, xg)), None) => {
                    na = ca.as_mut().and_then(|c| next_within(c, q.bound, topk));
                    (xn, xg)
                }
                (None, Some((yn, yg))) => {
                    nb = cb.as_mut().and_then(|c| next_within(c, q.bound, topk));
                    (yn, yg)
                }
                (None, None) => unreachable!("loop condition"),
            };
            if let Some(global) = keep(node) {
                topk.insert(global, closeness(gap, q.bound));
            }
        }
        if let Some(c) = ca {
            counters += c.counters();
        }
        if let Some(c) = cb {
            counters += c.counters();
        }
        return counters;
    }
    // Fallback: position intersection, exactly the work the pair index
    // would have saved (counted through the same counters).
    let (la, lb) = (index.list(a), index.list(b));
    let mut entries = min_forward_gaps(la, lb, q.bound, &mut counters);
    if both_ways {
        let backward = min_forward_gaps(lb, la, q.bound, &mut counters);
        entries = merge_min_gap(&entries, &backward);
    }
    for (node, gap) in entries {
        if let Some(global) = keep(NodeId(node)) {
            topk.insert(global, closeness(gap, q.bound));
        }
    }
    counters
}

/// Advance to the next entry with gap within the query bound, skipping
/// whole blocks whose `min_gap` header proves every entry either exceeds
/// the bound or cannot beat the heap threshold. Skipping on the evolving
/// threshold is sound even under the undirected min-gap merge: a dropped
/// entry's closeness is at most the skipped block's bound, so the merged
/// score the other direction yields is never *below* what this entry
/// could have contributed to the kept set.
fn next_within(cur: &mut PairCursor<'_>, bound: u32, topk: &TopK) -> Option<(NodeId, u32)> {
    loop {
        let block_best = closeness(cur.block_min_gap(), bound);
        let node = if block_best <= 0.0 || !topk.could_enter(block_best) {
            cur.skip_block()
        } else {
            cur.next_entry()
        };
        match node {
            Some(n) if cur.gap() <= bound => return Some((n, cur.gap())),
            Some(_) => {}
            None => return None,
        }
    }
}

/// Merge two ascending `(node, gap)` streams, keeping the minimum gap
/// where a node appears in both.
fn merge_min_gap(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1.min(b[j].1)));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Ascending union of two sorted, duplicate-free node lists.
fn merge(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use ftsl_lang::{lower, parse, Mode};

    fn recognized(query: &str) -> Option<PairQuery> {
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(query, Mode::Comp).unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let plan = build_plan(&expr, &reg, false).ok()?;
        recognize(&plan.root, &reg)
    }

    #[test]
    fn ordered_phrase_is_recognized_as_directed() {
        let q = recognized(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' \
             AND ordered(p1,p2) AND distance(p1,p2,0))",
        )
        .expect("phrase shape");
        assert_eq!(
            q,
            PairQuery {
                first: "a".into(),
                second: "b".into(),
                directed: true,
                bound: 1,
            }
        );
    }

    #[test]
    fn symmetric_distance_is_recognized_as_undirected() {
        let q = recognized("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1,p2,4))")
            .expect("NEAR shape");
        assert!(!q.directed);
        assert_eq!(q.bound, 5);
    }

    #[test]
    fn window_and_distance_bounds_combine_to_the_tighter_one() {
        let q = recognized(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' \
             AND window(p1,p2,15) AND ordered(p1,p2) AND distance(p1,p2,2))",
        )
        .expect("combined shape");
        assert!(q.directed);
        assert_eq!(q.bound, 3); // min(15, 2 + 1)
    }

    #[test]
    fn out_of_fragment_shapes_are_refused() {
        // `ordered` alone: no gap bound.
        assert!(
            recognized("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1,p2))").is_none()
        );
        // Same token, symmetric: a shared binding satisfies it trivially.
        assert!(
            recognized("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'a' AND distance(p1,p2,3))")
                .is_none()
        );
        // Same token with `ordered` IS a real self-pair query.
        assert!(recognized(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'a' \
             AND ordered(p1,p2) AND distance(p1,p2,3))"
        )
        .is_some());
        // Predicates the pair index cannot fold.
        assert!(recognized(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' \
             AND samepara(p1,p2) AND distance(p1,p2,3))"
        )
        .is_none());
        // Three scans.
        assert!(recognized(
            "SOME p1 SOME p2 SOME p3 (p1 HAS 'a' AND p2 HAS 'b' AND p3 HAS 'c' \
             AND distance(p1,p2,3) AND distance(p2,p3,3))"
        )
        .is_none());
        // Union above the core.
        assert!(recognized(
            "SOME p1 SOME p2 ((p1 HAS 'a' OR p1 HAS 'b') AND p2 HAS 'c' AND distance(p1,p2,3))"
        )
        .is_none());
        // Contradictory directions.
        assert!(recognized(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' \
             AND ordered(p1,p2) AND ordered(p2,p1) AND distance(p1,p2,3))"
        )
        .is_none());
    }

    #[test]
    fn merge_unions_sorted_lists() {
        let a: Vec<NodeId> = [1u32, 3, 5].iter().map(|&n| NodeId(n)).collect();
        let b: Vec<NodeId> = [2u32, 3, 9].iter().map(|&n| NodeId(n)).collect();
        let got: Vec<u32> = merge(&a, &b).iter().map(|n| n.0).collect();
        assert_eq!(got, vec![1, 2, 3, 5, 9]);
    }
}
