//! Engine and planner errors.

use std::fmt;

/// Reasons a query cannot be compiled into a streaming (PPRED/NPRED) plan.
/// The dispatcher treats these as "fall back to COMP".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// `NOT` applied to a subquery with free variables (only closed
    /// subqueries may be negated in PPRED/NPRED: `Query AND NOT Query*`).
    OpenNegation,
    /// Bare negation outside an `AND`.
    BareNegation,
    /// Universal quantification (`EVERY`) is not streamable.
    Universal,
    /// `OR` branches expose different free variables.
    OrVarMismatch,
    /// A conjunction contains only negations (no positive relational part).
    NoRelationalConjunct,
    /// A negative predicate reached the PPRED engine.
    NegativePredicate(String),
    /// A predicate that is neither positive nor negative.
    GeneralPredicate(String),
    /// Unknown predicate id.
    UnknownPredicate(u32),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::OpenNegation => write!(f, "NOT over a subquery with free variables"),
            PlanError::BareNegation => write!(f, "negation outside AND NOT"),
            PlanError::Universal => write!(f, "EVERY is not streamable"),
            PlanError::OrVarMismatch => write!(f, "OR branches bind different variables"),
            PlanError::NoRelationalConjunct => {
                write!(f, "conjunction has no positive relational part")
            }
            PlanError::NegativePredicate(name) => {
                write!(f, "negative predicate {name} requires the NPRED engine")
            }
            PlanError::GeneralPredicate(name) => {
                write!(f, "predicate {name} requires the COMP engine")
            }
            PlanError::UnknownPredicate(id) => write!(f, "unknown predicate id {id}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Top-level execution errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Language-layer failure (parse/lower).
    Lang(String),
    /// Streaming planner failure (when an engine was forced explicitly).
    Plan(PlanError),
    /// Algebra-layer failure.
    Algebra(String),
    /// The query does not fit the explicitly requested engine's language.
    WrongEngine {
        /// Requested engine.
        engine: &'static str,
        /// Why it does not fit.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Lang(msg) => write!(f, "language error: {msg}"),
            ExecError::Plan(e) => write!(f, "plan error: {e}"),
            ExecError::Algebra(msg) => write!(f, "algebra error: {msg}"),
            ExecError::WrongEngine { engine, reason } => {
                write!(f, "query not supported by {engine} engine: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}
