//! The streaming cursor API (Section 5.5.3) and the leaf scan cursors.
//!
//! Every operator exposes the paper's four methods: `advanceNode`,
//! `getNode`, `advancePosition(i, pos)`, `getPosition(i)`. Our
//! `advance_position` takes an *inclusive* lower bound (the `f_i` value —
//! "the lower bound of the next possible solution"), which is equivalent to
//! the paper's exclusive formulation with `f_i − 1` and avoids off-by-one
//! arithmetic at every call site.
//!
//! Evaluation is fully pipelined: no operator materializes its output, and
//! each inverted-list position is consumed at most once per (thread, scan).

use ftsl_index::{AccessCounters, ListCursor, PostingList};
use ftsl_model::{NodeId, Position};

/// A pipelined full-text cursor.
pub trait FtCursor {
    /// Number of position columns.
    fn arity(&self) -> usize;

    /// Advance to the next context node with at least one result tuple and
    /// position all columns at that node's componentwise-minimal candidate.
    fn advance_node(&mut self) -> Option<NodeId>;

    /// The current node, if positioned.
    fn node(&self) -> Option<NodeId>;

    /// The current position of column `col`.
    fn position(&self, col: usize) -> Position;

    /// Advance column `col` to the next candidate tuple (within the current
    /// node) whose `col` offset is `>= min_offset`, leaving other columns at
    /// offsets `>=` their current values. Returns false when the node is
    /// exhausted for this constraint.
    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool;

    /// Advance to the first result node with id `>= target` (the seek
    /// extension of the cursor contract). Stays put when the current node
    /// already satisfies the bound. The default implementation scans via
    /// [`FtCursor::advance_node`]; leaf scans override it with galloping
    /// seeks over the inverted list, and joins use it to leapfrog both
    /// sides past non-matching node ranges without decoding them.
    fn seek_node(&mut self, target: NodeId) -> Option<NodeId> {
        if let Some(n) = self.node() {
            if n >= target {
                return Some(n);
            }
        }
        loop {
            let n = self.advance_node()?;
            if n >= target {
                return Some(n);
            }
        }
    }

    /// Aggregate access counters for this subtree.
    fn counters(&self) -> AccessCounters;
}

/// Leaf scan over one inverted list (a token's list or `IL_ANY`).
pub struct ScanCursor<'a> {
    cursor: ListCursor<'a>,
}

impl<'a> ScanCursor<'a> {
    /// Open a scan over `list`.
    pub fn new(list: &'a PostingList) -> Self {
        ScanCursor {
            cursor: ListCursor::new(list),
        }
    }
}

impl FtCursor for ScanCursor<'_> {
    fn arity(&self) -> usize {
        1
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        self.cursor.next_entry()
    }

    fn node(&self) -> Option<NodeId> {
        if self.cursor.exhausted() {
            None
        } else {
            self.cursor.node()
        }
    }

    fn position(&self, col: usize) -> Position {
        debug_assert_eq!(col, 0);
        self.cursor.position().expect("scan cursor positioned")
    }

    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool {
        debug_assert_eq!(col, 0);
        self.cursor.advance_position(min_offset).is_some()
    }

    fn seek_node(&mut self, target: NodeId) -> Option<NodeId> {
        self.cursor.seek(target)
    }

    fn counters(&self) -> AccessCounters {
        self.cursor.counters()
    }
}

/// Leaf scan over the block-compressed form of an inverted list: the same
/// contract as [`ScanCursor`], driven by a skip-aware
/// [`ftsl_index::BlockCursor`] that batch-decodes bit-packed blocks on
/// first touch and seeks via the block skip headers.
///
/// The inner cursor sits behind a `RefCell` because the trait's `position`
/// accessor is `&self` while decompression materializes positions on first
/// touch. Repeated reads of the current position — the common case in
/// predicate evaluation, which inspects the same tuple several times — are
/// served from a `Cell` cache, so the dynamic borrow is paid once per
/// (entry, advance), not per read. Cursor trees are thread-confined (each
/// NPRED thread builds its own), so the dynamic borrow never contends.
pub struct BlockScanCursor<'a> {
    cursor: std::cell::RefCell<ftsl_index::BlockCursor<'a>>,
    /// The current node, updated by every advancing call — `node()` reads
    /// it without touching the `RefCell`.
    cur_node: Option<NodeId>,
    /// The current position, filled on first read after an advance.
    cur_pos: std::cell::Cell<Option<Position>>,
}

impl<'a> BlockScanCursor<'a> {
    /// Open a scan over a compressed `list`.
    pub fn new(list: &'a ftsl_index::BlockList) -> Self {
        BlockScanCursor {
            cursor: std::cell::RefCell::new(list.cursor()),
            cur_node: None,
            cur_pos: std::cell::Cell::new(None),
        }
    }
}

impl FtCursor for BlockScanCursor<'_> {
    fn arity(&self) -> usize {
        1
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        self.cur_pos.set(None);
        self.cur_node = self.cursor.get_mut().next_entry();
        self.cur_node
    }

    fn node(&self) -> Option<NodeId> {
        self.cur_node
    }

    fn position(&self, col: usize) -> Position {
        debug_assert_eq!(col, 0);
        if let Some(p) = self.cur_pos.get() {
            return p;
        }
        let p = self
            .cursor
            .borrow_mut()
            .position()
            .expect("block scan cursor positioned");
        self.cur_pos.set(Some(p));
        p
    }

    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool {
        debug_assert_eq!(col, 0);
        let hit = self.cursor.get_mut().advance_position(min_offset);
        self.cur_pos.set(hit);
        hit.is_some()
    }

    fn seek_node(&mut self, target: NodeId) -> Option<NodeId> {
        self.cur_pos.set(None);
        self.cur_node = self.cursor.get_mut().seek(target);
        self.cur_node
    }

    fn counters(&self) -> AccessCounters {
        self.cursor.borrow().counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn scan_cursor_walks_entries_and_positions() {
        let corpus = Corpus::from_texts(&["a b a", "c", "a"]);
        let index = IndexBuilder::new().build(&corpus);
        let a = corpus.token_id("a").unwrap();
        let mut scan = ScanCursor::new(index.list(a));

        assert_eq!(scan.advance_node(), Some(NodeId(0)));
        assert_eq!(scan.position(0).offset, 0);
        assert!(scan.advance_position(0, 1));
        assert_eq!(scan.position(0).offset, 2);
        assert!(!scan.advance_position(0, 3));

        assert_eq!(scan.advance_node(), Some(NodeId(2)));
        assert_eq!(scan.position(0).offset, 0);
        assert_eq!(scan.advance_node(), None);
        assert_eq!(scan.node(), None);
    }
}
