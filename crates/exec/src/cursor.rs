//! The streaming cursor API (Section 5.5.3) and the leaf scan cursors.
//!
//! Every operator exposes the paper's four methods: `advanceNode`,
//! `getNode`, `advancePosition(i, pos)`, `getPosition(i)`. Our
//! `advance_position` takes an *inclusive* lower bound (the `f_i` value —
//! "the lower bound of the next possible solution"), which is equivalent to
//! the paper's exclusive formulation with `f_i − 1` and avoids off-by-one
//! arithmetic at every call site.
//!
//! Evaluation is fully pipelined: no operator materializes its output, and
//! each inverted-list position is consumed at most once per (thread, scan).

use ftsl_index::{AccessCounters, ListCursor, PostingList};
use ftsl_model::{NodeId, Position};

/// A pipelined full-text cursor.
pub trait FtCursor {
    /// Number of position columns.
    fn arity(&self) -> usize;

    /// Advance to the next context node with at least one result tuple and
    /// position all columns at that node's componentwise-minimal candidate.
    fn advance_node(&mut self) -> Option<NodeId>;

    /// The current node, if positioned.
    fn node(&self) -> Option<NodeId>;

    /// The current position of column `col`.
    fn position(&self, col: usize) -> Position;

    /// Advance column `col` to the next candidate tuple (within the current
    /// node) whose `col` offset is `>= min_offset`, leaving other columns at
    /// offsets `>=` their current values. Returns false when the node is
    /// exhausted for this constraint.
    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool;

    /// Aggregate access counters for this subtree.
    fn counters(&self) -> AccessCounters;
}

/// Leaf scan over one inverted list (a token's list or `IL_ANY`).
pub struct ScanCursor<'a> {
    cursor: ListCursor<'a>,
}

impl<'a> ScanCursor<'a> {
    /// Open a scan over `list`.
    pub fn new(list: &'a PostingList) -> Self {
        ScanCursor { cursor: ListCursor::new(list) }
    }
}

impl FtCursor for ScanCursor<'_> {
    fn arity(&self) -> usize {
        1
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        self.cursor.next_entry()
    }

    fn node(&self) -> Option<NodeId> {
        if self.cursor.exhausted() {
            None
        } else {
            self.cursor.node()
        }
    }

    fn position(&self, col: usize) -> Position {
        debug_assert_eq!(col, 0);
        self.cursor.position().expect("scan cursor positioned")
    }

    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool {
        debug_assert_eq!(col, 0);
        self.cursor.advance_position(min_offset).is_some()
    }

    fn counters(&self) -> AccessCounters {
        self.cursor.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn scan_cursor_walks_entries_and_positions() {
        let corpus = Corpus::from_texts(&["a b a", "c", "a"]);
        let index = IndexBuilder::new().build(&corpus);
        let a = corpus.token_id("a").unwrap();
        let mut scan = ScanCursor::new(index.list(a));

        assert_eq!(scan.advance_node(), Some(NodeId(0)));
        assert_eq!(scan.position(0).offset, 0);
        assert!(scan.advance_position(0, 1));
        assert_eq!(scan.position(0).offset, 2);
        assert!(!scan.advance_position(0, 3));

        assert_eq!(scan.advance_node(), Some(NodeId(2)));
        assert_eq!(scan.position(0).offset, 0);
        assert_eq!(scan.advance_node(), None);
        assert_eq!(scan.node(), None);
    }
}
