//! The PPRED engine (Section 5.5): single-scan streaming evaluation.

use crate::build::{build_cursor, CursorCtx, IndexLayout};
use crate::error::PlanError;
use crate::pairscan;
use crate::plan::{build_plan, order_joins_by_selectivity};
use ftsl_calculus::ast::QueryExpr;
use ftsl_index::{AccessCounters, InvertedIndex};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::{AdvanceMode, PredicateRegistry};
use std::collections::HashMap;

/// Evaluate a (closed) calculus expression with the PPRED streaming engine
/// on the decoded index layout.
///
/// Fails with a [`PlanError`] if the query is not in the PPRED fragment
/// (negative/general predicates, open negation, `EVERY`, mismatched `OR`).
pub fn run_ppred(
    expr: &QueryExpr,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    mode: AdvanceMode,
) -> Result<(Vec<NodeId>, AccessCounters), PlanError> {
    run_ppred_with(expr, corpus, index, registry, mode, IndexLayout::Decoded)
}

/// [`run_ppred`] with an explicit physical layout for the leaf scans.
pub fn run_ppred_with(
    expr: &QueryExpr,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    mode: AdvanceMode,
    layout: IndexLayout,
) -> Result<(Vec<NodeId>, AccessCounters), PlanError> {
    run_ppred_pairs(expr, corpus, index, registry, mode, layout, true)
}

/// [`run_ppred_with`] with explicit control over the pair-index rewrite:
/// when `use_pairs` is set and the plan is a two-scan proximity core the
/// index's word-pair lists can answer ([`pairscan::recognize`]), the
/// query resolves from one pair-list walk; any coverage miss falls back
/// to the ordinary single-scan streaming evaluation. Passing `false`
/// forces the streaming path — the differential oracle for pair results.
pub fn run_ppred_pairs(
    expr: &QueryExpr,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    mode: AdvanceMode,
    layout: IndexLayout,
    use_pairs: bool,
) -> Result<(Vec<NodeId>, AccessCounters), PlanError> {
    run_ppred_attr(expr, corpus, index, registry, mode, layout, use_pairs)
        .map(|(nodes, counters, _)| (nodes, counters))
}

/// Which physical path answered a PPRED query — the observability handle
/// for the paper's central claim that proximity cost depends on the path
/// taken, not the query written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairAttribution {
    /// Answered from the word-pair index (one pair-list walk).
    PairList,
    /// Recognized as a proximity core, but the pair index could not cover
    /// it (df cutoff, window bound, or disabled pair section); fell back
    /// to position intersection.
    FallbackNotCovered,
    /// Plan shape outside the two-scan pair fragment; streamed through
    /// ordinary positional cursors.
    NotRecognized,
    /// Pair rewrite disabled by [`crate::engine::ExecOptions::use_pairs`].
    Disabled,
}

impl PairAttribution {
    /// Human-readable label used in EXPLAIN profiles.
    pub fn describe(self) -> &'static str {
        match self {
            PairAttribution::PairList => "pair path: word-pair list walk",
            PairAttribution::FallbackNotCovered => {
                "pair path: not covered — position-intersection fallback"
            }
            PairAttribution::NotRecognized => {
                "pair path: shape not recognized — streaming cursor evaluation"
            }
            PairAttribution::Disabled => "pair path: rewrite disabled by options",
        }
    }
}

/// [`run_ppred_pairs`], additionally reporting which path answered.
pub fn run_ppred_attr(
    expr: &QueryExpr,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    mode: AdvanceMode,
    layout: IndexLayout,
    use_pairs: bool,
) -> Result<(Vec<NodeId>, AccessCounters, PairAttribution), PlanError> {
    let plan = build_plan(expr, registry, false)?;
    let mut attribution = if use_pairs {
        PairAttribution::NotRecognized
    } else {
        PairAttribution::Disabled
    };
    if use_pairs {
        if let Some(q) = pairscan::recognize(&plan.root, registry) {
            if let Some((nodes, counters)) = pairscan::execute(&q, corpus, index) {
                return Ok((nodes, counters, PairAttribution::PairList));
            }
            attribution = PairAttribution::FallbackNotCovered;
        }
    }
    let root = order_joins_by_selectivity(plan.root, corpus, index);
    let ctx = CursorCtx {
        corpus,
        index,
        registry,
        mode,
        layout,
    };
    let mut cursor = build_cursor(&root, &ctx, &HashMap::new());
    let mut nodes = Vec::new();
    while let Some(n) = cursor.advance_node() {
        nodes.push(n);
    }
    Ok((nodes, cursor.counters(), attribution))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{lower, parse, Mode};

    fn run(query: &str, texts: &[&str]) -> Vec<u32> {
        let corpus = Corpus::from_texts(texts);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(query, Mode::Comp).unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let (nodes, _) = run_ppred(&expr, &corpus, &index, &reg, AdvanceMode::Aggressive).unwrap();
        nodes.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn conjunction_without_predicates() {
        let r = run(
            "'test' AND 'usability'",
            &["test usability", "test", "usability test"],
        );
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn ordered_and_distance_combination() {
        let r = run(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1,p2) AND distance(p1,p2,1))",
            &[
                "a b",       // ordered, adjacent
                "b a",       // wrong order
                "a x x x b", // too far
                "b x a b",   // a before final b, distance 1
            ],
        );
        assert_eq!(r, vec![0, 3]);
    }

    #[test]
    fn and_not_closed_subquery() {
        let r = run(
            "'test' AND NOT 'usability'",
            &["test usability", "test alone", "usability", "test"],
        );
        assert_eq!(r, vec![1, 3]);
    }

    #[test]
    fn union_of_token_alternatives() {
        let r = run(
            "SOME p1 SOME p2 ((p1 HAS 'a' OR p1 HAS 'b') AND p2 HAS 'c' AND distance(p1,p2,0))",
            &["a c", "b c", "a x c", "c"],
        );
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn samepara_requires_structured_positions() {
        let r = run(
            "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND samepara(p1,p2))",
            &["alpha beta", "alpha here.\n\nbeta there", "nothing"],
        );
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn shared_variable_conjunction() {
        // p1 must hold both tokens at the same position: impossible for
        // different tokens, trivial for the same token.
        let r = run("SOME p1 (p1 HAS 'a' AND p1 HAS 'b')", &["a b", "ab"]);
        assert!(r.is_empty());
        let r = run("SOME p1 (p1 HAS 'a' AND p1 HAS 'a')", &["a", "b"]);
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn negative_predicate_is_rejected() {
        let corpus = Corpus::from_texts(&["a b"]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_distance(p1,p2,3))",
            Mode::Comp,
        )
        .unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let err = run_ppred(&expr, &corpus, &index, &reg, AdvanceMode::Aggressive);
        assert!(matches!(err, Err(PlanError::NegativePredicate(_))));
    }

    #[test]
    fn conservative_and_aggressive_modes_agree() {
        let corpus =
            Corpus::from_texts(&["a x x b x x a b", "b x x x x x x x x x a", "a b a b a b"]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1,p2,2) AND ordered(p1,p2))",
            Mode::Comp,
        )
        .unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let (fast, _) = run_ppred(&expr, &corpus, &index, &reg, AdvanceMode::Aggressive).unwrap();
        let (slow, _) = run_ppred(&expr, &corpus, &index, &reg, AdvanceMode::Conservative).unwrap();
        assert_eq!(fast, slow);
    }
}
