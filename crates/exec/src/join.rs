//! The streaming join (Algorithm 1, seek-driven): leapfrog on node ids;
//! position columns concatenate; `advance_position` routes to the owning
//! side.
//!
//! Where the paper's Algorithm 1 advances the lagging side one entry at a
//! time, this join *seeks*: each side jumps directly to the other side's
//! node id through [`FtCursor::seek_node`], so a conjunction is driven by
//! whichever side is currently rarer — skipped entries are galloped or
//! block-skipped over at the leaves instead of being decoded.

use crate::cursor::FtCursor;
use ftsl_index::AccessCounters;
use ftsl_model::{NodeId, Position};

/// Pipelined per-node join of two cursors.
pub struct JoinCursor<'a> {
    left: Box<dyn FtCursor + 'a>,
    right: Box<dyn FtCursor + 'a>,
    left_arity: usize,
    node: Option<NodeId>,
}

impl<'a> JoinCursor<'a> {
    /// Join two cursors.
    pub fn new(left: Box<dyn FtCursor + 'a>, right: Box<dyn FtCursor + 'a>) -> Self {
        let left_arity = left.arity();
        JoinCursor {
            left,
            right,
            left_arity,
            node: None,
        }
    }

    /// Leapfrog both sides to a common node ≥ `target`, starting from the
    /// left side's landing point.
    fn align(&mut self, mut target: NodeId) -> Option<NodeId> {
        loop {
            let r = self.right.seek_node(target)?;
            if r == target {
                return Some(r);
            }
            let l = self.left.seek_node(r)?;
            if l == r {
                return Some(l);
            }
            target = l;
        }
    }
}

impl FtCursor for JoinCursor<'_> {
    fn arity(&self) -> usize {
        self.left_arity + self.right.arity()
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        let first = match self.left.advance_node() {
            Some(n) => n,
            None => {
                self.node = None;
                return None;
            }
        };
        self.node = self.align(first);
        self.node
    }

    fn node(&self) -> Option<NodeId> {
        self.node
    }

    fn position(&self, col: usize) -> Position {
        if col < self.left_arity {
            self.left.position(col)
        } else {
            self.right.position(col - self.left_arity)
        }
    }

    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool {
        if col < self.left_arity {
            self.left.advance_position(col, min_offset)
        } else {
            self.right
                .advance_position(col - self.left_arity, min_offset)
        }
    }

    fn seek_node(&mut self, target: NodeId) -> Option<NodeId> {
        if let Some(n) = self.node {
            if n >= target {
                return Some(n);
            }
        }
        let first = match self.left.seek_node(target) {
            Some(n) => n,
            None => {
                self.node = None;
                return None;
            }
        };
        self.node = self.align(first);
        self.node
    }

    fn counters(&self) -> AccessCounters {
        self.left.counters() + self.right.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::ScanCursor;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn join_merges_on_node_ids() {
        let corpus = Corpus::from_texts(&[
            "test usability", // 0: both
            "test only",      // 1: test
            "usability only", // 2: usability
            "test usability", // 3: both
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let test = corpus.token_id("test").unwrap();
        let usability = corpus.token_id("usability").unwrap();
        let mut join = JoinCursor::new(
            Box::new(ScanCursor::new(index.list(test))),
            Box::new(ScanCursor::new(index.list(usability))),
        );
        assert_eq!(join.advance_node(), Some(NodeId(0)));
        assert_eq!(join.arity(), 2);
        assert_eq!(join.position(0).offset, 0);
        assert_eq!(join.position(1).offset, 1);
        assert_eq!(join.advance_node(), Some(NodeId(3)));
        assert_eq!(join.advance_node(), None);
    }

    #[test]
    fn advance_position_routes_by_column() {
        let corpus = Corpus::from_texts(&["a b a b a"]);
        let index = IndexBuilder::new().build(&corpus);
        let a = corpus.token_id("a").unwrap();
        let b = corpus.token_id("b").unwrap();
        let mut join = JoinCursor::new(
            Box::new(ScanCursor::new(index.list(a))),
            Box::new(ScanCursor::new(index.list(b))),
        );
        join.advance_node().unwrap();
        assert_eq!((join.position(0).offset, join.position(1).offset), (0, 1));
        assert!(join.advance_position(0, 1));
        assert_eq!(join.position(0).offset, 2);
        assert_eq!(join.position(1).offset, 1); // untouched
        assert!(join.advance_position(1, 2));
        assert_eq!(join.position(1).offset, 3);
        assert!(!join.advance_position(1, 4));
    }
}
