//! Node-level union (Algorithm 4) and difference (Algorithm 5) cursors.
//!
//! After plan rewriting these operators only participate in node-level
//! traffic: `advance_position` on a union is unreachable (the planner pulls
//! unions above every predicate), and difference "implements only the
//! advanceNode function (it works only at the level of nodes)" exactly as
//! the paper specifies.

use crate::cursor::FtCursor;
use ftsl_index::AccessCounters;
use ftsl_model::{NodeId, Position};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    NotStarted,
    At(NodeId),
    Done,
}

/// Node-level merge of two cursors with identical schemas.
pub struct UnionCursor<'a> {
    left: Box<dyn FtCursor + 'a>,
    right: Box<dyn FtCursor + 'a>,
    l_state: Side,
    r_state: Side,
    current: Option<NodeId>,
}

impl<'a> UnionCursor<'a> {
    /// Merge two cursors (same arity, same column variables).
    pub fn new(left: Box<dyn FtCursor + 'a>, right: Box<dyn FtCursor + 'a>) -> Self {
        debug_assert_eq!(left.arity(), right.arity());
        UnionCursor {
            left,
            right,
            l_state: Side::NotStarted,
            r_state: Side::NotStarted,
            current: None,
        }
    }
}

impl FtCursor for UnionCursor<'_> {
    fn arity(&self) -> usize {
        self.left.arity()
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        let last = self.current;
        let advance_left = match (self.l_state, last) {
            (Side::NotStarted, _) => true,
            (Side::At(n), Some(l)) => n == l,
            _ => false,
        };
        let advance_right = match (self.r_state, last) {
            (Side::NotStarted, _) => true,
            (Side::At(n), Some(l)) => n == l,
            _ => false,
        };
        if advance_left {
            self.l_state = match self.left.advance_node() {
                Some(n) => Side::At(n),
                None => Side::Done,
            };
        }
        if advance_right {
            self.r_state = match self.right.advance_node() {
                Some(n) => Side::At(n),
                None => Side::Done,
            };
        }
        self.current = match (self.l_state, self.r_state) {
            (Side::At(a), Side::At(b)) => Some(a.min(b)),
            (Side::At(a), _) => Some(a),
            (_, Side::At(b)) => Some(b),
            _ => None,
        };
        self.current
    }

    fn node(&self) -> Option<NodeId> {
        self.current
    }

    fn position(&self, col: usize) -> Position {
        // Prefer whichever side sits on the current node (left first).
        match (self.l_state, self.current) {
            (Side::At(n), Some(c)) if n == c => self.left.position(col),
            _ => self.right.position(col),
        }
    }

    fn advance_position(&mut self, _col: usize, _min_offset: u32) -> bool {
        unreachable!("plan rewriting keeps unions above all position-level operators")
    }

    fn counters(&self) -> AccessCounters {
        self.left.counters() + self.right.counters()
    }
}

/// Node-level anti-join: nodes of `left` absent from `filter`.
pub struct DiffCursor<'a> {
    left: Box<dyn FtCursor + 'a>,
    filter: Box<dyn FtCursor + 'a>,
    filter_state: Side,
}

impl<'a> DiffCursor<'a> {
    /// Keep `left` nodes that `filter` does not produce.
    pub fn new(left: Box<dyn FtCursor + 'a>, filter: Box<dyn FtCursor + 'a>) -> Self {
        DiffCursor {
            left,
            filter,
            filter_state: Side::NotStarted,
        }
    }

    /// True iff the filter does not produce `n`. Catches the filter up via
    /// seeks, so long filter lists are block-skipped, not decoded.
    fn passes_filter(&mut self, n: NodeId) -> bool {
        loop {
            match self.filter_state {
                Side::Done => return true,
                Side::At(f) if f >= n => return f != n,
                _ => {
                    self.filter_state = match self.filter.seek_node(n) {
                        Some(f) => Side::At(f),
                        None => Side::Done,
                    };
                }
            }
        }
    }
}

impl FtCursor for DiffCursor<'_> {
    fn arity(&self) -> usize {
        self.left.arity()
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        // Algorithm 5: emit the next left node not matched by the filter.
        loop {
            let n = self.left.advance_node()?;
            if self.passes_filter(n) {
                return Some(n);
            }
        }
    }

    fn node(&self) -> Option<NodeId> {
        self.left.node()
    }

    fn position(&self, col: usize) -> Position {
        self.left.position(col)
    }

    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool {
        self.left.advance_position(col, min_offset)
    }

    fn seek_node(&mut self, target: NodeId) -> Option<NodeId> {
        if let Some(n) = self.left.node() {
            if n >= target {
                return Some(n);
            }
        }
        let mut bound = target;
        loop {
            let n = self.left.seek_node(bound)?;
            if self.passes_filter(n) {
                return Some(n);
            }
            bound = NodeId(n.0 + 1);
        }
    }

    fn counters(&self) -> AccessCounters {
        self.left.counters() + self.filter.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::ScanCursor;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    fn scan<'a>(
        corpus: &Corpus,
        index: &'a ftsl_index::InvertedIndex,
        tok: &str,
    ) -> Box<dyn FtCursor + 'a> {
        let id = corpus.token_id(tok).unwrap();
        Box::new(ScanCursor::new(index.list(id)))
    }

    #[test]
    fn union_merges_and_dedups_nodes() {
        let corpus = Corpus::from_texts(&["a", "b", "a b", "c", "b"]);
        let index = IndexBuilder::new().build(&corpus);
        let mut u = UnionCursor::new(scan(&corpus, &index, "a"), scan(&corpus, &index, "b"));
        let mut nodes = Vec::new();
        while let Some(n) = u.advance_node() {
            nodes.push(n.0);
        }
        assert_eq!(nodes, vec![0, 1, 2, 4]);
    }

    #[test]
    fn union_with_empty_side() {
        let corpus = Corpus::from_texts(&["a", "a"]);
        let index = IndexBuilder::new().build(&corpus);
        let b_scan: Box<dyn FtCursor> =
            Box::new(ScanCursor::new(index.list(ftsl_model::TokenId(9999))));
        let mut u = UnionCursor::new(scan(&corpus, &index, "a"), b_scan);
        let mut nodes = Vec::new();
        while let Some(n) = u.advance_node() {
            nodes.push(n.0);
        }
        assert_eq!(nodes, vec![0, 1]);
    }

    #[test]
    fn difference_filters_nodes() {
        let corpus = Corpus::from_texts(&["a", "a b", "a", "b", "a b"]);
        let index = IndexBuilder::new().build(&corpus);
        let mut d = DiffCursor::new(scan(&corpus, &index, "a"), scan(&corpus, &index, "b"));
        let mut nodes = Vec::new();
        while let Some(n) = d.advance_node() {
            nodes.push(n.0);
        }
        assert_eq!(nodes, vec![0, 2]);
    }

    #[test]
    fn difference_with_empty_filter_passes_everything() {
        let corpus = Corpus::from_texts(&["a", "a"]);
        let index = IndexBuilder::new().build(&corpus);
        let empty: Box<dyn FtCursor> =
            Box::new(ScanCursor::new(index.list(ftsl_model::TokenId(9999))));
        let mut d = DiffCursor::new(scan(&corpus, &index, "a"), empty);
        assert_eq!(d.advance_node().map(|n| n.0), Some(0));
        assert_eq!(d.advance_node().map(|n| n.0), Some(1));
        assert_eq!(d.advance_node(), None);
    }
}
