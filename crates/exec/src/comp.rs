//! The COMP engine (Section 5.4): translate to the algebra and evaluate
//! materialized.

use crate::build::IndexLayout;
use crate::error::ExecError;
use ftsl_algebra::from_calculus::query_to_algebra;
use ftsl_algebra::AlgebraEvaluator;
use ftsl_calculus::CalcQuery;
use ftsl_index::{AccessCounters, InvertedIndex};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::PredicateRegistry;

/// Evaluate any calculus query by FTC→FTA translation (Lemma 2) and
/// materialized algebra evaluation on the decoded layout. Complete but
/// `O(cnodes × pos_per_cnode^toks_Q × (preds_Q + ops_Q + 1))`.
pub fn run_comp(
    query: &CalcQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
) -> Result<(Vec<NodeId>, AccessCounters), ExecError> {
    run_comp_with(query, corpus, index, registry, IndexLayout::Decoded)
}

/// [`run_comp`] with an explicit physical layout for the leaf scans:
/// `Blocks` materializes leaf relations by streaming the compressed lists
/// at the cursor, so COMP works on a blocks-only-resident index too.
pub fn run_comp_with(
    query: &CalcQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    layout: IndexLayout,
) -> Result<(Vec<NodeId>, AccessCounters), ExecError> {
    let alg = query_to_algebra(query, registry).map_err(|e| ExecError::Algebra(e.to_string()))?;
    let mut ev = AlgebraEvaluator::with_layout(corpus, index, registry, layout);
    let rel = ev
        .eval(&alg)
        .map_err(|e| ExecError::Algebra(e.to_string()))?;
    Ok((rel.distinct_nodes(), ev.counters()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{lower, parse, Mode};

    fn run(query: &str, texts: &[&str]) -> Vec<u32> {
        let corpus = Corpus::from_texts(texts);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(query, Mode::Comp).unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let (nodes, _) = run_comp(&CalcQuery::new(expr), &corpus, &index, &reg).unwrap();
        nodes.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn evaluates_the_full_language() {
        // EVERY + general predicate, beyond PPRED/NPRED.
        let r = run("EVERY p1 (p1 HAS 'a')", &["a a", "a b", ""]);
        assert_eq!(r, vec![0, 2]);
        let r = run(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND exact_gap(p1,p2,2))",
            &["a x x b", "a x b", "b x x a"],
        );
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn counters_reflect_materialization() {
        let corpus = Corpus::from_texts(&["a a a a b b b b"]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1,p2,100))",
            Mode::Comp,
        )
        .unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let (_, counters) = run_comp(&CalcQuery::new(expr), &corpus, &index, &reg).unwrap();
        // The per-node cartesian product (4 × 4 = 16 tuples) is materialized.
        assert!(counters.tuples >= 16, "counters: {counters:?}");
    }
}
