//! Build cursor trees from rewritten plans.

use crate::cursor::{BlockScanCursor, FtCursor, ScanCursor};
use crate::join::JoinCursor;
use crate::plan::PlanNode;
use crate::project::ProjectCursor;
use crate::select::SelectCursor;
use crate::setops::{DiffCursor, UnionCursor};
use ftsl_calculus::ast::VarId;
use ftsl_index::InvertedIndex;
use ftsl_model::Corpus;
use ftsl_predicates::{AdvanceMode, PredKind, PredicateRegistry};
use std::collections::HashMap;

/// Which physical list representation leaf scans read.
///
/// The enum itself now lives in `ftsl-index` (the choice is purely
/// physical); this re-export keeps the established `ftsl_exec::build`
/// import path working.
pub use ftsl_index::IndexLayout;

/// Everything a cursor tree needs to run.
pub struct CursorCtx<'a> {
    /// The corpus (token resolution).
    pub corpus: &'a Corpus,
    /// The inverted index.
    pub index: &'a InvertedIndex,
    /// Predicate registry.
    pub registry: &'a PredicateRegistry,
    /// Skip aggressiveness for positive predicates.
    pub mode: AdvanceMode,
    /// Physical layout leaf scans read.
    pub layout: IndexLayout,
}

/// Build a cursor tree. `ranks` is the evaluation thread's variable
/// ordering (empty for PPRED / threads without negative predicates).
pub fn build_cursor<'a>(
    node: &PlanNode,
    ctx: &CursorCtx<'a>,
    ranks: &HashMap<VarId, usize>,
) -> Box<dyn FtCursor + 'a> {
    build_rec(node, ctx, ranks).0
}

fn build_rec<'a>(
    node: &PlanNode,
    ctx: &CursorCtx<'a>,
    ranks: &HashMap<VarId, usize>,
) -> (Box<dyn FtCursor + 'a>, Vec<VarId>) {
    match node {
        PlanNode::Scan { token, var } => {
            let id = ctx
                .corpus
                .token_id(token)
                .unwrap_or(ftsl_model::TokenId(u32::MAX));
            let cursor: Box<dyn FtCursor + 'a> = match ctx.index.effective_layout(ctx.layout) {
                IndexLayout::Decoded => Box::new(ScanCursor::new(ctx.index.list(id))),
                IndexLayout::Blocks => Box::new(BlockScanCursor::new(ctx.index.block_list(id))),
            };
            (cursor, vec![*var])
        }
        PlanNode::ScanAny { var } => {
            let cursor: Box<dyn FtCursor + 'a> = match ctx.index.effective_layout(ctx.layout) {
                IndexLayout::Decoded => Box::new(ScanCursor::new(ctx.index.any())),
                IndexLayout::Blocks => Box::new(BlockScanCursor::new(ctx.index.any_block_list())),
            };
            (cursor, vec![*var])
        }
        PlanNode::Join(a, b) => {
            let (left, mut lv) = build_rec(a, ctx, ranks);
            let (right, rv) = build_rec(b, ctx, ranks);
            lv.extend(rv);
            (Box::new(JoinCursor::new(left, right)), lv)
        }
        PlanNode::Select {
            input,
            pred,
            arg_cols,
            consts,
        } => {
            let (inner, vars) = build_rec(input, ctx, ranks);
            let p = ctx.registry.get_shared(*pred);
            let cursor: Box<dyn FtCursor + 'a> = match p.kind() {
                PredKind::Negative => {
                    // Order the predicate's argument indices by thread rank.
                    let mut order: Vec<usize> = (0..arg_cols.len()).collect();
                    order.sort_by_key(|&i| {
                        ranks.get(&vars[arg_cols[i]]).copied().unwrap_or(usize::MAX)
                    });
                    Box::new(SelectCursor::negative(
                        inner,
                        p,
                        arg_cols.clone(),
                        consts.clone(),
                        order,
                    ))
                }
                _ => Box::new(SelectCursor::positive(
                    inner,
                    p,
                    arg_cols.clone(),
                    consts.clone(),
                    ctx.mode,
                )),
            };
            (cursor, vars)
        }
        PlanNode::Project { input, keep } => {
            let (inner, vars) = build_rec(input, ctx, ranks);
            let kept: Vec<VarId> = keep.iter().map(|&k| vars[k]).collect();
            (Box::new(ProjectCursor::new(inner, keep.clone())), kept)
        }
        PlanNode::Union(a, b) => {
            let (left, lv) = build_rec(a, ctx, ranks);
            let (right, _) = build_rec(b, ctx, ranks);
            (Box::new(UnionCursor::new(left, right)), lv)
        }
        PlanNode::Diff(a, b) => {
            let (left, lv) = build_rec(a, ctx, ranks);
            let (filter, _) = build_rec(b, ctx, ranks);
            (Box::new(DiffCursor::new(left, filter)), lv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{lower, parse, Mode};

    #[test]
    fn cursor_tree_runs_a_ppred_query() {
        let corpus = Corpus::from_texts(&[
            "usability of a software",
            "software usability",
            "software only here",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(
            "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' AND distance(p1,p2,5))",
            Mode::Comp,
        )
        .unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let plan = build_plan(&expr, &reg, false).unwrap();
        let ctx = CursorCtx {
            corpus: &corpus,
            index: &index,
            registry: &reg,
            mode: AdvanceMode::Aggressive,
            layout: IndexLayout::Decoded,
        };
        let mut cursor = build_cursor(&plan.root, &ctx, &HashMap::new());
        let mut nodes = Vec::new();
        while let Some(n) = cursor.advance_node() {
            nodes.push(n.0);
        }
        assert_eq!(nodes, vec![0, 1]);
    }
}
