//! The engine dispatcher: classify, pick the cheapest engine, run.

use crate::bool_eval::run_bool_with;
use crate::build::IndexLayout;
use crate::comp::run_comp_with;
use crate::error::ExecError;
use crate::npred::{run_npred, NpredOptions};
use crate::ppred::run_ppred_attr;
use crate::scored::{run_scored_top_k, ScoreModel, ScoredOutput, ScoredTopK};
use ftsl_calculus::CalcQuery;
use ftsl_index::{AccessCounters, InvertedIndex};
use ftsl_lang::{classify, lower, parse, LanguageClass, Mode, SurfaceQuery};
use ftsl_model::{Corpus, NodeId};
use ftsl_obs::{SpanId, Trace, TraceBuilder};
use ftsl_predicates::{AdvanceMode, PredicateRegistry};
use ftsl_scoring::ScoreStats;

/// Which engine to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Pick by language class (Figure 3), falling back to COMP.
    Auto,
    /// Force the BOOL merge engine.
    Bool,
    /// Force the PPRED streaming engine.
    Ppred,
    /// Force the NPRED multi-ordering engine.
    Npred,
    /// Force the COMP materialized engine.
    Comp,
}

/// Execution options.
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Positive-predicate skip aggressiveness.
    pub advance_mode: AdvanceMode,
    /// NPRED: permute all scan variables instead of only negative ones.
    pub npred_full_permutations: bool,
    /// NPRED: run ordering threads in parallel.
    pub npred_parallel: bool,
    /// Physical list layout the streaming engines read (decoded columnar
    /// lists, or block-compressed lists with skip-seeking cursors).
    pub layout: IndexLayout,
    /// PPRED: rewrite two-scan proximity cores (phrase / NEAR) to
    /// word-pair index walks when the index covers them, falling back to
    /// position intersection otherwise. Disable to force the
    /// intersection path — the oracle for differential tests.
    pub use_pairs: bool,
    /// Record a structured span tree (engine choice, per-stage wall time,
    /// counter deltas, pair-path attribution) into the query output. Off
    /// by default; the serving path pays one branch per query when off.
    pub trace: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            advance_mode: AdvanceMode::Aggressive,
            npred_full_permutations: false,
            npred_parallel: false,
            layout: IndexLayout::Decoded,
            use_pairs: true,
            trace: false,
        }
    }
}

/// The engine actually used for a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineUsed {
    /// BOOL merge engine.
    Bool,
    /// PPRED streaming engine.
    Ppred,
    /// NPRED multi-ordering engine.
    Npred,
    /// COMP materialized engine.
    Comp,
}

impl std::fmt::Display for EngineUsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EngineUsed::Bool => "BOOL",
            EngineUsed::Ppred => "PPRED",
            EngineUsed::Npred => "NPRED",
            EngineUsed::Comp => "COMP",
        };
        f.write_str(s)
    }
}

/// Result of running one query.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Matching context nodes, ascending.
    pub nodes: Vec<NodeId>,
    /// Machine-independent work counters.
    pub counters: AccessCounters,
    /// Engine that produced the result.
    pub engine: EngineUsed,
    /// Detected language class.
    pub class: LanguageClass,
    /// Span tree recorded when [`ExecOptions::trace`] was set.
    pub trace: Option<Box<Trace>>,
}

/// Attach every [`AccessCounters`] field as a span attribute (zero-valued
/// attributes are suppressed at render time).
pub fn counter_attrs(tb: &mut TraceBuilder, id: SpanId, c: &AccessCounters) {
    tb.attr(id, "entries", c.entries);
    tb.attr(id, "positions", c.positions);
    tb.attr(id, "positions_decoded", c.positions_decoded);
    tb.attr(id, "tuples", c.tuples);
    tb.attr(id, "skipped", c.skipped);
    tb.attr(id, "blocks_skipped", c.blocks_skipped);
    tb.attr(id, "segments_skipped", c.segments_skipped);
    tb.attr(id, "pair_entries", c.pair_entries);
}

fn finish_engine_span(
    tb: Option<TraceBuilder>,
    id: Option<SpanId>,
    counters: &AccessCounters,
    note: Option<&'static str>,
) -> Option<Box<Trace>> {
    tb.map(|mut b| {
        if let Some(id) = id {
            if let Some(n) = note {
                b.note(id, n);
            }
            counter_attrs(&mut b, id, counters);
            b.close(id);
        }
        Box::new(b.finish())
    })
}

/// Query executor over one corpus + index.
pub struct Executor<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    registry: &'a PredicateRegistry,
    options: ExecOptions,
}

impl<'a> Executor<'a> {
    /// Executor with default options.
    pub fn new(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        registry: &'a PredicateRegistry,
    ) -> Self {
        Executor {
            corpus,
            index,
            registry,
            options: ExecOptions::default(),
        }
    }

    /// Executor with explicit options.
    pub fn with_options(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        registry: &'a PredicateRegistry,
        options: ExecOptions,
    ) -> Self {
        Executor {
            corpus,
            index,
            registry,
            options,
        }
    }

    /// Parse a query string (COMP syntax accepts all three languages) and
    /// run it.
    pub fn run_str(&self, input: &str, engine: EngineKind) -> Result<QueryOutput, ExecError> {
        let surface = parse(input, Mode::Comp).map_err(|e| ExecError::Lang(e.to_string()))?;
        self.run_surface(&surface, engine)
    }

    /// Run an already-parsed surface query.
    pub fn run_surface(
        &self,
        surface: &SurfaceQuery,
        engine: EngineKind,
    ) -> Result<QueryOutput, ExecError> {
        let class = classify(surface, self.registry);
        let chosen = match engine {
            EngineKind::Auto => match class {
                LanguageClass::BoolNoNeg | LanguageClass::Bool => EngineUsed::Bool,
                LanguageClass::Dist | LanguageClass::Ppred => EngineUsed::Ppred,
                LanguageClass::Npred => EngineUsed::Npred,
                LanguageClass::Comp => EngineUsed::Comp,
            },
            EngineKind::Bool => EngineUsed::Bool,
            EngineKind::Ppred => EngineUsed::Ppred,
            EngineKind::Npred => EngineUsed::Npred,
            EngineKind::Comp => EngineUsed::Comp,
        };

        let mut tb = self.options.trace.then(TraceBuilder::new);

        if chosen == EngineUsed::Bool {
            let id = tb.as_mut().map(|b| b.open("engine BOOL"));
            let (nodes, counters) =
                run_bool_with(surface, self.corpus, self.index, self.options.layout)?;
            let trace = finish_engine_span(tb, id, &counters, None);
            return Ok(QueryOutput {
                nodes,
                counters,
                engine: EngineUsed::Bool,
                class,
                trace,
            });
        }

        let lower_id = tb.as_mut().map(|b| b.open("lower to calculus"));
        let expr = lower(surface, self.registry).map_err(|e| ExecError::Lang(e.to_string()))?;
        if let (Some(b), Some(id)) = (tb.as_mut(), lower_id) {
            b.close(id);
        }
        let query = CalcQuery::new(expr);
        self.run_lowered(&query, chosen, class, engine == EngineKind::Auto, tb)
    }

    /// Run a scored top-k query (parsed from `input`) through the streaming
    /// scored dispatcher. See [`Executor::run_top_k`].
    pub fn run_top_k_str(
        &self,
        input: &str,
        spec: ScoredTopK,
        stats: &ScoreStats,
        model: &ScoreModel<'_>,
    ) -> Result<ScoredOutput, ExecError> {
        let surface = parse(input, Mode::Comp).map_err(|e| ExecError::Lang(e.to_string()))?;
        self.run_top_k(&surface, spec, stats, model)
    }

    /// Run a scored top-k query: stream the query's posting entries through
    /// a bounded heap on the configured [`ExecOptions::layout`], pruning
    /// with list- and block-level score bounds where the query shape allows
    /// (flat disjunctions). Only BOOL-shaped queries are rankable this way;
    /// anything else is a [`ExecError::WrongEngine`].
    pub fn run_top_k(
        &self,
        surface: &SurfaceQuery,
        spec: ScoredTopK,
        stats: &ScoreStats,
        model: &ScoreModel<'_>,
    ) -> Result<ScoredOutput, ExecError> {
        run_scored_top_k(
            surface,
            self.corpus,
            self.index,
            stats,
            model,
            self.options.layout,
            spec,
        )
    }

    /// Run a calculus query directly (no surface form). BOOL dispatch is not
    /// available on this path.
    pub fn run_calc(
        &self,
        query: &CalcQuery,
        engine: EngineKind,
    ) -> Result<QueryOutput, ExecError> {
        let chosen = match engine {
            EngineKind::Bool => {
                return Err(ExecError::WrongEngine {
                    engine: "BOOL",
                    reason: "BOOL engine runs on surface queries".into(),
                })
            }
            EngineKind::Ppred => EngineUsed::Ppred,
            EngineKind::Npred => EngineUsed::Npred,
            EngineKind::Comp | EngineKind::Auto => EngineUsed::Comp,
        };
        let tb = self.options.trace.then(TraceBuilder::new);
        self.run_lowered(
            query,
            chosen,
            LanguageClass::Comp,
            engine == EngineKind::Auto,
            tb,
        )
    }

    fn run_lowered(
        &self,
        query: &CalcQuery,
        chosen: EngineUsed,
        class: LanguageClass,
        allow_fallback: bool,
        mut tb: Option<TraceBuilder>,
    ) -> Result<QueryOutput, ExecError> {
        match chosen {
            EngineUsed::Ppred => {
                let id = tb.as_mut().map(|b| b.open("engine PPRED"));
                match run_ppred_attr(
                    &query.expr,
                    self.corpus,
                    self.index,
                    self.registry,
                    self.options.advance_mode,
                    self.options.layout,
                    self.options.use_pairs,
                ) {
                    Ok((nodes, counters, attribution)) => {
                        let trace =
                            finish_engine_span(tb, id, &counters, Some(attribution.describe()));
                        Ok(QueryOutput {
                            nodes,
                            counters,
                            engine: EngineUsed::Ppred,
                            class,
                            trace,
                        })
                    }
                    Err(e) if allow_fallback => {
                        if let (Some(b), Some(id)) = (tb.as_mut(), id) {
                            b.note(id, format!("PPRED refused: {e} — COMP fallback"));
                            b.close(id);
                        }
                        self.run_lowered(query, EngineUsed::Comp, class, false, tb)
                    }
                    Err(e) => Err(e.into()),
                }
            }
            EngineUsed::Npred => {
                let id = tb.as_mut().map(|b| b.open("engine NPRED"));
                let opts = NpredOptions {
                    full_permutations: self.options.npred_full_permutations,
                    parallel: self.options.npred_parallel,
                    mode: self.options.advance_mode,
                    layout: self.options.layout,
                };
                match run_npred(&query.expr, self.corpus, self.index, self.registry, opts) {
                    Ok((nodes, counters)) => {
                        let trace = finish_engine_span(tb, id, &counters, None);
                        Ok(QueryOutput {
                            nodes,
                            counters,
                            engine: EngineUsed::Npred,
                            class,
                            trace,
                        })
                    }
                    Err(e) if allow_fallback => {
                        if let (Some(b), Some(id)) = (tb.as_mut(), id) {
                            b.note(id, format!("NPRED refused: {e} — COMP fallback"));
                            b.close(id);
                        }
                        self.run_lowered(query, EngineUsed::Comp, class, false, tb)
                    }
                    Err(e) => Err(e.into()),
                }
            }
            EngineUsed::Comp => {
                let id = tb.as_mut().map(|b| b.open("engine COMP"));
                let (nodes, counters) = run_comp_with(
                    query,
                    self.corpus,
                    self.index,
                    self.registry,
                    self.options.layout,
                )?;
                let trace = finish_engine_span(tb, id, &counters, None);
                Ok(QueryOutput {
                    nodes,
                    counters,
                    engine: EngineUsed::Comp,
                    class,
                    trace,
                })
            }
            EngineUsed::Bool => unreachable!("BOOL handled before lowering"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;

    fn setup() -> (Corpus, InvertedIndex, PredicateRegistry) {
        let corpus = Corpus::from_texts(&[
            "test driven usability",
            "usability test",
            "test test something",
            "nothing here",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        (corpus, index, PredicateRegistry::with_builtins())
    }

    #[test]
    fn auto_dispatch_picks_expected_engines() {
        let (corpus, index, reg) = setup();
        let exec = Executor::new(&corpus, &index, &reg);

        let out = exec
            .run_str("'test' AND 'usability'", EngineKind::Auto)
            .unwrap();
        assert_eq!(out.engine, EngineUsed::Bool);
        assert_eq!(out.class, LanguageClass::BoolNoNeg);

        let out = exec
            .run_str(
                "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))",
                EngineKind::Auto,
            )
            .unwrap();
        assert_eq!(out.engine, EngineUsed::Ppred);

        let out = exec
            .run_str(
                "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'test' AND diffpos(p1,p2))",
                EngineKind::Auto,
            )
            .unwrap();
        assert_eq!(out.engine, EngineUsed::Npred);

        let out = exec
            .run_str("EVERY p1 (p1 HAS 'test')", EngineKind::Auto)
            .unwrap();
        assert_eq!(out.engine, EngineUsed::Comp);
    }

    #[test]
    fn engines_agree_on_shared_fragment() {
        let (corpus, index, reg) = setup();
        let exec = Executor::new(&corpus, &index, &reg);
        let q = "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))";
        let ppred = exec.run_str(q, EngineKind::Ppred).unwrap();
        let npred = exec.run_str(q, EngineKind::Npred).unwrap();
        let comp = exec.run_str(q, EngineKind::Comp).unwrap();
        assert_eq!(ppred.nodes, npred.nodes);
        assert_eq!(ppred.nodes, comp.nodes);
    }

    #[test]
    fn forced_wrong_engine_errors() {
        let (corpus, index, reg) = setup();
        let exec = Executor::new(&corpus, &index, &reg);
        let err = exec.run_str("EVERY p1 (p1 HAS 'test')", EngineKind::Ppred);
        assert!(matches!(err, Err(ExecError::Plan(_))));
        let err = exec.run_str("SOME p1 (p1 HAS 'test')", EngineKind::Bool);
        assert!(matches!(err, Err(ExecError::WrongEngine { .. })));
    }

    #[test]
    fn counters_rank_engines_by_work() {
        let (corpus, index, reg) = setup();
        let exec = Executor::new(&corpus, &index, &reg);
        let q = "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))";
        let ppred = exec.run_str(q, EngineKind::Ppred).unwrap();
        let comp = exec.run_str(q, EngineKind::Comp).unwrap();
        assert!(
            ppred.counters.total() <= comp.counters.total(),
            "PPRED ({:?}) should not exceed COMP ({:?})",
            ppred.counters,
            comp.counters
        );
    }
}
