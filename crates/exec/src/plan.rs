//! Streaming logical plans for the PPRED/NPRED engines.
//!
//! The planner lowers a calculus expression into a tree of streaming
//! operators (Section 5.5.3's operator trees, e.g. Figure 4), then rewrites
//! it into a **node-level normal form**: unions pulled above differences,
//! differences pulled above predicate/join cores. The rewrite keeps the
//! paper's Algorithm 4/5 cursors sound: after it, `Union` and `Diff` only
//! ever see node-level traffic, and predicates sit inside union-free cores
//! where the single-scan advance strategy applies (`σ(U₁∪U₂)=σ(U₁)∪σ(U₂)`,
//! `J(U₁∪U₂,S)=J(U₁,S)∪J(U₂,S)`, `J(D(L,R),S)=D(J(L,S),R)` and friends).

use crate::error::PlanError;
use ftsl_calculus::ast::{QueryExpr, VarId};
use ftsl_calculus::vars::free_vars;
use ftsl_predicates::{PredKind, PredicateId, PredicateRegistry};

/// A streaming plan operator. Column identity is positional; `cols` mappings
/// are tracked in [`Plan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanNode {
    /// Scan of one token inverted list (1 column).
    Scan {
        /// Token string (resolved against the corpus at cursor build).
        token: String,
        /// The calculus variable this scan binds (used for NPRED thread
        /// orderings).
        var: VarId,
    },
    /// Scan of `IL_ANY` (1 column). Used to anchor predicate variables with
    /// no token binding.
    ScanAny {
        /// The calculus variable this scan binds.
        var: VarId,
    },
    /// Per-node cartesian join (Algorithm 1); columns concatenate.
    Join(Box<PlanNode>, Box<PlanNode>),
    /// Positive/negative predicate selection (Algorithms 2 and 7).
    Select {
        /// Input subtree.
        input: Box<PlanNode>,
        /// The predicate.
        pred: PredicateId,
        /// Input columns feeding the predicate, in argument order.
        arg_cols: Vec<usize>,
        /// Constant arguments.
        consts: Vec<i64>,
    },
    /// Column projection / permutation (Algorithm 3, without the dedup
    /// loop — parents of projections in rewritten plans are node-level).
    Project {
        /// Input subtree.
        input: Box<PlanNode>,
        /// Which input columns to keep, in order.
        keep: Vec<usize>,
    },
    /// Node-level union (Algorithm 4).
    Union(Box<PlanNode>, Box<PlanNode>),
    /// Node-level anti-join (Algorithm 5): nodes of `left` not present in
    /// `right` (`right` comes from a closed `NOT` subquery).
    Diff(Box<PlanNode>, Box<PlanNode>),
}

impl PlanNode {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        match self {
            PlanNode::Scan { .. } | PlanNode::ScanAny { .. } => 1,
            PlanNode::Join(a, b) => a.arity() + b.arity(),
            PlanNode::Select { input, .. } => input.arity(),
            PlanNode::Project { keep, .. } => keep.len(),
            PlanNode::Union(a, _) => a.arity(),
            PlanNode::Diff(a, _) => a.arity(),
        }
    }

    /// The variable each *leaf scan column* of this subtree tracks, for
    /// thread-ordering purposes; computed by the planner alongside the tree.
    fn boxed(self) -> Box<PlanNode> {
        Box::new(self)
    }

    /// Render an indented operator-tree view (Figure 4 style).
    pub fn render_tree(&self, registry: &PredicateRegistry) -> String {
        let mut out = String::new();
        self.render(registry, 0, &mut out);
        out
    }

    fn render(&self, registry: &PredicateRegistry, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::Scan { token, .. } => writeln!(out, "{pad}scan (\"{token}\")").unwrap(),
            PlanNode::ScanAny { .. } => writeln!(out, "{pad}scan (ANY)").unwrap(),
            PlanNode::Join(a, b) => {
                writeln!(out, "{pad}join").unwrap();
                a.render(registry, depth + 1, out);
                b.render(registry, depth + 1, out);
            }
            PlanNode::Select {
                input,
                pred,
                arg_cols,
                consts,
            } => {
                let name = registry.get(*pred).name();
                writeln!(out, "{pad}select {name}({arg_cols:?}, {consts:?})").unwrap();
                input.render(registry, depth + 1, out);
            }
            PlanNode::Project { input, keep } => {
                writeln!(out, "{pad}project {keep:?}").unwrap();
                input.render(registry, depth + 1, out);
            }
            PlanNode::Union(a, b) => {
                writeln!(out, "{pad}union").unwrap();
                a.render(registry, depth + 1, out);
                b.render(registry, depth + 1, out);
            }
            PlanNode::Diff(a, b) => {
                writeln!(out, "{pad}difference").unwrap();
                a.render(registry, depth + 1, out);
                b.render(registry, depth + 1, out);
            }
        }
    }
}

/// A plan with its column-to-variable mapping.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The operator tree.
    pub root: PlanNode,
    /// Variable tracked by each output column.
    pub cols: Vec<VarId>,
    /// Variables appearing in negative predicates (the partial-order set
    /// the NPRED engine permutes).
    pub negative_vars: Vec<VarId>,
    /// Variables of every leaf scan (for the full-permutation mode).
    pub scan_vars: Vec<VarId>,
}

/// Build and normalize a streaming plan for a (closed) calculus expression.
///
/// `allow_negative` selects NPRED (true) vs PPRED (false) predicate rules.
pub fn build_plan(
    expr: &QueryExpr,
    registry: &PredicateRegistry,
    allow_negative: bool,
) -> Result<Plan, PlanError> {
    let mut builder = Builder {
        registry,
        allow_negative,
        negative_vars: Vec::new(),
        scan_vars: Vec::new(),
    };
    let built = builder.build(expr)?;
    let root = rewrite_to_fixpoint(built.node);
    let mut negative_vars = builder.negative_vars;
    negative_vars.sort_unstable();
    negative_vars.dedup();
    Ok(Plan {
        root,
        cols: built.cols,
        negative_vars,
        scan_vars: builder.scan_vars,
    })
}

struct Built {
    node: PlanNode,
    cols: Vec<VarId>,
}

struct Builder<'a> {
    registry: &'a PredicateRegistry,
    allow_negative: bool,
    negative_vars: Vec<VarId>,
    scan_vars: Vec<VarId>,
}

impl Builder<'_> {
    fn build(&mut self, expr: &QueryExpr) -> Result<Built, PlanError> {
        match expr {
            QueryExpr::And(..)
            | QueryExpr::HasToken(..)
            | QueryExpr::HasPos(_)
            | QueryExpr::Pred { .. } => {
                let mut conjuncts = Vec::new();
                flatten_and(expr, &mut conjuncts);
                self.build_conjunction(&conjuncts)
            }
            QueryExpr::Or(a, b) => {
                let left = self.build(a)?;
                let right = self.build(b)?;
                let mut lv = left.cols.clone();
                let mut rv = right.cols.clone();
                lv.sort_unstable();
                rv.sort_unstable();
                if lv != rv {
                    return Err(PlanError::OrVarMismatch);
                }
                // Permute the right side's columns into the left's order.
                let keep: Vec<usize> = left
                    .cols
                    .iter()
                    .map(|v| right.cols.iter().position(|u| u == v).expect("aligned"))
                    .collect();
                let right_node = if keep.iter().copied().eq(0..keep.len()) {
                    right.node
                } else {
                    PlanNode::Project {
                        input: right.node.boxed(),
                        keep,
                    }
                };
                Ok(Built {
                    node: PlanNode::Union(left.node.boxed(), right_node.boxed()),
                    cols: left.cols,
                })
            }
            QueryExpr::Exists(v, body) => {
                let inner = self.build(body)?;
                match inner.cols.iter().position(|u| u == v) {
                    Some(idx) => {
                        let keep: Vec<usize> =
                            (0..inner.cols.len()).filter(|&i| i != idx).collect();
                        let cols: Vec<VarId> = keep.iter().map(|&i| inner.cols[i]).collect();
                        Ok(Built {
                            node: PlanNode::Project {
                                input: inner.node.boxed(),
                                keep,
                            },
                            cols,
                        })
                    }
                    // Quantifier over an unused variable: every leaf is a
                    // scan, so matching nodes necessarily have positions to
                    // bind the variable to — the quantifier is redundant.
                    None => Ok(inner),
                }
            }
            QueryExpr::Not(_) => Err(PlanError::BareNegation),
            QueryExpr::Forall(..) => Err(PlanError::Universal),
        }
    }

    fn build_conjunction(&mut self, conjuncts: &[&QueryExpr]) -> Result<Built, PlanError> {
        let mut relational: Vec<Built> = Vec::new();
        let mut preds: Vec<(&QueryExpr, PredicateId, Vec<VarId>, Vec<i64>)> = Vec::new();
        let mut diffs: Vec<Built> = Vec::new();

        for &c in conjuncts {
            match c {
                QueryExpr::HasToken(v, t) => {
                    self.scan_vars.push(*v);
                    relational.push(Built {
                        node: PlanNode::Scan {
                            token: t.clone(),
                            var: *v,
                        },
                        cols: vec![*v],
                    });
                }
                QueryExpr::HasPos(v) => {
                    self.scan_vars.push(*v);
                    relational.push(Built {
                        node: PlanNode::ScanAny { var: *v },
                        cols: vec![*v],
                    });
                }
                QueryExpr::Pred { pred, vars, consts } => {
                    self.check_pred(*pred)?;
                    if self.registry.get(*pred).kind() == PredKind::Negative {
                        self.negative_vars.extend(vars.iter().copied());
                    }
                    preds.push((c, *pred, vars.clone(), consts.clone()));
                }
                QueryExpr::Not(inner) => {
                    if !free_vars(inner).is_empty() {
                        return Err(PlanError::OpenNegation);
                    }
                    let filter = self.build(inner)?;
                    debug_assert!(filter.cols.is_empty());
                    diffs.push(filter);
                }
                other => relational.push(self.build(other)?),
            }
        }

        // Anchor predicate variables that no relational conjunct binds.
        let mut bound: Vec<VarId> = relational.iter().flat_map(|b| b.cols.clone()).collect();
        for (_, _, vars, _) in &preds {
            for v in vars {
                if !bound.contains(v) {
                    bound.push(*v);
                    self.scan_vars.push(*v);
                    relational.push(Built {
                        node: PlanNode::ScanAny { var: *v },
                        cols: vec![*v],
                    });
                }
            }
        }

        if relational.is_empty() {
            return Err(PlanError::NoRelationalConjunct);
        }

        // Join everything; equate repeated variables via `samepos`.
        let samepos = self
            .registry
            .lookup("samepos")
            .ok_or(PlanError::GeneralPredicate("samepos missing".into()))?;
        let mut acc = relational.remove(0);
        for next in relational {
            let offset = acc.cols.len();
            let mut node = PlanNode::Join(acc.node.boxed(), next.node.boxed());
            let mut cols = acc.cols;
            cols.extend(next.cols);
            // Resolve duplicate variables one at a time.
            loop {
                let mut dup: Option<(usize, usize)> = None;
                'outer: for i in 0..cols.len() {
                    for j in (i + 1).max(offset)..cols.len() {
                        if cols[i] == cols[j] && i < j {
                            dup = Some((i, j));
                            break 'outer;
                        }
                    }
                }
                let Some((i, j)) = dup else { break };
                node = PlanNode::Select {
                    input: node.boxed(),
                    pred: samepos,
                    arg_cols: vec![i, j],
                    consts: vec![],
                };
                let keep: Vec<usize> = (0..cols.len()).filter(|&k| k != j).collect();
                node = PlanNode::Project {
                    input: node.boxed(),
                    keep,
                };
                cols.remove(j);
            }
            acc = Built { node, cols };
        }

        // Apply predicate selections.
        for (_, pred, vars, consts) in preds {
            let arg_cols: Vec<usize> = vars
                .iter()
                .map(|v| acc.cols.iter().position(|u| u == v).expect("anchored"))
                .collect();
            acc = Built {
                node: PlanNode::Select {
                    input: acc.node.boxed(),
                    pred,
                    arg_cols,
                    consts,
                },
                cols: acc.cols,
            };
        }

        // Apply node-level anti-joins for closed negations.
        for d in diffs {
            acc = Built {
                node: PlanNode::Diff(acc.node.boxed(), d.node.boxed()),
                cols: acc.cols,
            };
        }
        Ok(acc)
    }

    fn check_pred(&mut self, pred: PredicateId) -> Result<(), PlanError> {
        if pred.index() >= self.registry.len() {
            return Err(PlanError::UnknownPredicate(pred.0));
        }
        let p = self.registry.get(pred);
        match p.kind() {
            PredKind::Positive => Ok(()),
            PredKind::Negative if self.allow_negative => Ok(()),
            PredKind::Negative => Err(PlanError::NegativePredicate(p.name().to_string())),
            PredKind::General => Err(PlanError::GeneralPredicate(p.name().to_string())),
        }
    }
}

/// Record which variables each negative-predicate selection constrains.
/// (Computed during `check_pred` callers; kept here for clarity.)
fn flatten_and<'e>(expr: &'e QueryExpr, out: &mut Vec<&'e QueryExpr>) {
    match expr {
        QueryExpr::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// Rewrite until no union/difference remains inside a core.
fn rewrite_to_fixpoint(mut node: PlanNode) -> PlanNode {
    loop {
        let (rewritten, changed) = rewrite(node);
        node = rewritten;
        if !changed {
            return node;
        }
    }
}

/// One bottom-up rewrite pass. Returns `(node, changed)`.
fn rewrite(node: PlanNode) -> (PlanNode, bool) {
    match node {
        PlanNode::Scan { .. } | PlanNode::ScanAny { .. } => (node, false),
        PlanNode::Join(a, b) => {
            let (a, ca) = rewrite(*a);
            let (b, cb) = rewrite(*b);
            // J(U(x,y), b) => U(J(x,b), J(y,b)); J(a, U(x,y)) symmetric.
            if let PlanNode::Union(x, y) = a {
                let l = PlanNode::Join(x, b.clone().boxed());
                let r = PlanNode::Join(y, b.boxed());
                return (PlanNode::Union(l.boxed(), r.boxed()), true);
            }
            if let PlanNode::Union(x, y) = b {
                let l = PlanNode::Join(a.clone().boxed(), x);
                let r = PlanNode::Join(a.boxed(), y);
                return (PlanNode::Union(l.boxed(), r.boxed()), true);
            }
            // J(D(l,f), b) => D(J(l,b), f); J(a, D(l,f)) => D(J(a,l), f).
            if let PlanNode::Diff(l, f) = a {
                return (
                    PlanNode::Diff(PlanNode::Join(l, b.boxed()).boxed(), f),
                    true,
                );
            }
            if let PlanNode::Diff(l, f) = b {
                return (
                    PlanNode::Diff(PlanNode::Join(a.boxed(), l).boxed(), f),
                    true,
                );
            }
            (PlanNode::Join(a.boxed(), b.boxed()), ca || cb)
        }
        PlanNode::Select {
            input,
            pred,
            arg_cols,
            consts,
        } => {
            let (input, ci) = rewrite(*input);
            if let PlanNode::Union(x, y) = input {
                let l = PlanNode::Select {
                    input: x,
                    pred,
                    arg_cols: arg_cols.clone(),
                    consts: consts.clone(),
                };
                let r = PlanNode::Select {
                    input: y,
                    pred,
                    arg_cols,
                    consts,
                };
                return (PlanNode::Union(l.boxed(), r.boxed()), true);
            }
            if let PlanNode::Diff(l, f) = input {
                let inner = PlanNode::Select {
                    input: l,
                    pred,
                    arg_cols,
                    consts,
                };
                return (PlanNode::Diff(inner.boxed(), f), true);
            }
            (
                PlanNode::Select {
                    input: input.boxed(),
                    pred,
                    arg_cols,
                    consts,
                },
                ci,
            )
        }
        PlanNode::Project { input, keep } => {
            let (input, ci) = rewrite(*input);
            if let PlanNode::Union(x, y) = input {
                let l = PlanNode::Project {
                    input: x,
                    keep: keep.clone(),
                };
                let r = PlanNode::Project { input: y, keep };
                return (PlanNode::Union(l.boxed(), r.boxed()), true);
            }
            if let PlanNode::Diff(l, f) = input {
                let inner = PlanNode::Project { input: l, keep };
                return (PlanNode::Diff(inner.boxed(), f), true);
            }
            // Collapse nested projections.
            if let PlanNode::Project {
                input: inner,
                keep: inner_keep,
            } = input
            {
                let composed: Vec<usize> = keep.iter().map(|&k| inner_keep[k]).collect();
                return (
                    PlanNode::Project {
                        input: inner,
                        keep: composed,
                    },
                    true,
                );
            }
            (
                PlanNode::Project {
                    input: input.boxed(),
                    keep,
                },
                ci,
            )
        }
        PlanNode::Union(a, b) => {
            let (a, ca) = rewrite(*a);
            let (b, cb) = rewrite(*b);
            (PlanNode::Union(a.boxed(), b.boxed()), ca || cb)
        }
        PlanNode::Diff(a, b) => {
            let (a, ca) = rewrite(*a);
            let (b, cb) = rewrite(*b);
            // D(U(x,y), f) => U(D(x,f), D(y,f)) keeps unions on top.
            if let PlanNode::Union(x, y) = a {
                let l = PlanNode::Diff(x, b.clone().boxed());
                let r = PlanNode::Diff(y, b.boxed());
                return (PlanNode::Union(l.boxed(), r.boxed()), true);
            }
            (PlanNode::Diff(a.boxed(), b.boxed()), ca || cb)
        }
    }
}

/// Estimated result cardinality (in context nodes) of a subtree, used to
/// drive conjunctions off their rarest list: a join can never yield more
/// nodes than its smaller input, a union no more than the sum of its
/// inputs, and selections/projections/differences only shrink their input.
pub fn estimate_nodes(
    node: &PlanNode,
    corpus: &ftsl_model::Corpus,
    index: &ftsl_index::InvertedIndex,
) -> u64 {
    match node {
        PlanNode::Scan { token, .. } => match corpus.token_id(token) {
            Some(id) => index.df(id) as u64,
            None => 0,
        },
        PlanNode::ScanAny { .. } => index.any_block_list().num_entries() as u64,
        PlanNode::Join(a, b) => {
            estimate_nodes(a, corpus, index).min(estimate_nodes(b, corpus, index))
        }
        PlanNode::Select { input, .. } | PlanNode::Project { input, .. } => {
            estimate_nodes(input, corpus, index)
        }
        PlanNode::Union(a, b) => {
            estimate_nodes(a, corpus, index).saturating_add(estimate_nodes(b, corpus, index))
        }
        PlanNode::Diff(a, _) => estimate_nodes(a, corpus, index),
    }
}

/// Put the rarer input of every join on the *left*, where the seek-driven
/// [`crate::join::JoinCursor`] drives from: the rare side is decoded
/// entry-by-entry while the common side is galloped/block-skipped to each
/// candidate. Column order is preserved by wrapping swapped joins in a
/// compensating projection, so `Plan::cols` stays valid and downstream
/// `Select::arg_cols` are untouched.
pub fn order_joins_by_selectivity(
    node: PlanNode,
    corpus: &ftsl_model::Corpus,
    index: &ftsl_index::InvertedIndex,
) -> PlanNode {
    match node {
        PlanNode::Scan { .. } | PlanNode::ScanAny { .. } => node,
        PlanNode::Join(a, b) => {
            let a = order_joins_by_selectivity(*a, corpus, index);
            let b = order_joins_by_selectivity(*b, corpus, index);
            let (da, db) = (
                estimate_nodes(&a, corpus, index),
                estimate_nodes(&b, corpus, index),
            );
            if db < da {
                let (la, lb) = (a.arity(), b.arity());
                let keep: Vec<usize> = (lb..lb + la).chain(0..lb).collect();
                PlanNode::Project {
                    input: PlanNode::Join(b.boxed(), a.boxed()).boxed(),
                    keep,
                }
            } else {
                PlanNode::Join(a.boxed(), b.boxed())
            }
        }
        PlanNode::Select {
            input,
            pred,
            arg_cols,
            consts,
        } => PlanNode::Select {
            input: order_joins_by_selectivity(*input, corpus, index).boxed(),
            pred,
            arg_cols,
            consts,
        },
        PlanNode::Project { input, keep } => PlanNode::Project {
            input: order_joins_by_selectivity(*input, corpus, index).boxed(),
            keep,
        },
        PlanNode::Union(a, b) => PlanNode::Union(
            order_joins_by_selectivity(*a, corpus, index).boxed(),
            order_joins_by_selectivity(*b, corpus, index).boxed(),
        ),
        PlanNode::Diff(a, b) => PlanNode::Diff(
            order_joins_by_selectivity(*a, corpus, index).boxed(),
            order_joins_by_selectivity(*b, corpus, index).boxed(),
        ),
    }
}

/// Check the node-level normal form: no `Union` below a `Join`/`Select`/
/// `Project`, and no `Diff` below a `Join`/`Select`/`Project` (used by
/// tests; `Diff` right-hand filters are independently normalized plans).
pub fn in_normal_form(node: &PlanNode) -> bool {
    fn core_ok(node: &PlanNode) -> bool {
        match node {
            PlanNode::Scan { .. } | PlanNode::ScanAny { .. } => true,
            PlanNode::Join(a, b) => core_ok(a) && core_ok(b),
            PlanNode::Select { input, .. } | PlanNode::Project { input, .. } => core_ok(input),
            PlanNode::Union(..) | PlanNode::Diff(..) => false,
        }
    }
    match node {
        PlanNode::Union(a, b) => in_normal_form(a) && in_normal_form(b),
        PlanNode::Diff(a, b) => in_normal_form(a) && in_normal_form(b),
        core => core_ok(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_lang::{lower, parse, Mode};

    fn plan_for(input: &str, allow_negative: bool) -> Result<Plan, PlanError> {
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(input, Mode::Comp).unwrap();
        let expr = lower(&surface, &reg).unwrap();
        build_plan(&expr, &reg, allow_negative)
    }

    #[test]
    fn simple_conjunction_plans_to_join() {
        let p = plan_for("'test' AND 'usability'", false).unwrap();
        assert!(matches!(
            p.root,
            PlanNode::Project { .. } | PlanNode::Join(..)
        ));
        assert!(in_normal_form(&p.root));
        assert_eq!(p.root.arity(), p.cols.len());
    }

    #[test]
    fn figure4_query_plans_with_selects_over_join() {
        let p = plan_for(
            "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' \
             AND samepara(p1,p2) AND distance(p1,p2,5))",
            false,
        )
        .unwrap();
        let reg = PredicateRegistry::with_builtins();
        let tree = p.root.render_tree(&reg);
        assert!(tree.contains("select samepara"));
        assert!(tree.contains("select distance"));
        assert!(tree.contains("scan (\"usability\")"));
        assert!(in_normal_form(&p.root));
    }

    #[test]
    fn or_under_and_is_rewritten_to_top_level_union() {
        let p = plan_for(
            "SOME p1 SOME p2 ((p1 HAS 'a' OR p1 HAS 'b') AND p2 HAS 'c' \
             AND distance(p1,p2,5))",
            false,
        )
        .unwrap();
        assert!(matches!(p.root, PlanNode::Union(..)));
        assert!(in_normal_form(&p.root));
    }

    #[test]
    fn closed_negation_becomes_difference() {
        let p = plan_for("'a' AND NOT 'b'", false).unwrap();
        assert!(matches!(p.root, PlanNode::Diff(..)));
        assert!(in_normal_form(&p.root));
    }

    #[test]
    fn open_negation_is_rejected() {
        let err = plan_for("SOME p1 (p1 HAS 'a' AND NOT distance(p1,p1,0))", false);
        assert_eq!(err.unwrap_err(), PlanError::OpenNegation);
    }

    #[test]
    fn negative_predicates_require_npred() {
        let q = "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_distance(p1,p2,3))";
        assert!(matches!(
            plan_for(q, false),
            Err(PlanError::NegativePredicate(_))
        ));
        let p = plan_for(q, true).unwrap();
        assert_eq!(p.negative_vars.len(), 2);
    }

    #[test]
    fn general_predicates_are_rejected() {
        let q = "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND exact_gap(p1,p2,3))";
        assert!(matches!(
            plan_for(q, true),
            Err(PlanError::GeneralPredicate(_))
        ));
    }

    #[test]
    fn every_is_rejected() {
        assert_eq!(
            plan_for("EVERY p1 (p1 HAS 'a')", false).unwrap_err(),
            PlanError::Universal
        );
    }

    #[test]
    fn shared_variable_gets_samepos_equijoin() {
        let p = plan_for("SOME p1 (p1 HAS 'a' AND p1 HAS 'b')", false).unwrap();
        let reg = PredicateRegistry::with_builtins();
        let tree = p.root.render_tree(&reg);
        assert!(tree.contains("select samepos"), "plan: {tree}");
    }

    #[test]
    fn pred_only_query_anchors_with_any_scans() {
        let p = plan_for("SOME p1 SOME p2 distance(p1, p2, 3)", false).unwrap();
        let reg = PredicateRegistry::with_builtins();
        let tree = p.root.render_tree(&reg);
        assert!(tree.contains("scan (ANY)"));
    }

    #[test]
    fn or_with_different_vars_is_rejected() {
        let err = plan_for("SOME p1 ((p1 HAS 'a' OR 'b') AND p1 HAS 'c')", false);
        assert_eq!(err.unwrap_err(), PlanError::OrVarMismatch);
    }
}
