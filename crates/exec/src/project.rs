//! The streaming projection (Algorithm 3): a pure column re-mapping.
//!
//! In rewritten plans the consumers of a projection are either node-level
//! operators (union/difference/root) or predicate selections over retained
//! columns, so the paper's duplicate-elimination loop is unnecessary for
//! correctness; we keep the cheap mapping form.

use crate::cursor::FtCursor;
use ftsl_index::AccessCounters;
use ftsl_model::{NodeId, Position};

/// π over a streaming input.
pub struct ProjectCursor<'a> {
    input: Box<dyn FtCursor + 'a>,
    keep: Vec<usize>,
}

impl<'a> ProjectCursor<'a> {
    /// Keep the given input columns, in order.
    pub fn new(input: Box<dyn FtCursor + 'a>, keep: Vec<usize>) -> Self {
        debug_assert!(keep.iter().all(|&c| c < input.arity()));
        ProjectCursor { input, keep }
    }
}

impl FtCursor for ProjectCursor<'_> {
    fn arity(&self) -> usize {
        self.keep.len()
    }

    fn advance_node(&mut self) -> Option<NodeId> {
        self.input.advance_node()
    }

    fn node(&self) -> Option<NodeId> {
        self.input.node()
    }

    fn position(&self, col: usize) -> Position {
        self.input.position(self.keep[col])
    }

    fn advance_position(&mut self, col: usize, min_offset: u32) -> bool {
        self.input.advance_position(self.keep[col], min_offset)
    }

    fn seek_node(&mut self, target: NodeId) -> Option<NodeId> {
        self.input.seek_node(target)
    }

    fn counters(&self) -> AccessCounters {
        self.input.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::ScanCursor;
    use crate::join::JoinCursor;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn projection_remaps_columns() {
        let corpus = Corpus::from_texts(&["a b"]);
        let index = IndexBuilder::new().build(&corpus);
        let a = corpus.token_id("a").unwrap();
        let b = corpus.token_id("b").unwrap();
        let join = JoinCursor::new(
            Box::new(ScanCursor::new(index.list(a))),
            Box::new(ScanCursor::new(index.list(b))),
        );
        // Swap the two columns.
        let mut proj = ProjectCursor::new(Box::new(join), vec![1, 0]);
        proj.advance_node().unwrap();
        assert_eq!(proj.arity(), 2);
        assert_eq!(proj.position(0).offset, 1);
        assert_eq!(proj.position(1).offset, 0);
        assert!(!proj.advance_position(0, 2));
    }
}
