//! The NPRED engine (Section 5.6): per-ordering evaluation threads.
//!
//! The paper presents the algorithm with `toks_Q!` threads — one per total
//! order of the query's inverted-list cursors — and notes that "our
//! implementation generates only the necessary partial orders". Both are
//! implemented here:
//!
//! * **partial orders** (default): permute only the variables that occur in
//!   negative predicates; positive-only queries run a single thread;
//! * **full permutations**: permute every scan variable — the presented
//!   algorithm, used by the benchmarks to reproduce the paper's NPRED-POS
//!   overhead relative to PPRED-POS;
//! * optional **parallel** thread execution (real OS threads, results
//!   merged through an mpsc channel).

use crate::build::{build_cursor, CursorCtx, IndexLayout};
use crate::error::PlanError;
use crate::plan::{build_plan, order_joins_by_selectivity, Plan};
use ftsl_calculus::ast::{QueryExpr, VarId};
use ftsl_index::{AccessCounters, InvertedIndex};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::{AdvanceMode, PredicateRegistry};
use std::collections::HashMap;

/// NPRED engine options.
#[derive(Clone, Copy, Debug)]
pub struct NpredOptions {
    /// Permute all scan variables (the presented algorithm) instead of only
    /// the negative-predicate variables (the partial-order optimization).
    pub full_permutations: bool,
    /// Run evaluation threads on OS threads.
    pub parallel: bool,
    /// Positive-predicate skip aggressiveness.
    pub mode: AdvanceMode,
    /// Physical layout leaf scans read.
    pub layout: IndexLayout,
}

impl Default for NpredOptions {
    fn default() -> Self {
        NpredOptions {
            full_permutations: false,
            parallel: false,
            mode: AdvanceMode::Aggressive,
            layout: IndexLayout::Decoded,
        }
    }
}

/// Evaluate a (closed) calculus expression with the NPRED engine.
pub fn run_npred(
    expr: &QueryExpr,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    options: NpredOptions,
) -> Result<(Vec<NodeId>, AccessCounters), PlanError> {
    let mut plan = build_plan(expr, registry, true)?;
    plan.root = order_joins_by_selectivity(plan.root, corpus, index);
    let vars = ordering_vars(&plan, options.full_permutations);
    let orderings = permutations(&vars);

    if options.parallel && orderings.len() > 1 {
        run_parallel(&plan, corpus, index, registry, options, &orderings)
    } else {
        let mut all_nodes: Vec<NodeId> = Vec::new();
        let mut counters = AccessCounters::new();
        for ordering in &orderings {
            let (nodes, c) = run_thread(&plan, corpus, index, registry, options, ordering);
            all_nodes.extend(nodes);
            counters += c;
        }
        all_nodes.sort_unstable();
        all_nodes.dedup();
        Ok((all_nodes, counters))
    }
}

fn ordering_vars(plan: &Plan, full: bool) -> Vec<VarId> {
    if full {
        let mut vars = plan.scan_vars.clone();
        vars.sort_unstable();
        vars.dedup();
        vars
    } else {
        plan.negative_vars.clone()
    }
}

fn run_thread(
    plan: &Plan,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    options: NpredOptions,
    ordering: &[VarId],
) -> (Vec<NodeId>, AccessCounters) {
    let ranks: HashMap<VarId, usize> = ordering
        .iter()
        .enumerate()
        .map(|(rank, &v)| (v, rank))
        .collect();
    let ctx = CursorCtx {
        corpus,
        index,
        registry,
        mode: options.mode,
        layout: options.layout,
    };
    let mut cursor = build_cursor(&plan.root, &ctx, &ranks);
    let mut nodes = Vec::new();
    while let Some(n) = cursor.advance_node() {
        nodes.push(n);
    }
    (nodes, cursor.counters())
}

fn run_parallel(
    plan: &Plan,
    corpus: &Corpus,
    index: &InvertedIndex,
    registry: &PredicateRegistry,
    options: NpredOptions,
    orderings: &[Vec<VarId>],
) -> Result<(Vec<NodeId>, AccessCounters), PlanError> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for ordering in orderings {
            let tx = tx.clone();
            scope.spawn(move || {
                let result = run_thread(plan, corpus, index, registry, options, ordering);
                tx.send(result).expect("collector alive");
            });
        }
    });
    drop(tx);
    let mut all_nodes: Vec<NodeId> = Vec::new();
    let mut counters = AccessCounters::new();
    for (nodes, c) in rx {
        all_nodes.extend(nodes);
        counters += c;
    }
    all_nodes.sort_unstable();
    all_nodes.dedup();
    Ok((all_nodes, counters))
}

/// All permutations of `vars` (a single empty ordering for no vars).
fn permutations(vars: &[VarId]) -> Vec<Vec<VarId>> {
    if vars.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut work = vars.to_vec();
    permute_rec(&mut work, 0, &mut out);
    out
}

fn permute_rec(work: &mut Vec<VarId>, k: usize, out: &mut Vec<Vec<VarId>>) {
    if k == work.len() {
        out.push(work.clone());
        return;
    }
    for i in k..work.len() {
        work.swap(k, i);
        permute_rec(work, k + 1, out);
        work.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{lower, parse, Mode};

    fn run(query: &str, texts: &[&str], options: NpredOptions) -> Vec<u32> {
        let corpus = Corpus::from_texts(texts);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let surface = parse(query, Mode::Comp).unwrap();
        let expr = lower(&surface, &reg).unwrap();
        let (nodes, _) = run_npred(&expr, &corpus, &index, &reg, options).unwrap();
        nodes.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn not_distance_section_5_6_2_example() {
        // Find nodes where "assignment" and "judge" are at least 40
        // positions apart (more than 40 intervening tokens).
        let filler = ["x"; 45].join(" ");
        let near = format!("assignment {} judge", ["x"; 5].join(" "));
        let far = format!("assignment {filler} judge");
        let reversed = format!("judge {filler} assignment");
        let r = run(
            "SOME p1 SOME p2 (p1 HAS 'assignment' AND p2 HAS 'judge' AND not_distance(p1,p2,40))",
            &[&near, &far, &reversed],
            NpredOptions::default(),
        );
        assert_eq!(r, vec![1, 2]);
    }

    #[test]
    fn diffpos_two_occurrences() {
        // Paper Section 2.2.1: two occurrences of 'test'.
        let r = run(
            "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'test' AND diffpos(p1,p2))",
            &["test", "test test", "test x test", "none"],
            NpredOptions::default(),
        );
        assert_eq!(r, vec![1, 2]);
    }

    #[test]
    fn full_permutations_agree_with_partial_orders() {
        let texts = &[
            "a x x x x x x b c",
            "c b a",
            "a b c",
            "b x x x x x a x x x x c",
        ];
        let q = "SOME p1 SOME p2 SOME p3 (p1 HAS 'a' AND p2 HAS 'b' AND p3 HAS 'c' \
                 AND not_distance(p1,p2,3) AND ordered(p2,p3))";
        let partial = run(q, texts, NpredOptions::default());
        let full = run(
            q,
            texts,
            NpredOptions {
                full_permutations: true,
                ..Default::default()
            },
        );
        assert_eq!(partial, full);
    }

    #[test]
    fn parallel_threads_agree_with_sequential() {
        let texts = &["a x b", "b x x x x x a", "a b", "b a x x x x x x b"];
        let q = "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_distance(p1,p2,2))";
        let seq = run(q, texts, NpredOptions::default());
        let par = run(
            q,
            texts,
            NpredOptions {
                parallel: true,
                full_permutations: true,
                ..Default::default()
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn positive_queries_run_single_thread_with_partial_orders() {
        let q = "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1,p2,1))";
        let r = run(q, &["a b", "a x x b"], NpredOptions::default());
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn mixed_positive_and_negative_predicates() {
        // a before b, but more than 2 intervening tokens.
        let q = "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1,p2) \
                 AND not_distance(p1,p2,2))";
        let r = run(
            q,
            &[
                "a b",         // ordered but close
                "a x x x x b", // ordered and far
                "b x x x x a", // far but wrong order
            ],
            NpredOptions::default(),
        );
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn permutation_count() {
        let vars: Vec<VarId> = (0..4).map(VarId).collect();
        assert_eq!(permutations(&vars).len(), 24);
        assert_eq!(permutations(&[]).len(), 1);
    }
}
