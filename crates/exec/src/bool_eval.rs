//! The BOOL engine (Section 5.3): seek-driven intersection over doc-id
//! lists, sort-merge for everything else.
//!
//! BOOL-NONEG queries touch only the query tokens' inverted-list entries;
//! `NOT` and `ANY` additionally consult the node universe (the paper charges
//! these against `IL_ANY` — its `cnodes` entries dominate the BOOL bound).
//! Complements are taken against *all* context nodes, matching the calculus
//! semantics under which `NOT 'x'` holds on empty nodes too.
//!
//! Conjunctions of two or more plain token literals do **not** pay the
//! paper's sequential O(sum of list lengths) cost: they run a k-way
//! leapfrog over [`ListCursor`]s ordered rarest-first, where each cursor
//! `seek`s to the current candidate node. On skewed (Zipf) corpora a
//! conjunction with one rare operand decodes O(rare · log common) entries;
//! the bypassed entries show up in [`AccessCounters::skipped`] instead of
//! `entries`.

use crate::build::IndexLayout;
use crate::error::ExecError;
use ftsl_index::block::BlockList;
use ftsl_index::{AccessCounters, InvertedIndex, ListCursor, PostingCursor, PostingList};
use ftsl_lang::SurfaceQuery;
use ftsl_model::{Corpus, NodeId, TokenId};

/// Evaluate a BOOL-shaped surface query by list merging, on the decoded
/// layout.
pub fn run_bool(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
) -> Result<(Vec<NodeId>, AccessCounters), ExecError> {
    run_bool_with(query, corpus, index, IndexLayout::Decoded)
}

/// [`run_bool`] with an explicit physical layout: `Blocks` streams every
/// list through block-compressed cursors instead of decoded arrays.
pub fn run_bool_with(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    layout: IndexLayout,
) -> Result<(Vec<NodeId>, AccessCounters), ExecError> {
    // Under blocks-only residency the decoded arrays do not exist; every
    // leaf access resolves to the compressed layout.
    let layout = index.effective_layout(layout);
    let mut counters = AccessCounters::new();
    let nodes = eval(query, corpus, index, layout, &mut counters)?;
    Ok((nodes, counters))
}

/// Materialize a list's node ids through a counting cursor of the selected
/// layout (the BOOL leaf access path).
fn scan_nodes(
    index: &InvertedIndex,
    token: Option<TokenId>,
    layout: IndexLayout,
    counters: &mut AccessCounters,
) -> Vec<NodeId> {
    let mut walk = |cursor: &mut dyn PostingCursor| {
        let mut ids = Vec::new();
        while let Some(n) = cursor.next_entry() {
            ids.push(n);
        }
        *counters += cursor.counters();
        ids
    };
    match (layout, token) {
        (IndexLayout::Decoded, Some(id)) => walk(&mut ListCursor::new(index.list(id))),
        (IndexLayout::Decoded, None) => walk(&mut ListCursor::new(index.any())),
        (IndexLayout::Blocks, Some(id)) => walk(&mut index.block_list(id).cursor()),
        (IndexLayout::Blocks, None) => walk(&mut index.any_block_list().cursor()),
    }
}

fn eval(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    layout: IndexLayout,
    counters: &mut AccessCounters,
) -> Result<Vec<NodeId>, ExecError> {
    match query {
        SurfaceQuery::Lit(tok) => Ok(match corpus.token_id(tok) {
            Some(id) => scan_nodes(index, Some(id), layout, counters),
            None => Vec::new(),
        }),
        SurfaceQuery::Any => Ok(scan_nodes(index, None, layout, counters)),
        SurfaceQuery::Not(inner) => {
            let inner_nodes = eval(inner, corpus, index, layout, counters)?;
            counters.entries += corpus.len() as u64;
            Ok(complement(&inner_nodes, corpus.len() as u32))
        }
        SurfaceQuery::And(..) => {
            let mut conjuncts = Vec::new();
            flatten_and(query, &mut conjuncts);
            eval_conjunction(&conjuncts, corpus, index, layout, counters)
        }
        SurfaceQuery::Or(a, b) => {
            let left = eval(a, corpus, index, layout, counters)?;
            let right = eval(b, corpus, index, layout, counters)?;
            Ok(union_sorted(&left, &right))
        }
        other => Err(ExecError::WrongEngine {
            engine: "BOOL",
            reason: format!("construct {} is not in BOOL", other.render()),
        }),
    }
}

fn flatten_and<'q>(query: &'q SurfaceQuery, out: &mut Vec<&'q SurfaceQuery>) {
    match query {
        SurfaceQuery::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// Evaluate a flattened conjunction: plain token literals go through the
/// seek-driven k-way intersection; remaining conjuncts are evaluated
/// recursively and merged; `NOT` conjuncts subtract last (the BOOL-NONEG
/// path — no complement is materialized when a positive part exists).
fn eval_conjunction(
    conjuncts: &[&SurfaceQuery],
    corpus: &Corpus,
    index: &InvertedIndex,
    layout: IndexLayout,
    counters: &mut AccessCounters,
) -> Result<Vec<NodeId>, ExecError> {
    let mut literal_ids: Vec<TokenId> = Vec::new();
    let mut negated: Vec<&SurfaceQuery> = Vec::new();
    let mut others: Vec<&SurfaceQuery> = Vec::new();
    for &c in conjuncts {
        match c {
            SurfaceQuery::Lit(tok) => {
                literal_ids.push(corpus.token_id(tok).unwrap_or(TokenId(u32::MAX)))
            }
            SurfaceQuery::Not(inner) => negated.push(inner),
            other => others.push(other),
        }
    }

    let mut acc: Option<Vec<NodeId>> = None;
    if literal_ids.len() >= 2 {
        let (nodes, c) = match layout {
            IndexLayout::Decoded => {
                let lists: Vec<&PostingList> =
                    literal_ids.iter().map(|&id| index.list(id)).collect();
                intersect_seek(&lists)
            }
            IndexLayout::Blocks => {
                let lists: Vec<&BlockList> =
                    literal_ids.iter().map(|&id| index.block_list(id)).collect();
                intersect_seek_blocks(&lists)
            }
        };
        *counters += c;
        acc = Some(nodes);
    } else if let Some(&id) = literal_ids.first() {
        // Out-of-vocabulary ids map to the empty list, so this is a no-op
        // walk for unknown tokens.
        acc = Some(scan_nodes(index, Some(id), layout, counters));
    }

    for other in others {
        let nodes = eval(other, corpus, index, layout, counters)?;
        acc = Some(match acc {
            Some(have) => intersect_sorted(&have, &nodes),
            None => nodes,
        });
    }

    for inner in negated {
        let nodes = eval(inner, corpus, index, layout, counters)?;
        acc = Some(match acc {
            Some(have) => difference_sorted(&have, &nodes),
            None => {
                // Pure-negative conjunction: pay the universe scan once.
                counters.entries += corpus.len() as u64;
                complement(&nodes, corpus.len() as u32)
            }
        });
    }

    Ok(acc.unwrap_or_default())
}

/// k-way leapfrog intersection of decoded posting lists, rarest first.
/// Returned counters separate decoded entries from seek-skipped ones.
pub fn intersect_seek(lists: &[&PostingList]) -> (Vec<NodeId>, AccessCounters) {
    intersect_lists(
        lists,
        |l| (l.num_entries(), l.is_empty()),
        |l| Box::new(ListCursor::new(l)),
    )
}

/// [`intersect_seek`] over block-compressed lists: same leapfrog, but seeks
/// jump whole compressed blocks via the skip headers.
pub fn intersect_seek_blocks(lists: &[&BlockList]) -> (Vec<NodeId>, AccessCounters) {
    intersect_lists(
        lists,
        |l| (l.num_entries(), l.is_empty()),
        |l| Box::new(l.cursor()),
    )
}

/// Shared intersection prologue: empty-operand early-out, rarest-first
/// ordering, cursor opening. One copy of the ordering policy for both
/// physical layouts.
fn intersect_lists<'a, L: ?Sized>(
    lists: &[&'a L],
    shape: impl Fn(&L) -> (usize, bool),
    open: impl Fn(&'a L) -> Box<dyn PostingCursor + 'a>,
) -> (Vec<NodeId>, AccessCounters) {
    if lists.is_empty() || lists.iter().any(|l| shape(l).1) {
        return (Vec::new(), AccessCounters::new());
    }
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_by_key(|&i| shape(lists[i]).0);
    intersect_cursors(order.iter().map(|&i| open(lists[i])).collect())
}

/// The leapfrog core, layout-agnostic: cursors must be non-empty and
/// ordered rarest-first.
fn intersect_cursors(
    mut cursors: Vec<Box<dyn PostingCursor + '_>>,
) -> (Vec<NodeId>, AccessCounters) {
    let mut counters = AccessCounters::new();
    let mut out = Vec::new();
    let k = cursors.len();
    let mut target = cursors[0].next_entry().expect("non-empty list");
    if k == 1 {
        out.push(target);
        while let Some(n) = cursors[0].next_entry() {
            out.push(n);
        }
        return (out, cursors[0].counters());
    }
    // `agree` cursors in a row (ending at `i`'s predecessor) sit on
    // `target`; when all k agree the node is emitted and the ring restarts
    // from the cursor that found the next candidate.
    let mut agree = 1usize;
    let mut i = 1usize;
    while let Some(n) = cursors[i].seek(target) {
        if n == target {
            agree += 1;
            if agree == k {
                out.push(target);
                match cursors[i].next_entry() {
                    Some(next) => {
                        target = next;
                        agree = 1;
                    }
                    None => break,
                }
            }
        } else {
            target = n;
            agree = 1;
        }
        i = (i + 1) % k;
    }
    for c in &cursors {
        counters += c.counters();
    }
    (out, counters)
}

fn complement(sorted: &[NodeId], cnodes: u32) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(cnodes as usize - sorted.len());
    let mut it = sorted.iter().peekable();
    for id in 0..cnodes {
        match it.peek() {
            Some(&&n) if n.0 == id => {
                it.next();
            }
            _ => out.push(NodeId(id)),
        }
    }
    out
}

/// Merge-intersection of two sorted id lists.
pub fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Merge-union of two sorted id lists.
pub fn union_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge-difference of two sorted id lists.
pub fn difference_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{parse, Mode};

    fn run(query: &str, texts: &[&str]) -> Vec<u32> {
        let corpus = Corpus::from_texts(texts);
        let index = IndexBuilder::new().build(&corpus);
        let q = parse(query, Mode::Bool).unwrap();
        let (nodes, _) = run_bool(&q, &corpus, &index).unwrap();
        nodes.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn section_5_3_example_shape() {
        // ('software' AND 'users' AND NOT 'testing') OR 'usability'
        let r = run(
            "('software' AND 'users' AND NOT 'testing') OR 'usability'",
            &[
                "software users",         // matches (left branch)
                "software users testing", // blocked by NOT
                "usability",              // matches (right branch)
                "software testing",       // no
            ],
        );
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn not_includes_empty_nodes() {
        let r = run("NOT 'a'", &["a", "", "b"]);
        assert_eq!(r, vec![1, 2]);
    }

    #[test]
    fn any_excludes_empty_nodes() {
        let r = run("ANY", &["a", "", "b"]);
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn unknown_token_matches_nothing() {
        assert!(run("'zzz'", &["a", "b"]).is_empty());
        let all = run("NOT 'zzz'", &["a", "b"]);
        assert_eq!(all, vec![0, 1]);
    }

    #[test]
    fn double_negation() {
        let r = run("NOT NOT 'a'", &["a", "b", "a c"]);
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn counters_distinguish_noneg_from_neg() {
        let corpus = Corpus::from_texts(&["a b", "a", "b", "c", "d", "e"]);
        let index = IndexBuilder::new().build(&corpus);
        let noneg = parse("'a' AND 'b'", Mode::Bool).unwrap();
        let (_, c1) = run_bool(&noneg, &corpus, &index).unwrap();
        let neg = parse("NOT 'a'", Mode::Bool).unwrap();
        let (_, c2) = run_bool(&neg, &corpus, &index).unwrap();
        // The complement pays the cnodes-sized universe scan.
        assert!(c2.entries > c1.entries);
        assert!(c2.entries >= corpus.len() as u64);
    }

    #[test]
    fn merge_helpers() {
        let a: Vec<NodeId> = [1, 3, 5, 7].iter().map(|&i| NodeId(i)).collect();
        let b: Vec<NodeId> = [3, 4, 7, 9].iter().map(|&i| NodeId(i)).collect();
        let i: Vec<u32> = intersect_sorted(&a, &b).iter().map(|n| n.0).collect();
        let u: Vec<u32> = union_sorted(&a, &b).iter().map(|n| n.0).collect();
        let d: Vec<u32> = difference_sorted(&a, &b).iter().map(|n| n.0).collect();
        assert_eq!(i, vec![3, 7]);
        assert_eq!(u, vec![1, 3, 4, 5, 7, 9]);
        assert_eq!(d, vec![1, 5]);
    }

    #[test]
    fn comp_constructs_are_rejected() {
        let corpus = Corpus::from_texts(&["a"]);
        let index = IndexBuilder::new().build(&corpus);
        let q = parse("SOME p1 (p1 HAS 'a')", Mode::Comp).unwrap();
        assert!(matches!(
            run_bool(&q, &corpus, &index),
            Err(ExecError::WrongEngine { .. })
        ));
    }
}
