//! The BOOL engine (Section 5.3): sort-merge over doc-id lists.
//!
//! BOOL-NONEG queries touch only the query tokens' inverted-list entries;
//! `NOT` and `ANY` additionally consult the node universe (the paper charges
//! these against `IL_ANY` — its `cnodes` entries dominate the BOOL bound).
//! Complements are taken against *all* context nodes, matching the calculus
//! semantics under which `NOT 'x'` holds on empty nodes too.

use crate::error::ExecError;
use ftsl_index::{AccessCounters, InvertedIndex};
use ftsl_lang::SurfaceQuery;
use ftsl_model::{Corpus, NodeId};

/// Evaluate a BOOL-shaped surface query by list merging.
pub fn run_bool(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
) -> Result<(Vec<NodeId>, AccessCounters), ExecError> {
    let mut counters = AccessCounters::new();
    let nodes = eval(query, corpus, index, &mut counters)?;
    Ok((nodes, counters))
}

fn eval(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    counters: &mut AccessCounters,
) -> Result<Vec<NodeId>, ExecError> {
    match query {
        SurfaceQuery::Lit(tok) => {
            let ids = match corpus.token_id(tok) {
                Some(id) => index.list(id).node_ids().to_vec(),
                None => Vec::new(),
            };
            counters.entries += ids.len() as u64;
            Ok(ids)
        }
        SurfaceQuery::Any => {
            let ids = index.any().node_ids().to_vec();
            counters.entries += ids.len() as u64;
            Ok(ids)
        }
        SurfaceQuery::Not(inner) => {
            let inner_nodes = eval(inner, corpus, index, counters)?;
            counters.entries += corpus.len() as u64;
            Ok(complement(&inner_nodes, corpus.len() as u32))
        }
        SurfaceQuery::And(a, b) => {
            let left = eval(a, corpus, index, counters)?;
            // `x AND NOT y` merges directly without materializing the
            // complement (the BOOL-NONEG path).
            if let SurfaceQuery::Not(negated) = b.as_ref() {
                let right = eval(negated, corpus, index, counters)?;
                return Ok(difference_sorted(&left, &right));
            }
            let right = eval(b, corpus, index, counters)?;
            Ok(intersect_sorted(&left, &right))
        }
        SurfaceQuery::Or(a, b) => {
            let left = eval(a, corpus, index, counters)?;
            let right = eval(b, corpus, index, counters)?;
            Ok(union_sorted(&left, &right))
        }
        other => Err(ExecError::WrongEngine {
            engine: "BOOL",
            reason: format!("construct {} is not in BOOL", other.render()),
        }),
    }
}

fn complement(sorted: &[NodeId], cnodes: u32) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(cnodes as usize - sorted.len());
    let mut it = sorted.iter().peekable();
    for id in 0..cnodes {
        match it.peek() {
            Some(&&n) if n.0 == id => {
                it.next();
            }
            _ => out.push(NodeId(id)),
        }
    }
    out
}

/// Merge-intersection of two sorted id lists.
pub fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Merge-union of two sorted id lists.
pub fn union_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge-difference of two sorted id lists.
pub fn difference_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{parse, Mode};

    fn run(query: &str, texts: &[&str]) -> Vec<u32> {
        let corpus = Corpus::from_texts(texts);
        let index = IndexBuilder::new().build(&corpus);
        let q = parse(query, Mode::Bool).unwrap();
        let (nodes, _) = run_bool(&q, &corpus, &index).unwrap();
        nodes.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn section_5_3_example_shape() {
        // ('software' AND 'users' AND NOT 'testing') OR 'usability'
        let r = run(
            "('software' AND 'users' AND NOT 'testing') OR 'usability'",
            &[
                "software users",         // matches (left branch)
                "software users testing", // blocked by NOT
                "usability",              // matches (right branch)
                "software testing",       // no
            ],
        );
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn not_includes_empty_nodes() {
        let r = run("NOT 'a'", &["a", "", "b"]);
        assert_eq!(r, vec![1, 2]);
    }

    #[test]
    fn any_excludes_empty_nodes() {
        let r = run("ANY", &["a", "", "b"]);
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn unknown_token_matches_nothing() {
        assert!(run("'zzz'", &["a", "b"]).is_empty());
        let all = run("NOT 'zzz'", &["a", "b"]);
        assert_eq!(all, vec![0, 1]);
    }

    #[test]
    fn double_negation() {
        let r = run("NOT NOT 'a'", &["a", "b", "a c"]);
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn counters_distinguish_noneg_from_neg() {
        let corpus = Corpus::from_texts(&["a b", "a", "b", "c", "d", "e"]);
        let index = IndexBuilder::new().build(&corpus);
        let noneg = parse("'a' AND 'b'", Mode::Bool).unwrap();
        let (_, c1) = run_bool(&noneg, &corpus, &index).unwrap();
        let neg = parse("NOT 'a'", Mode::Bool).unwrap();
        let (_, c2) = run_bool(&neg, &corpus, &index).unwrap();
        // The complement pays the cnodes-sized universe scan.
        assert!(c2.entries > c1.entries);
        assert!(c2.entries >= corpus.len() as u64);
    }

    #[test]
    fn merge_helpers() {
        let a: Vec<NodeId> = [1, 3, 5, 7].iter().map(|&i| NodeId(i)).collect();
        let b: Vec<NodeId> = [3, 4, 7, 9].iter().map(|&i| NodeId(i)).collect();
        let i: Vec<u32> = intersect_sorted(&a, &b).iter().map(|n| n.0).collect();
        let u: Vec<u32> = union_sorted(&a, &b).iter().map(|n| n.0).collect();
        let d: Vec<u32> = difference_sorted(&a, &b).iter().map(|n| n.0).collect();
        assert_eq!(i, vec![3, 7]);
        assert_eq!(u, vec![1, 3, 4, 5, 7, 9]);
        assert_eq!(d, vec![1, 5]);
    }

    #[test]
    fn comp_constructs_are_rejected() {
        let corpus = Corpus::from_texts(&["a"]);
        let index = IndexBuilder::new().build(&corpus);
        let q = parse("SOME p1 (p1 HAS 'a')", Mode::Comp).unwrap();
        assert!(matches!(
            run_bool(&q, &corpus, &index),
            Err(ExecError::WrongEngine { .. })
        ));
    }
}
