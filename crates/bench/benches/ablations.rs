//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * aggressive vs. conservative positive-predicate skip bounds;
//! * NPRED partial orders vs. full permutations vs. parallel threads;
//! * decoded columnar lists vs. block-compressed lists with skip headers;
//! * sequential vs. sharded-parallel index construction.

mod common;

use common::{bench_env, criterion};
use criterion::criterion_main;
use ftsl_bench::{series_query, Series};
use ftsl_exec::build::IndexLayout;
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::IndexBuilder;
use ftsl_predicates::AdvanceMode;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let mut group = c.benchmark_group("ablations");

    let ppred_query = series_query(Series::PpredPos, &env, 3, 2);
    for (label, mode) in [
        ("ppred_aggressive_skip", AdvanceMode::Aggressive),
        ("ppred_conservative_skip", AdvanceMode::Conservative),
    ] {
        let options = ExecOptions {
            advance_mode: mode,
            ..Default::default()
        };
        let exec = Executor::with_options(&env.corpus, &env.index, &env.registry, options);
        let query = ppred_query.clone();
        group.bench_function(label, move |b| {
            b.iter(|| {
                black_box(
                    exec.run_surface(&query, EngineKind::Ppred)
                        .expect("runs")
                        .nodes
                        .len(),
                )
            })
        });
    }

    let npred_query = series_query(Series::NpredNeg, &env, 3, 2);
    for (label, full, parallel) in [
        ("npred_partial_orders", false, false),
        ("npred_full_permutations", true, false),
        ("npred_full_parallel", true, true),
    ] {
        let options = ExecOptions {
            npred_full_permutations: full,
            npred_parallel: parallel,
            ..Default::default()
        };
        let exec = Executor::with_options(&env.corpus, &env.index, &env.registry, options);
        let query = npred_query.clone();
        group.bench_function(label, move |b| {
            b.iter(|| {
                black_box(
                    exec.run_surface(&query, EngineKind::Npred)
                        .expect("runs")
                        .nodes
                        .len(),
                )
            })
        });
    }

    // Physical layout: identical PPRED plans over decoded vs compressed
    // leaves, plus the single-resident serving mode (decoded views
    // dropped, blocks-only index).
    let mut lean_index = env.index.clone();
    lean_index.set_residency(ftsl_index::Residency::BlocksOnly);
    let layout_query = series_query(Series::PpredPos, &env, 3, 2);
    for (label, index, layout) in [
        ("ppred_layout_decoded", &env.index, IndexLayout::Decoded),
        ("ppred_layout_blocks", &env.index, IndexLayout::Blocks),
        ("ppred_layout_blocks_only", &lean_index, IndexLayout::Blocks),
    ] {
        let options = ExecOptions {
            layout,
            ..Default::default()
        };
        let exec = Executor::with_options(&env.corpus, index, &env.registry, options);
        let query = layout_query.clone();
        group.bench_function(label, move |b| {
            b.iter(|| {
                black_box(
                    exec.run_surface(&query, EngineKind::Ppred)
                        .expect("runs")
                        .nodes
                        .len(),
                )
            })
        });
    }

    // Index construction: sequential vs sharded-parallel build.
    for (label, threads) in [
        ("index_build_1_thread", 1usize),
        ("index_build_parallel", 0),
    ] {
        let corpus = &env.corpus;
        group.bench_function(label, move |b| {
            let builder = if threads == 0 {
                IndexBuilder::new().threads(
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                )
            } else {
                IndexBuilder::new().threads(threads)
            };
            b.iter(|| black_box(builder.build(corpus).stats().cnodes))
        });
    }

    group.finish();
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
