//! Figure 5: evaluation time vs. number of query tokens (1–5, preds_Q = 2).

mod common;

use common::{bench_env, criterion, run_point};
use criterion::{criterion_main, BenchmarkId};
use ftsl_bench::Series;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let mut group = c.benchmark_group("fig5_tokens");
    for toks in 1..=5usize {
        for series in Series::ALL {
            group.bench_with_input(BenchmarkId::new(series.label(), toks), &toks, |b, &toks| {
                b.iter(|| black_box(run_point(&env, series, toks, 2)))
            });
        }
    }
    group.finish();
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
