//! Figure 3: one benchmark per language class at the default query point,
//! pairing wall time with the machine-independent counters printed by the
//! `figures` binary.

mod common;

use common::{bench_env, criterion, run_point};
use criterion::criterion_main;
use ftsl_bench::Series;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let mut group = c.benchmark_group("fig3_hierarchy");
    for series in Series::ALL {
        group.bench_function(series.label(), |b| {
            b.iter(|| black_box(run_point(&env, series, 3, 2)))
        });
    }
    group.finish();
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
