//! Observability overhead gates: the instrumentation a serve worker adds
//! per request (clock the request, record a latency histogram bucket,
//! check the slow-log threshold) must stay within 3% (+0.2 µs measurement
//! slack) of the un-instrumented call, on both serving paths:
//!
//! * the cache-hit path (nanosecond scale — worst *relative* overhead);
//! * the evaluation path (microsecond scale — the realistic request).
//!
//! Also reported, ungated: what turning span tracing ON costs on the same
//! evaluation, so the "near-zero when off, cheap when on" claim has a
//! number attached.

use ftsl_bench::results::{median_micros, smoke, Measurement, ResultsSink, INNER_RUNS};
use ftsl_core::{LiveConfig, LiveFtsl};
use ftsl_corpus::SynthConfig;
use ftsl_exec::engine::ExecOptions;
use ftsl_index::IndexLayout;
use ftsl_obs::{Histogram, SlowLog};
use ftsl_serve::{QueryRequest, ResultCache, ServeContext};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn build_engine(trace: bool) -> Arc<LiveFtsl> {
    let corpus = SynthConfig {
        cnodes: if smoke() { 500 } else { 2000 },
        vocabulary: 900,
        tokens_per_doc: 50,
        ..SynthConfig::default()
    }
    .plant("rare", 0.02, 3)
    .plant("common", 0.5, 1)
    .build();
    let interner = corpus.interner();
    let texts: Vec<String> = corpus
        .documents()
        .iter()
        .map(|doc| {
            doc.tokens
                .iter()
                .map(|&(t, _)| interner.name(t))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let engine = LiveFtsl::with_config(LiveConfig {
        background_merge: false,
        ..LiveConfig::default()
    })
    .with_options(ExecOptions {
        layout: IndexLayout::Blocks,
        trace,
        ..ExecOptions::default()
    });
    for t in &texts {
        engine.add(t);
    }
    engine.flush();
    Arc::new(engine)
}

/// Best-of-N medians: repeat the median measurement and keep the minimum,
/// shrugging off background load (micro_cursors' counting-gate idiom).
fn best_of<F: FnMut()>(rounds: usize, samples: usize, mut f: F) -> f64 {
    (0..rounds)
        .map(|_| median_micros(samples, &mut f))
        .fold(f64::MAX, f64::min)
}

fn main() {
    let (rounds, samples) = if smoke() { (4, 15) } else { (8, 25) };
    let gate = |instrumented: f64, bare: f64, what: &str| {
        println!(
            "obs_overhead/{what}: bare {bare:.3} µs vs instrumented {instrumented:.3} µs \
             ({:+.1}%)",
            100.0 * (instrumented - bare) / bare
        );
        assert!(
            instrumented <= bare * 1.03 + 0.2,
            "{what}: per-request instrumentation costs more than 3%: \
             {instrumented:.3} µs vs {bare:.3} µs"
        );
    };
    let mut sink = ResultsSink::new("obs_overhead");
    let runs = (rounds * samples * INNER_RUNS) as u32;
    let m = |us| Measurement { us, runs };

    let engine = build_engine(false);
    let cache = Arc::new(ResultCache::new(64));
    let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
    let hist = Histogram::new();
    let slow = SlowLog::new(u64::MAX, 8); // threshold check real, never taken

    // Cache-hit path.
    let hit = QueryRequest::search("'rare' AND 'common'");
    ctx.serve(&hit).expect("warm");
    assert!(ctx.serve(&hit).expect("warm").cached);
    let hit_bare = best_of(rounds, samples, || {
        black_box(ctx.serve(&hit).expect("hit"));
    });
    let hit_instr = best_of(rounds, samples, || {
        let t = Instant::now();
        black_box(ctx.serve(&hit).expect("hit"));
        let us = t.elapsed().as_micros() as u64;
        hist.record(us);
        assert!(!slow.should_log(us));
    });
    sink.record("serve_hit_bare", m(hit_bare), Default::default());
    sink.record("serve_hit_instrumented", m(hit_instr), Default::default());
    gate(hit_instr, hit_bare, "cache_hit");

    // Evaluation path (no cache in the loop, trace off).
    let eval = || {
        black_box(engine.search("'rare' AND 'common'").expect("eval"));
    };
    let eval_bare = best_of(rounds, samples, eval);
    let eval_instr = best_of(rounds, samples, || {
        let t = Instant::now();
        black_box(engine.search("'rare' AND 'common'").expect("eval"));
        let us = t.elapsed().as_micros() as u64;
        hist.record(us);
        assert!(!slow.should_log(us));
    });
    sink.record("eval_bare", m(eval_bare), Default::default());
    sink.record("eval_instrumented", m(eval_instr), Default::default());
    gate(eval_instr, eval_bare, "evaluation");

    // Tracing ON, for the record (ungated: tracing is opt-in).
    let traced_engine = build_engine(true);
    let eval_traced = best_of(rounds, samples, || {
        black_box(traced_engine.search("'rare' AND 'common'").expect("eval"));
    });
    sink.record("eval_traced", m(eval_traced), Default::default());
    println!(
        "obs_overhead/trace_on: {eval_traced:.3} µs vs trace-off {eval_bare:.3} µs \
         ({:+.1}%)",
        100.0 * (eval_traced - eval_bare) / eval_bare
    );

    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());
}
