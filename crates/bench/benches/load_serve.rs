//! Closed-loop load harness for the concurrent serving front door.
//!
//! For each worker count in {1, 2, 4, 8}: spin up a [`ServePool`] over one
//! shared live engine (block layout, so queries drive the pooled-scratch
//! `BlockCursor` path), run one closed-loop client thread per worker
//! issuing a Zipf-skewed mix of BOOL searches and streamed top-k requests,
//! while the main thread churns writes (add/delete/flush — every flush
//! bumps the snapshot version and invalidates the result cache). Reported
//! per case: QPS, p50/p95/p99 request latency, cache hit rate, and mean
//! worker-heap allocations per served query (a [`CountingAlloc`] is
//! installed as the global allocator so the pool's per-worker counters
//! measure real heap traffic).
//!
//! Smoke mode (`FTSL_BENCH_SMOKE=1`) shrinks the corpus and request counts
//! and gates on scaling: with >= 4 cores, 4-worker QPS must be at least 2x
//! 1-worker QPS; on smaller machines (where parallel speedup is
//! physically unavailable) it gates on the counter-level no-contention
//! invariants instead — per-worker served sums to the request total and
//! cache hits + misses account for every lookup, exactly.
//!
//! The write-churn rate is configurable: `FTSL_LOAD_CHURN_US` sets the
//! pause between writer mutations in microseconds (default 200).

use ftsl_bench::results::{smoke, LoadMetrics, ResultsSink};
use ftsl_core::{LiveConfig, LiveFtsl, RankModel};
use ftsl_corpus::SynthConfig;
use ftsl_exec::engine::ExecOptions;
use ftsl_index::IndexLayout;
use ftsl_serve::{CountingAlloc, QueryRequest, ServeConfig, ServePoolExt};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn corpus_texts(cnodes: usize) -> Vec<String> {
    let corpus = SynthConfig {
        cnodes,
        vocabulary: 1200,
        tokens_per_doc: 50,
        ..SynthConfig::default()
    }
    .plant("rare", 0.02, 4)
    .plant("common", 0.55, 1)
    .plant("mid", 0.15, 2)
    .build();
    let interner = corpus.interner();
    corpus
        .documents()
        .iter()
        .map(|doc| {
            doc.tokens
                .iter()
                .map(|&(t, _)| interner.name(t))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// The request mix: BOOL point lookups, a conjunction, and streamed top-k
/// unions, ordered hottest-first so the Zipf skew concentrates on the
/// cheap cacheable head.
fn request_mix() -> Vec<QueryRequest> {
    vec![
        QueryRequest::search("'common'"),
        QueryRequest::top_k("'common' OR 'mid'", RankModel::TfIdf, 10),
        QueryRequest::search("'rare' AND 'common'"),
        QueryRequest::top_k("'rare' OR 'mid'", RankModel::TfIdf, 10),
        QueryRequest::search("'mid'"),
        QueryRequest::top_k("'common' OR 'rare' OR 'mid'", RankModel::TfIdf, 5),
        QueryRequest::search("'rare'"),
        QueryRequest::search("'mid' AND 'common'"),
    ]
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Zipf-ish popularity: square a uniform draw so low indices dominate.
fn skewed_index(state: &mut u64, len: usize) -> usize {
    let u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64;
    ((u * u * len as f64) as usize).min(len - 1)
}

struct RunOutcome {
    metrics: LoadMetrics,
    served_by_workers: u64,
    lookups: u64,
    /// Prometheus text export sampled after the run drained.
    metrics_text: String,
}

/// One closed-loop run: `workers` pool threads, as many client threads,
/// `per_client` requests each, writer churn on the main thread until the
/// clients drain. `with_metrics` toggles per-request latency recording
/// ([`ServeConfig::metrics`]) so its cost can be measured head to head;
/// `churn` disables the writer thread for runs that need a fixed-size
/// engine (the metrics on/off comparison, where corpus growth between
/// runs would swamp the effect being measured).
fn run_load(
    engine: &Arc<LiveFtsl>,
    workers: usize,
    per_client: usize,
    with_metrics: bool,
    churn: bool,
) -> RunOutcome {
    let pool = engine.serve_pool(ServeConfig {
        workers,
        cache_capacity: 256,
        metrics: with_metrics,
        ..ServeConfig::default()
    });
    let mix = request_mix();
    let churn_us: u64 = std::env::var("FTSL_LOAD_CHURN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let done = AtomicBool::new(false);
    let started = Instant::now();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(workers * per_client);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|c| {
                let (pool, mix) = (&pool, &mix);
                scope.spawn(move || {
                    let mut state = (c as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    let mut lat = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let req = mix[skewed_index(&mut state, mix.len())].clone();
                        let t = Instant::now();
                        pool.execute(req).expect("bench queries parse");
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();

        // Writer churn: live the whole client run, bumping the version
        // (and invalidating the cache) on every flush.
        let writer = scope.spawn(|| {
            let mut round: u32 = 0;
            while churn && !done.load(Ordering::Relaxed) {
                let last = engine.add(&format!("churn{round} common filler mid"));
                if round.is_multiple_of(3) {
                    engine.delete(last);
                }
                if round.is_multiple_of(4) {
                    engine.flush();
                }
                round += 1;
                std::thread::sleep(Duration::from_micros(churn_us));
            }
            if churn {
                engine.flush();
            }
        });

        for h in handles {
            latencies_ns.extend(h.join().expect("client thread"));
        }
        done.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
    });

    let elapsed = started.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();
    let pct = |p: f64| {
        let i = ((latencies_ns.len() as f64 * p) as usize).min(latencies_ns.len() - 1);
        latencies_ns[i] as f64 / 1_000.0
    };
    let stats = pool.stats();
    let served = stats.served();
    let allocs: u64 = stats.workers.iter().map(|w| w.allocs).sum();
    RunOutcome {
        metrics: LoadMetrics {
            workers: workers as u32,
            requests: latencies_ns.len() as u64,
            qps: latencies_ns.len() as f64 / elapsed,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            cache_hit: stats.cache.hit_rate(),
            allocs_per_query: allocs as f64 / served.max(1) as f64,
        },
        served_by_workers: stats.workers.iter().map(|w| w.served).sum(),
        lookups: stats.cache.hits + stats.cache.misses,
        metrics_text: pool.metrics_text(),
    }
}

fn main() {
    let (cnodes, per_client) = if smoke() { (600, 300) } else { (3000, 1500) };
    let engine = Arc::new(
        LiveFtsl::with_config(LiveConfig {
            background_merge: true,
            ..LiveConfig::default()
        })
        .with_options(ExecOptions {
            layout: IndexLayout::Blocks,
            ..ExecOptions::default()
        }),
    );
    for text in corpus_texts(cnodes) {
        engine.add(&text);
    }
    engine.flush();

    let mut sink = ResultsSink::new("load_serve");
    let mut by_workers: Vec<(usize, RunOutcome)> = Vec::new();
    for &workers in &[1usize, 2, 4, 8] {
        let outcome = run_load(&engine, workers, per_client, true, true);
        let m = &outcome.metrics;
        println!(
            "load_serve/mixed_w{workers}: {} req, {:.0} QPS, p50 {:.1}µs p95 {:.1}µs \
             p99 {:.1}µs, cache hit {:.1}%, {:.2} allocs/query",
            m.requests,
            m.qps,
            m.p50_us,
            m.p95_us,
            m.p99_us,
            100.0 * m.cache_hit,
            m.allocs_per_query,
        );
        sink.record_load(&format!("mixed_w{workers}"), *m);
        by_workers.push((workers, outcome));
    }

    // Metrics cost gate: the same closed loop with latency recording off
    // vs on. Best-of-2 each way to shrug off scheduler noise; the on/off
    // ratio must stay >= 0.97 (0.90 in smoke, where runs are tiny and a
    // single descheduling skews QPS).
    let gate_workers = if std::thread::available_parallelism().map_or(1, |n| n.get()) >= 4 {
        4
    } else {
        2
    };
    // Churn-free and interleaved (on/off/on/off), so neither side sees a
    // systematically bigger engine or colder cache.
    let gate_run = |with_metrics: bool| {
        run_load(&engine, gate_workers, per_client, with_metrics, false)
            .metrics
            .qps
    };
    gate_run(true); // warm the fixed-size engine once
    let (mut qps_on, mut qps_off) = (f64::MIN, f64::MIN);
    for _ in 0..2 {
        qps_on = qps_on.max(gate_run(true));
        qps_off = qps_off.max(gate_run(false));
    }
    let floor = if smoke() { 0.90 } else { 0.97 };
    println!(
        "load_serve/metrics gate: {qps_on:.0} QPS with metrics vs {qps_off:.0} without \
         ({:.3}x, floor {floor})",
        qps_on / qps_off
    );
    assert!(
        qps_on >= floor * qps_off,
        "per-request metrics cost too much throughput: \
         {qps_on:.0} QPS on vs {qps_off:.0} off"
    );

    // Export the drained 8-worker run's Prometheus snapshot next to
    // BENCH_results.json (uploaded as a CI artifact).
    let snapshot = &by_workers.last().expect("measured").1.metrics_text;
    let prom_path = ftsl_bench::results::default_path().with_file_name("METRICS_snapshot.prom");
    std::fs::write(&prom_path, snapshot).expect("write METRICS_snapshot.prom");
    println!("metrics snapshot written to {}", prom_path.display());

    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());

    // The gate. Plenty of cores: demand real parallel speedup. Starved
    // machines: demand the bookkeeping invariants that contention bugs
    // (double-serve, dropped tickets, miscounted lookups) would break.
    let qps_at = |want: usize| {
        by_workers
            .iter()
            .find(|(w, _)| *w == want)
            .map(|(_, o)| o.metrics.qps)
            .expect("measured")
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        let (q1, q4) = (qps_at(1), qps_at(4));
        assert!(
            q4 >= 2.0 * q1,
            "serve pool does not scale: {q4:.0} QPS at 4 workers vs {q1:.0} at 1 \
             ({:.2}x, need 2x)",
            q4 / q1,
        );
        println!(
            "load_serve/gate: 4-worker/1-worker QPS ratio {:.2}x (limit 2x)",
            q4 / q1
        );
    } else {
        for (workers, o) in &by_workers {
            assert_eq!(
                o.served_by_workers, o.metrics.requests,
                "w{workers}: per-worker served must sum to the request total"
            );
            assert_eq!(
                o.lookups, o.metrics.requests,
                "w{workers}: cache hits + misses must account for every lookup"
            );
        }
        println!(
            "load_serve/gate: {cores} core(s) — counter invariants verified \
             (served and lookup accounting exact at every worker count)"
        );
    }
}
