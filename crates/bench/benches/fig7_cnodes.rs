//! Figure 7: evaluation time vs. number of context nodes
//! (paper: 2 500 / 6 000 / 10 000; scaled 1:10 here to keep
//! `cargo bench` fast — the `figures` binary runs paper scale).

mod common;

use common::{criterion, run_point};
use criterion::{criterion_main, BenchmarkId};
use ftsl_bench::{build_env, EnvSpec, Series};
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let mut group = c.benchmark_group("fig7_cnodes");
    for cnodes in [250usize, 600, 1000] {
        let env = build_env(EnvSpec {
            cnodes,
            ..EnvSpec::small()
        });
        for series in Series::ALL {
            group.bench_with_input(BenchmarkId::new(series.label(), cnodes), &cnodes, |b, _| {
                b.iter(|| black_box(run_point(&env, series, 3, 2)))
            });
        }
    }
    group.finish();
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
