//! Positional-predicate benches on the Zipf corpus: ordered / distance /
//! window queries through the PPRED streaming engine, measured on every
//! physical serving configuration —
//!
//! * `decoded`: the decoded columnar layout (dual-resident index);
//! * `blocks`: the block-compressed layout (dual-resident index);
//! * `blocks_only`: the block layout on a *single-resident* index whose
//!   decoded views have been dropped (`Residency::BlocksOnly`) — the lean
//!   serving mode whose RAM footprint is the compressed size alone.

mod common;

use common::{bench_env, criterion};
use criterion::criterion_main;
use ftsl_bench::results::{measure, ResultsSink};
use ftsl_exec::build::IndexLayout;
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::Residency;
use ftsl_lang::{parse, Mode};
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let mut lean_index = env.index.clone();
    lean_index.set_residency(Residency::BlocksOnly);
    let mut group = c.benchmark_group("positional");

    let queries = [
        (
            "ordered",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND ordered(p1,p2))".to_string(),
        ),
        (
            "distance",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND distance(p1,p2,10))".to_string(),
        ),
        (
            "window3",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND window(p1,p2,15) \
             AND ordered(p1,p2))"
                .to_string(),
        ),
    ];

    for (name, query) in &queries {
        let surface = parse(query, Mode::Comp).expect("positional query parses");
        for (config, index, layout) in [
            ("decoded", &env.index, IndexLayout::Decoded),
            ("blocks", &env.index, IndexLayout::Blocks),
            ("blocks_only", &lean_index, IndexLayout::Blocks),
        ] {
            let options = ExecOptions {
                layout,
                ..Default::default()
            };
            let exec = Executor::with_options(&env.corpus, index, &env.registry, options);
            let surface = surface.clone();
            group.bench_function(format!("{name}_{config}"), move |b| {
                b.iter(|| {
                    black_box(
                        exec.run_surface(&surface, EngineKind::Ppred)
                            .expect("runs")
                            .nodes
                            .len(),
                    )
                })
            });
        }
    }

    group.finish();
}

/// Machine-readable medians + counters for the perf-trajectory file.
fn record_results() {
    let env = bench_env();
    let mut sink = ResultsSink::new("positional");
    let queries = [
        (
            "ordered",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND ordered(p1,p2))".to_string(),
        ),
        (
            "distance",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND distance(p1,p2,10))".to_string(),
        ),
        (
            "window3",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND window(p1,p2,15) \
             AND ordered(p1,p2))"
                .to_string(),
        ),
    ];
    for (name, query) in &queries {
        let surface = parse(query, Mode::Comp).expect("positional query parses");
        for (config, layout) in [
            ("decoded", IndexLayout::Decoded),
            ("blocks", IndexLayout::Blocks),
        ] {
            let options = ExecOptions {
                layout,
                ..Default::default()
            };
            let exec = Executor::with_options(&env.corpus, &env.index, &env.registry, options);
            let run = || exec.run_surface(&surface, EngineKind::Ppred).expect("runs");
            sink.record(
                &format!("{name}_{config}"),
                measure(30, || {
                    black_box(run());
                }),
                run().counters,
            );
        }
    }
    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
    record_results();
}

criterion_main!(benches);
