//! Positional-predicate benches on the Zipf corpus: ordered / distance /
//! window queries through the PPRED streaming engine, measured on every
//! physical serving configuration —
//!
//! * `decoded`: the decoded columnar layout (dual-resident index);
//! * `blocks`: the block-compressed layout (dual-resident index);
//! * `blocks_only`: the block layout on a *single-resident* index whose
//!   decoded views have been dropped (`Residency::BlocksOnly`) — the lean
//!   serving mode whose RAM footprint is the compressed size alone.
//!
//! The bench doubles as the **word-pair fast-path gate**: on a corpus
//! with planted adjacent and windowed co-occurrences, the ordered-phrase
//! and `window(15)+ordered` cores must resolve from the pair lists
//! bit-identically to the position-intersection oracle (`use_pairs:
//! false`) and beat it on wall clock. CI runs it in smoke mode
//! (`FTSL_BENCH_SMOKE=1`): the criterion grid is skipped, medians still
//! land in `BENCH_results.json`, and the gate runs with a looser ratio
//! for noisy shared runners.

mod common;

use common::{bench_env, criterion};
use criterion::criterion_main;
use ftsl_bench::results::{measure, smoke, ResultsSink};
use ftsl_exec::build::IndexLayout;
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::{IndexBuilder, Residency};
use ftsl_lang::{parse, Mode};
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let mut lean_index = env.index.clone();
    lean_index.set_residency(Residency::BlocksOnly);
    let mut group = c.benchmark_group("positional");

    let queries = [
        (
            "ordered",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND ordered(p1,p2))".to_string(),
        ),
        (
            "distance",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND distance(p1,p2,10))".to_string(),
        ),
        (
            "window3",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND window(p1,p2,15) \
             AND ordered(p1,p2))"
                .to_string(),
        ),
    ];

    for (name, query) in &queries {
        let surface = parse(query, Mode::Comp).expect("positional query parses");
        for (config, index, layout) in [
            ("decoded", &env.index, IndexLayout::Decoded),
            ("blocks", &env.index, IndexLayout::Blocks),
            ("blocks_only", &lean_index, IndexLayout::Blocks),
        ] {
            let options = ExecOptions {
                layout,
                ..Default::default()
            };
            let exec = Executor::with_options(&env.corpus, index, &env.registry, options);
            let surface = surface.clone();
            group.bench_function(format!("{name}_{config}"), move |b| {
                b.iter(|| {
                    black_box(
                        exec.run_surface(&surface, EngineKind::Ppred)
                            .expect("runs")
                            .nodes
                            .len(),
                    )
                })
            });
        }
    }

    group.finish();
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The pair-gate corpus: Zipf background plus planted co-occurrences of
/// `q0`/`q1`. Every document scatters three occurrences of each (both
/// posting lists reach full df, so the oracle's intersection and
/// position walks are maximally busy); every third document additionally
/// plants an adjacent `q0 q1`, so the ordered-phrase core has a
/// guaranteed non-empty answer.
fn pair_gate_corpus() -> Corpus {
    let mut state: u64 = 0xEDB7_2006;
    let mut texts = Vec::with_capacity(600);
    for d in 0..600usize {
        let mut words: Vec<String> = (0..130)
            .map(|_| {
                let u = (xorshift(&mut state) % 1024) as f64 / 1024.0;
                format!("t{}", ((u * u) * 800.0) as usize)
            })
            .collect();
        for _ in 0..3 {
            let at = (xorshift(&mut state) as usize) % words.len();
            words.insert(at, "q0".to_string());
            let at = (xorshift(&mut state) as usize) % words.len();
            words.insert(at, "q1".to_string());
        }
        if d % 3 == 0 {
            let at = (xorshift(&mut state) as usize) % words.len();
            words.insert(at, "q1".to_string());
            words.insert(at, "q0".to_string());
        }
        texts.push(words.join(" "));
    }
    Corpus::from_texts(&texts)
}

/// Regression gate for the word-pair fast path: the two proximity cores
/// the auxiliary index exists for — the ordered phrase (`ordered +
/// distance 0`) and `window(15) + ordered` — must (a) return node lists
/// bit-identical to the position-intersection oracle, (b) actually
/// engage the pair lists, and (c) beat the oracle's median by at least
/// `limit`x on the block layout. Full runs demand the 2x of the
/// acceptance bar; smoke runs (CI's shared runners, few reps) get a
/// looser ratio that still catches the fast path silently falling back.
fn record_pair_gate(sink: &mut ResultsSink) {
    let corpus = pair_gate_corpus();
    let index = IndexBuilder::new().build(&corpus);
    let registry = PredicateRegistry::with_builtins();
    let reps = if smoke() { 10 } else { 30 };
    let limit = if smoke() { 1.2 } else { 2.0 };
    let queries = [
        (
            "phrase",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND ordered(p1,p2) \
             AND distance(p1,p2,0))",
        ),
        (
            "window15_ordered",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND window(p1,p2,15) \
             AND ordered(p1,p2))",
        ),
    ];
    for (name, query) in queries {
        let surface = parse(query, Mode::Comp).expect("pair-gate query parses");
        let exec_with = |use_pairs: bool| {
            Executor::with_options(
                &corpus,
                &index,
                &registry,
                ExecOptions {
                    layout: IndexLayout::Blocks,
                    use_pairs,
                    ..Default::default()
                },
            )
        };
        let paired_exec = exec_with(true);
        let oracle_exec = exec_with(false);
        let paired = paired_exec
            .run_surface(&surface, EngineKind::Ppred)
            .expect("pair path runs");
        let oracle = oracle_exec
            .run_surface(&surface, EngineKind::Ppred)
            .expect("oracle runs");
        assert_eq!(
            paired.nodes, oracle.nodes,
            "pair path diverged from the intersection oracle on {name}"
        );
        assert!(!paired.nodes.is_empty(), "{name}: planted matches exist");
        assert!(
            paired.counters.pair_entries > 0,
            "{name}: pair path never engaged"
        );
        assert_eq!(
            oracle.counters.pair_entries, 0,
            "{name}: oracle touched pair lists"
        );
        let mp = measure(reps, || {
            black_box(
                paired_exec
                    .run_surface(&surface, EngineKind::Ppred)
                    .expect("runs"),
            );
        });
        let mo = measure(reps, || {
            black_box(
                oracle_exec
                    .run_surface(&surface, EngineKind::Ppred)
                    .expect("runs"),
            );
        });
        sink.record(&format!("{name}_pairs"), mp, paired.counters);
        sink.record(&format!("{name}_oracle"), mo, oracle.counters);
        let speedup = mo.us / mp.us;
        assert!(
            speedup >= limit,
            "pair-path regression: {name} via pair lists took {:.3}µs vs \
             {:.3}µs by position intersection ({speedup:.2}x, limit {limit}x)",
            mp.us,
            mo.us,
        );
        println!("positional/gate: {name} pair path {speedup:.2}x faster (limit {limit}x)");
    }
}

/// Machine-readable medians + counters for the perf-trajectory file.
fn record_results() {
    let env = bench_env();
    let mut sink = ResultsSink::new("positional");
    let reps = if smoke() { 10 } else { 30 };
    let queries = [
        (
            "ordered",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND ordered(p1,p2))".to_string(),
        ),
        (
            "distance",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND distance(p1,p2,10))".to_string(),
        ),
        (
            "window3",
            "SOME p1 SOME p2 (p1 HAS 'q0' AND p2 HAS 'q1' AND window(p1,p2,15) \
             AND ordered(p1,p2))"
                .to_string(),
        ),
    ];
    for (name, query) in &queries {
        let surface = parse(query, Mode::Comp).expect("positional query parses");
        for (config, layout) in [
            ("decoded", IndexLayout::Decoded),
            ("blocks", IndexLayout::Blocks),
        ] {
            let options = ExecOptions {
                layout,
                ..Default::default()
            };
            let exec = Executor::with_options(&env.corpus, &env.index, &env.registry, options);
            let run = || exec.run_surface(&surface, EngineKind::Ppred).expect("runs");
            sink.record(
                &format!("{name}_{config}"),
                measure(reps, || {
                    black_box(run());
                }),
                run().counters,
            );
        }
    }
    record_pair_gate(&mut sink);
    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());
}

fn benches() {
    // Smoke mode (CI) skips the criterion timing grid but still records
    // medians and runs the pair-path gate — same shape as batch_decode.
    if !smoke() {
        let mut c = criterion();
        bench(&mut c);
    }
    record_results();
}

criterion_main!(benches);
