//! Live-index churn: query cost vs segment count and delete ratio, plus the
//! cost (and payoff) of a full merge.
//!
//! The grid: segment counts {1, 4, 16} × tombstone ratios {0%, 10%, 50%}
//! over a skewed Zipf corpus, measuring the BOOL conjunction
//! `'rare' AND 'common'` and the streaming top-10 TF-IDF union
//! `'rare' OR 'common'` through a snapshot, with the decoded-entry counters
//! printed alongside wall-clock (segmentation shows up as extra decoded
//! entries: per-segment lists restart the skip structure, and tombstoned
//! entries are decoded just to be filtered). A one-shot section times
//! `merge_all` and re-measures the merged index against a fresh monolithic
//! build over the same live documents — the "post-merge within ~10% of
//! fresh" acceptance number.

mod common;

use common::criterion;
use criterion::criterion_main;
use ftsl_bench::results::{measure, smoke, ResultsSink};
use ftsl_corpus::SynthConfig;
use ftsl_exec::engine::{EngineKind, ExecOptions};
use ftsl_exec::snapshot::SnapshotExecutor;
use ftsl_exec::{ScoreModel, ScoredTopK};
use ftsl_index::{LiveConfig, LiveIndex, Snapshot};
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::SnapshotStats;
use std::hint::black_box;
use std::time::Instant;

const CNODES: usize = 4000;

fn zipf_texts() -> Vec<String> {
    let corpus = SynthConfig {
        cnodes: CNODES,
        vocabulary: 1500,
        tokens_per_doc: 60,
        ..SynthConfig::default()
    }
    .plant("rare", 0.02, 4)
    .plant("common", 0.6, 1)
    .build();
    let interner = corpus.interner();
    corpus
        .documents()
        .iter()
        .map(|doc| {
            doc.tokens
                .iter()
                .map(|&(t, _)| interner.name(t))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// Build a live index with `segments` equal flushes and every `1/ratio`-th
/// document tombstoned (ratio 0 = no deletes). Background merging is off so
/// the segment count under test stays put.
fn build_live(texts: &[String], segments: usize, delete_every: usize) -> LiveIndex {
    let live = LiveIndex::with_config(LiveConfig {
        background_merge: false,
        flush_threshold: usize::MAX,
        ..LiveConfig::default()
    });
    let chunk = texts.len().div_ceil(segments);
    for (i, text) in texts.iter().enumerate() {
        live.add_document(text);
        if (i + 1) % chunk == 0 {
            live.flush();
        }
    }
    live.flush();
    if delete_every > 0 {
        for i in (0..texts.len()).step_by(delete_every) {
            live.delete_node(NodeId(i as u32));
        }
    }
    live
}

fn run_bool(snapshot: &Snapshot, reg: &PredicateRegistry) -> (usize, u64) {
    let exec = SnapshotExecutor::new(snapshot, reg);
    let out = exec
        .run_str("'rare' AND 'common'", EngineKind::Auto)
        .expect("bool runs");
    (out.nodes.len(), out.counters.entries)
}

fn run_topk(snapshot: &Snapshot, reg: &PredicateRegistry, stats: &SnapshotStats) -> (usize, u64) {
    let q = ftsl_lang::parse("'rare' OR 'common'", ftsl_lang::Mode::Comp).expect("parse");
    let model = stats.tfidf_model(&["rare", "common"], snapshot);
    let exec = SnapshotExecutor::with_options(snapshot, reg, ExecOptions::default());
    let out = exec
        .run_top_k(&q, ScoredTopK { k: 10 }, stats, &ScoreModel::TfIdf(&model))
        .expect("topk runs");
    (out.hits.len(), out.counters.entries)
}

fn bench_churn(c: &mut criterion::Criterion) {
    let texts = zipf_texts();
    let reg = PredicateRegistry::with_builtins();
    let mut group = c.benchmark_group("live_churn");

    for &segments in &[1usize, 4, 16] {
        for &(ratio_label, delete_every) in &[("d0", 0usize), ("d10", 10), ("d50", 2)] {
            let live = build_live(&texts, segments, delete_every);
            let snapshot = live.snapshot();
            let stats = SnapshotStats::compute(&snapshot);
            group.bench_function(format!("bool_s{segments}_{ratio_label}"), |b| {
                b.iter(|| black_box(run_bool(&snapshot, &reg)).0)
            });
            group.bench_function(format!("topk10_s{segments}_{ratio_label}"), |b| {
                b.iter(|| black_box(run_topk(&snapshot, &reg, &stats)).0)
            });
            let (_, bool_entries) = run_bool(&snapshot, &reg);
            let (_, topk_entries) = run_topk(&snapshot, &reg, &stats);
            println!(
                "live_churn/counters segments={segments} {ratio_label}: \
                 bool {bool_entries} entries, topk10 {topk_entries} entries, \
                 {} tombstones over {} docs",
                snapshot.tombstone_count(),
                CNODES,
            );
        }
    }
    group.finish();

    // ── one-shot: full-merge cost and the post-merge payoff ─────────────
    let live = build_live(&texts, 16, 10);
    let t0 = Instant::now();
    live.merge_all();
    let merge_cost = t0.elapsed();
    let merged_snapshot = live.snapshot();
    println!(
        "live_churn/merge: 16 segments @10% deletes -> 1 segment in {merge_cost:?} \
         ({} live docs)",
        merged_snapshot.live_doc_count(),
    );

    // Fresh monolithic build over the same live documents.
    let survivor_texts: Vec<String> = (0..texts.len())
        .filter(|i| i % 10 != 0)
        .map(|i| texts[i].clone())
        .collect();
    let fresh = LiveIndex::from_corpus_with(
        Corpus::from_texts(&survivor_texts),
        LiveConfig {
            background_merge: false,
            ..LiveConfig::default()
        },
    );
    let fresh_snapshot = fresh.snapshot();
    let fresh_stats = SnapshotStats::compute(&fresh_snapshot);
    let merged_stats = SnapshotStats::compute(&merged_snapshot);

    let mut group = c.benchmark_group("live_churn_postmerge");
    group.bench_function("bool_merged", |b| {
        b.iter(|| black_box(run_bool(&merged_snapshot, &reg)).0)
    });
    group.bench_function("bool_fresh", |b| {
        b.iter(|| black_box(run_bool(&fresh_snapshot, &reg)).0)
    });
    group.bench_function("topk10_merged", |b| {
        b.iter(|| black_box(run_topk(&merged_snapshot, &reg, &merged_stats)).0)
    });
    group.bench_function("topk10_fresh", |b| {
        b.iter(|| black_box(run_topk(&fresh_snapshot, &reg, &fresh_stats)).0)
    });
    group.finish();

    let (merged_hits, merged_entries) = run_bool(&merged_snapshot, &reg);
    let (fresh_hits, fresh_entries) = run_bool(&fresh_snapshot, &reg);
    assert_eq!(merged_hits, fresh_hits, "merged and fresh must agree");
    println!(
        "live_churn/postmerge counters: bool merged {merged_entries} vs fresh \
         {fresh_entries} entries (equal work = equal index shape)",
    );
}

/// Machine-readable medians + counters for the perf-trajectory file:
/// the BOOL conjunction and streaming top-10 at 1/4/16 segments (no
/// deletes — the ratio grid stays in the human-readable output).
fn record_results() {
    let texts = zipf_texts();
    let reg = PredicateRegistry::with_builtins();
    let mut sink = ResultsSink::new("live_churn");
    let reps = if smoke() { 10 } else { 30 };
    let mut topk_medians: Vec<(usize, f64)> = Vec::new();
    for &segments in &[1usize, 4, 16] {
        let live = build_live(&texts, segments, 0);
        let snapshot = live.snapshot();
        let stats = SnapshotStats::compute(&snapshot);
        let exec = SnapshotExecutor::new(&snapshot, &reg);
        let bool_out = || {
            exec.run_str("'rare' AND 'common'", EngineKind::Auto)
                .expect("bool runs")
        };
        sink.record(
            &format!("bool_s{segments}"),
            measure(reps, || {
                black_box(bool_out());
            }),
            bool_out().counters,
        );
        let q = ftsl_lang::parse("'rare' OR 'common'", ftsl_lang::Mode::Comp).expect("parse");
        let model = stats.tfidf_model(&["rare", "common"], &snapshot);
        let texec = SnapshotExecutor::with_options(&snapshot, &reg, ExecOptions::default());
        let topk_out = || {
            texec
                .run_top_k(&q, ScoredTopK { k: 10 }, &stats, &ScoreModel::TfIdf(&model))
                .expect("topk runs")
        };
        let topk = measure(reps, || {
            black_box(topk_out());
        });
        sink.record(&format!("topk10_s{segments}"), topk, topk_out().counters);
        topk_medians.push((segments, topk.us));
    }
    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());
    assert_topk_scaling(&topk_medians);
}

/// Regression gate for global top-k pruning: streaming top-10 over 16
/// segments must cost at most 2x the single-segment run. The per-segment
/// heap baseline sat around 8x (9.2µs → 75.1µs); the shared heap plus
/// whole-segment skipping is what holds the ratio down, so a failure here
/// means the global threshold stopped propagating across segments. Smoke
/// runs (CI's shared runners, few reps) get a looser ceiling — the gate
/// still catches a return to 8x, without flaking on scheduler noise.
fn assert_topk_scaling(medians: &[(usize, f64)]) {
    let at = |want: usize| {
        medians
            .iter()
            .find(|&&(segments, _)| segments == want)
            .map(|&(_, us)| us)
            .expect("median recorded for segment count")
    };
    let (s1, s16) = (at(1), at(16));
    let limit = if smoke() { 4.0 } else { 2.0 };
    assert!(
        s16 <= limit * s1,
        "global top-k regression: topk10 at 16 segments took {s16:.3}µs vs \
         {s1:.3}µs at 1 segment ({:.2}x, limit {limit}x)",
        s16 / s1,
    );
    println!(
        "live_churn/gate: topk10 16-segment/1-segment ratio {:.2}x (limit {limit}x)",
        s16 / s1,
    );
}

fn benches() {
    // Smoke mode (CI) skips the criterion timing grid but still records
    // medians and runs the scaling gate — same shape as batch_decode.
    if !smoke() {
        let mut c = criterion();
        bench_churn(&mut c);
    }
    record_results();
}

criterion_main!(benches);
