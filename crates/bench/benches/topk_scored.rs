//! Streaming top-k scored retrieval vs the exhaustive scored pass, on a
//! skewed Zipf corpus (`'rare' OR 'common'`): wall-clock for k ∈ {10, 100}
//! on both physical layouts, plus a one-shot report of the access counters
//! showing the fraction of entries the pruned union actually decodes.

mod common;

use common::criterion;
use criterion::criterion_main;
use ftsl_bench::results::{measure, ResultsSink};
use ftsl_corpus::SynthConfig;
use ftsl_index::{IndexBuilder, IndexLayout, InvertedIndex};
use ftsl_model::Corpus;
use ftsl_scoring::classic::classic_tfidf;
use ftsl_scoring::{topk_pra_disjunction, topk_tfidf, PraModel, ScoreStats, TfIdfModel};
use std::hint::black_box;

/// The micro_cursors skewed regime, scaled up a little so pruning has room
/// to pay: one rare high-impact token, one very common low-impact one.
fn skewed_env() -> (Corpus, InvertedIndex, ScoreStats) {
    let config = SynthConfig {
        cnodes: 6000,
        vocabulary: 2000,
        tokens_per_doc: 80,
        ..SynthConfig::default()
    }
    .plant("rare", 0.02, 4)
    .plant("common", 0.7, 1);
    let corpus = config.build();
    let index = IndexBuilder::new().build(&corpus);
    let stats = ScoreStats::compute(&corpus, &index);
    (corpus, index, stats)
}

fn bench_topk(c: &mut criterion::Criterion) {
    let (corpus, index, stats) = skewed_env();
    let tokens = ["rare", "common"];
    let tfidf = TfIdfModel::for_query(&tokens, &corpus, &stats);
    let pra = PraModel::new(&corpus, &stats);
    let mut group = c.benchmark_group("topk_scored");

    // Exhaustive baselines: score everything, sort, truncate.
    group.bench_function("exhaustive_classic_tfidf", |b| {
        b.iter(|| black_box(classic_tfidf(&tokens, &corpus, &stats, &tfidf)).len())
    });

    for k in [10usize, 100] {
        for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
            let tag = match layout {
                IndexLayout::Decoded => "decoded",
                IndexLayout::Blocks => "blocks",
            };
            group.bench_function(format!("tfidf_topk{k}_{tag}"), |b| {
                b.iter(|| {
                    black_box(topk_tfidf(
                        &tokens, &corpus, &index, &stats, &tfidf, layout, k,
                    ))
                    .hits
                    .len()
                })
            });
            group.bench_function(format!("pra_topk{k}_{tag}"), |b| {
                b.iter(|| {
                    black_box(topk_pra_disjunction(
                        &tokens, &corpus, &index, &stats, &pra, layout, k,
                    ))
                    .hits
                    .len()
                })
            });
        }
    }
    group.finish();

    // Counter report (machine-independent): what fraction of the exhaustive
    // decode work the pruned union performs.
    let total: u64 = tokens
        .iter()
        .filter_map(|t| corpus.token_id(t))
        .map(|id| index.list(id).num_entries() as u64)
        .sum();
    for k in [10usize, 100] {
        for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
            let out = topk_tfidf(&tokens, &corpus, &index, &stats, &tfidf, layout, k);
            println!(
                "topk_scored/counters tfidf k={k} {layout:?}: decoded {} / {} entries \
                 ({} skipped, {} blocks pruned)",
                out.counters.entries, total, out.counters.skipped, out.counters.blocks_skipped
            );
        }
    }
}

/// Machine-readable medians + counters for the perf-trajectory file.
fn record_results() {
    let (corpus, index, stats) = skewed_env();
    let tokens = ["rare", "common"];
    let tfidf = TfIdfModel::for_query(&tokens, &corpus, &stats);
    let pra = PraModel::new(&corpus, &stats);
    let mut sink = ResultsSink::new("topk_scored");
    for k in [10usize, 100] {
        for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
            let tag = match layout {
                IndexLayout::Decoded => "decoded",
                IndexLayout::Blocks => "blocks",
            };
            let run = || topk_tfidf(&tokens, &corpus, &index, &stats, &tfidf, layout, k);
            sink.record(
                &format!("tfidf_topk{k}_{tag}"),
                measure(30, || {
                    black_box(run());
                }),
                run().counters,
            );
            if k == 10 {
                let run =
                    || topk_pra_disjunction(&tokens, &corpus, &index, &stats, &pra, layout, k);
                sink.record(
                    &format!("pra_topk{k}_{tag}"),
                    measure(30, || {
                        black_box(run());
                    }),
                    run().counters,
                );
            }
        }
    }
    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());
}

fn benches() {
    let mut c = criterion();
    bench_topk(&mut c);
    record_results();
}

criterion_main!(benches);
