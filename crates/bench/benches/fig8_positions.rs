//! Figure 8: evaluation time vs. positions per inverted-list entry
//! (paper: ≤5 / 25 / 125; scaled to 2 / 6 / 18 for `cargo bench`).

mod common;

use common::{criterion, run_point};
use criterion::{criterion_main, BenchmarkId};
use ftsl_bench::{build_env, EnvSpec, Series};
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let mut group = c.benchmark_group("fig8_positions");
    for occ in [2usize, 6, 18] {
        let env = build_env(EnvSpec {
            occurrences: occ,
            ..EnvSpec::small()
        });
        for series in Series::ALL {
            group.bench_with_input(BenchmarkId::new(series.label(), occ), &occ, |b, _| {
                b.iter(|| black_box(run_point(&env, series, 3, 2)))
            });
        }
    }
    group.finish();
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
