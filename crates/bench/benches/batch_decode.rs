//! Batch block decode: the v5 bit-packed frame-of-reference layout against
//! the decoded columnar baseline, plus the compressed-size regression gate.
//!
//! Cases measured (medians + counters land in `BENCH_results.json`):
//!
//! * `scan_common_{decoded,blocks}` — full-list entry walk of the dense
//!   planted token on the 4000-node Zipf corpus (the `scan_common` regime
//!   of `micro_cursors`, measured through the raw cursors);
//! * `seek_sparse_{decoded,blocks}` — a rare list driving seeks into the
//!   dense list (whole-block skipping vs galloping);
//! * `scan_positions_{decoded,blocks}` — entry walk reading the first
//!   position of every entry (the PPRED access shape);
//! * `unpack_frame` — raw [`ftsl_index::bitpack::unpack`] throughput.
//!
//! The bench also records the corpus' compressed size and **fails loudly**
//! (non-zero exit) if it regresses more than 10% over the v4 varint
//! baseline pinned in `fixtures/v4_baseline.json` — CI runs this bench in
//! smoke mode (`FTSL_BENCH_SMOKE=1`) to enforce exactly that gate.

mod common;

use common::criterion;
use criterion::criterion_main;
use ftsl_bench::results::{measure, smoke, ResultsSink};
use ftsl_bench::{build_env, EnvSpec};
use ftsl_corpus::SynthConfig;
use ftsl_index::{bitpack, IndexBuilder, InvertedIndex, ListCursor};
use ftsl_model::{Corpus, NodeId};
use std::hint::black_box;

/// The `micro_cursors` skewed regime: one rare, one dense planted token.
fn skewed_env() -> (Corpus, InvertedIndex) {
    let config = SynthConfig {
        cnodes: 4000,
        vocabulary: 2000,
        tokens_per_doc: 80,
        ..SynthConfig::default()
    }
    .plant("rare", 0.005, 2)
    .plant("common", 0.7, 3);
    let corpus = config.build();
    let index = IndexBuilder::new().build(&corpus);
    (corpus, index)
}

/// The `topk_scored` skewed regime (6000 nodes).
fn topk_env() -> InvertedIndex {
    let config = SynthConfig {
        cnodes: 6000,
        vocabulary: 2000,
        tokens_per_doc: 80,
        ..SynthConfig::default()
    }
    .plant("rare", 0.02, 4)
    .plant("common", 0.7, 1);
    IndexBuilder::new().build(&config.build())
}

/// Parse `fixtures/v4_baseline.json` (compiled in, so the gate cannot
/// silently vanish when the working directory moves).
fn baselines() -> Vec<(String, u64)> {
    let text = include_str!("../fixtures/v4_baseline.json");
    let mut out = Vec::new();
    for part in text.split("{ \"corpus\":").skip(1) {
        let name = part.split('"').nth(1).expect("corpus name").to_string();
        let bytes: u64 = part
            .split("\"v4_compressed_bytes\":")
            .nth(1)
            .and_then(|s| {
                s.trim_start()
                    .split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse()
                    .ok()
            })
            .expect("baseline bytes");
        out.push((name, bytes));
    }
    assert!(!out.is_empty(), "no baselines parsed from fixture");
    out
}

/// The compressed-size regression gate: each corpus must stay within +10%
/// of its pinned v4 size (`micro` is the already-built 4000-node index —
/// the bench passes its own in rather than rebuilding the corpus).
/// Returns the measured sizes for the results file.
fn size_gate(micro: &InvertedIndex) -> Vec<(String, u64)> {
    let topk = topk_env();
    let small = build_env(EnvSpec::small()).index;
    let measured: Vec<(String, u64)> = vec![
        (
            "micro_skewed_zipf_4000".into(),
            micro.compressed_bytes() as u64,
        ),
        (
            "topk_skewed_zipf_6000".into(),
            topk.compressed_bytes() as u64,
        ),
        ("bench_env_small".into(), small.compressed_bytes() as u64),
    ];
    for (corpus, v4_bytes) in baselines() {
        let (_, &(_, v5_bytes)) = measured
            .iter()
            .enumerate()
            .find(|(_, (name, _))| *name == corpus)
            .unwrap_or_else(|| panic!("no measurement for baseline corpus {corpus}"));
        let limit = v4_bytes + v4_bytes / 10;
        println!(
            "size gate: {corpus}: v5 {v5_bytes} B vs v4 {v4_bytes} B \
             ({:+.1}%, limit {limit})",
            100.0 * (v5_bytes as f64 - v4_bytes as f64) / v4_bytes as f64,
        );
        assert!(
            v5_bytes <= limit,
            "compressed-size regression on {corpus}: v5 {v5_bytes} B exceeds \
             110% of the v4 baseline {v4_bytes} B"
        );
    }
    measured
}

fn bench(c: &mut criterion::Criterion) {
    let (corpus, index) = skewed_env();
    let rare = corpus.token_id("rare").expect("planted");
    let common = corpus.token_id("common").expect("planted");
    let reps = if smoke() { 5 } else { 50 };
    let mut sink = ResultsSink::new("batch_decode");
    let mut group = c.benchmark_group("batch_decode");

    // -- full-list scans ---------------------------------------------------
    let scan_blocks = || {
        let mut cur = index.block_list(common).cursor();
        let mut n = 0u64;
        while let Some(node) = cur.next_entry() {
            n += u64::from(node.0);
        }
        black_box(n);
        cur.counters()
    };
    let scan_decoded = || {
        let mut cur = ListCursor::new(index.list(common));
        let mut n = 0u64;
        while let Some(node) = cur.next_entry() {
            n += u64::from(node.0);
        }
        black_box(n);
        cur.counters()
    };
    if !smoke() {
        group.bench_function("scan_common_blocks", |b| b.iter(scan_blocks));
        group.bench_function("scan_common_decoded", |b| b.iter(scan_decoded));
    }
    sink.record(
        "scan_common_blocks",
        measure(reps, || {
            scan_blocks();
        }),
        scan_blocks(),
    );
    sink.record(
        "scan_common_decoded",
        measure(reps, || {
            scan_decoded();
        }),
        scan_decoded(),
    );

    // -- sparse seeks ------------------------------------------------------
    let targets: Vec<NodeId> = index.list(rare).node_ids().to_vec();
    let seek_blocks = || {
        let mut cur = index.block_list(common).cursor();
        let mut n = 0u64;
        for &t in &targets {
            if let Some(node) = cur.seek(t) {
                n += u64::from(node.0);
            }
        }
        black_box(n);
        cur.counters()
    };
    let seek_decoded = || {
        let mut cur = ListCursor::new(index.list(common));
        let mut n = 0u64;
        for &t in &targets {
            if let Some(node) = cur.seek(t) {
                n += u64::from(node.0);
            }
        }
        black_box(n);
        cur.counters()
    };
    if !smoke() {
        group.bench_function("seek_sparse_blocks", |b| b.iter(seek_blocks));
        group.bench_function("seek_sparse_decoded", |b| b.iter(seek_decoded));
    }
    sink.record(
        "seek_sparse_blocks",
        measure(reps, || {
            seek_blocks();
        }),
        seek_blocks(),
    );
    sink.record(
        "seek_sparse_decoded",
        measure(reps, || {
            seek_decoded();
        }),
        seek_decoded(),
    );

    // -- entry walk + first position (the PPRED shape) ---------------------
    let pos_blocks = || {
        let mut cur = index.block_list(common).cursor();
        let mut n = 0u64;
        while cur.next_entry().is_some() {
            n += u64::from(cur.position().map_or(0, |p| p.offset));
        }
        black_box(n);
        cur.counters()
    };
    let pos_decoded = || {
        let mut cur = ListCursor::new(index.list(common));
        let mut n = 0u64;
        while cur.next_entry().is_some() {
            n += u64::from(cur.position().map_or(0, |p| p.offset));
        }
        black_box(n);
        cur.counters()
    };
    if !smoke() {
        group.bench_function("scan_positions_blocks", |b| b.iter(pos_blocks));
        group.bench_function("scan_positions_decoded", |b| b.iter(pos_decoded));
    }
    sink.record(
        "scan_positions_blocks",
        measure(reps, || {
            pos_blocks();
        }),
        pos_blocks(),
    );
    sink.record(
        "scan_positions_decoded",
        measure(reps, || {
            pos_decoded();
        }),
        pos_decoded(),
    );

    // -- raw frame unpack throughput --------------------------------------
    let values: [u32; bitpack::LANES] = std::array::from_fn(|i| (i as u32) & 0x1ff);
    let mut packed = Vec::new();
    bitpack::pack(&values, bitpack::LANES, 9, &mut packed);
    let mut out = [0u32; bitpack::LANES];
    let unpack_case = {
        let packed = packed.clone();
        move |out: &mut [u32; bitpack::LANES]| {
            for _ in 0..100 {
                bitpack::unpack(black_box(&packed), 9, bitpack::LANES, out);
                black_box(&out);
            }
        }
    };
    if !smoke() {
        group.bench_function("unpack_frame_x100", |b| b.iter(|| unpack_case(&mut out)));
    }
    sink.record(
        "unpack_frame_x100",
        measure(reps, || unpack_case(&mut out)),
        Default::default(),
    );
    group.finish();

    // -- sizes + the regression gate ---------------------------------------
    for (corpus, bytes) in size_gate(&index) {
        sink.record_bytes(&format!("compressed_bytes_{corpus}"), bytes);
    }

    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
