//! Figure 6: evaluation time vs. number of predicates (0–4, toks_Q = 3).

mod common;

use common::{bench_env, criterion, run_point};
use criterion::{criterion_main, BenchmarkId};
use ftsl_bench::Series;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let mut group = c.benchmark_group("fig6_predicates");
    for preds in 0..=4usize {
        for series in Series::ALL {
            group.bench_with_input(
                BenchmarkId::new(series.label(), preds),
                &preds,
                |b, &preds| b.iter(|| black_box(run_point(&env, series, 3, preds))),
            );
        }
    }
    group.finish();
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
