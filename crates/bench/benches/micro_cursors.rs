//! Micro-benchmarks of the streaming substrate: inverted-list cursor scans,
//! joins, and positive-predicate selections.

mod common;

use common::{bench_env, criterion};
use criterion::criterion_main;
use ftsl_exec::cursor::{FtCursor, ScanCursor};
use ftsl_exec::join::JoinCursor;
use ftsl_exec::select::SelectCursor;
use ftsl_predicates::AdvanceMode;
use std::hint::black_box;

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let q0 = env.corpus.token_id("q0").expect("planted");
    let q1 = env.corpus.token_id("q1").expect("planted");
    let mut group = c.benchmark_group("micro_cursors");

    group.bench_function("scan_token_list", |b| {
        b.iter(|| {
            let mut scan = ScanCursor::new(env.index.list(q0));
            let mut n = 0usize;
            while scan.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.bench_function("join_two_lists", |b| {
        b.iter(|| {
            let mut join = JoinCursor::new(
                Box::new(ScanCursor::new(env.index.list(q0))),
                Box::new(ScanCursor::new(env.index.list(q1))),
            );
            let mut n = 0usize;
            while join.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.bench_function("distance_selection", |b| {
        let pred = env.registry.get_shared(env.registry.lookup("distance").unwrap());
        b.iter(|| {
            let join = JoinCursor::new(
                Box::new(ScanCursor::new(env.index.list(q0))),
                Box::new(ScanCursor::new(env.index.list(q1))),
            );
            let mut sel = SelectCursor::positive(
                Box::new(join),
                pred.clone(),
                vec![0, 1],
                vec![10],
                AdvanceMode::Aggressive,
            );
            let mut n = 0usize;
            while sel.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.finish();
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
}

criterion_main!(benches);
