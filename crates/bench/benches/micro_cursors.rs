//! Micro-benchmarks of the streaming substrate: inverted-list cursor scans,
//! joins, positive-predicate selections, and the block-compressed + seek
//! layout against the seed's sequential decoded layout.

mod common;

use common::{bench_env, criterion};
use criterion::criterion_main;
use ftsl_bench::results::{measure, median_micros, Measurement, ResultsSink, INNER_RUNS};
use ftsl_corpus::SynthConfig;
use ftsl_exec::bool_eval::{intersect_seek, intersect_sorted};
use ftsl_exec::cursor::{BlockScanCursor, FtCursor, ScanCursor};
use ftsl_exec::join::JoinCursor;
use ftsl_exec::select::SelectCursor;
use ftsl_index::{IndexBuilder, InvertedIndex};
use ftsl_model::Corpus;
use ftsl_predicates::AdvanceMode;
use std::hint::black_box;

/// One rare and one common planted token over a Zipf background: the skewed
/// regime where seek-driven conjunction beats lock-step scanning.
fn skewed_env() -> (Corpus, InvertedIndex) {
    let config = SynthConfig {
        cnodes: 4000,
        vocabulary: 2000,
        tokens_per_doc: 80,
        ..SynthConfig::default()
    }
    .plant("rare", 0.005, 2)
    .plant("common", 0.7, 3);
    let corpus = config.build();
    let index = IndexBuilder::new().build(&corpus);
    (corpus, index)
}

fn bench_skewed(c: &mut criterion::Criterion) {
    let (corpus, index) = skewed_env();
    let rare = corpus.token_id("rare").expect("planted");
    let common = corpus.token_id("common").expect("planted");
    let mut group = c.benchmark_group("micro_cursors_skewed");

    // Seed layout / seed strategy: decode both lists, lock-step merge.
    group.bench_function("intersect_lockstep_merge", |b| {
        b.iter(|| {
            black_box(intersect_sorted(
                index.list(rare).node_ids(),
                index.list(common).node_ids(),
            ))
        })
    });

    // Seek strategy on the decoded layout: gallop the common list.
    group.bench_function("intersect_seek_rarest", |b| {
        b.iter(|| black_box(intersect_seek(&[index.list(rare), index.list(common)])))
    });

    // Streaming joins, decoded vs block-compressed leaves.
    group.bench_function("join_rare_common_decoded", |b| {
        b.iter(|| {
            let mut join = JoinCursor::new(
                Box::new(ScanCursor::new(index.list(rare))),
                Box::new(ScanCursor::new(index.list(common))),
            );
            let mut n = 0usize;
            while join.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.bench_function("join_rare_common_blocks", |b| {
        b.iter(|| {
            let mut join = JoinCursor::new(
                Box::new(BlockScanCursor::new(index.block_list(rare))),
                Box::new(BlockScanCursor::new(index.block_list(common))),
            );
            let mut n = 0usize;
            while join.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    // Full-list decode throughput: flat slices vs varint blocks.
    group.bench_function("scan_common_decoded", |b| {
        b.iter(|| {
            let mut scan = ScanCursor::new(index.list(common));
            let mut n = 0usize;
            while scan.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.bench_function("scan_common_blocks", |b| {
        b.iter(|| {
            let mut scan = BlockScanCursor::new(index.block_list(common));
            let mut n = 0usize;
            while scan.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.finish();
}

fn bench(c: &mut criterion::Criterion) {
    let env = bench_env();
    let q0 = env.corpus.token_id("q0").expect("planted");
    let q1 = env.corpus.token_id("q1").expect("planted");
    let mut group = c.benchmark_group("micro_cursors");

    group.bench_function("scan_token_list", |b| {
        b.iter(|| {
            let mut scan = ScanCursor::new(env.index.list(q0));
            let mut n = 0usize;
            while scan.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.bench_function("join_two_lists", |b| {
        b.iter(|| {
            let mut join = JoinCursor::new(
                Box::new(ScanCursor::new(env.index.list(q0))),
                Box::new(ScanCursor::new(env.index.list(q1))),
            );
            let mut n = 0usize;
            while join.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.bench_function("distance_selection", |b| {
        let pred = env
            .registry
            .get_shared(env.registry.lookup("distance").unwrap());
        b.iter(|| {
            let join = JoinCursor::new(
                Box::new(ScanCursor::new(env.index.list(q0))),
                Box::new(ScanCursor::new(env.index.list(q1))),
            );
            let mut sel = SelectCursor::positive(
                Box::new(join),
                pred.clone(),
                vec![0, 1],
                vec![10],
                AdvanceMode::Aggressive,
            );
            let mut n = 0usize;
            while sel.advance_node().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    group.finish();
}

/// Machine-readable medians + counters for the perf-trajectory file, and
/// the counting-overhead gate: walking the block cursor with its access
/// counters must cost under 5% over the identical counter-less walk.
fn record_results() {
    let (corpus, index) = skewed_env();
    let rare = corpus.token_id("rare").expect("planted");
    let common = corpus.token_id("common").expect("planted");
    let mut sink = ResultsSink::new("micro_cursors");

    let scan = |counted: bool| {
        let mut cur = index.block_list(common).cursor();
        let mut n = 0u64;
        if counted {
            while let Some(node) = cur.next_entry() {
                n += u64::from(node.0);
            }
        } else {
            while let Some(node) = cur.next_entry_uncounted() {
                n += u64::from(node.0);
            }
        }
        black_box(n);
        cur.counters()
    };
    sink.record(
        "scan_common_blocks",
        measure(50, || {
            scan(true);
        }),
        scan(true),
    );
    let scan_decoded = || {
        let mut c = ftsl_index::ListCursor::new(index.list(common));
        let mut n = 0u64;
        while let Some(node) = c.next_entry() {
            n += u64::from(node.0);
        }
        black_box(n);
        c.counters()
    };
    sink.record(
        "scan_common_decoded",
        measure(50, || {
            scan_decoded();
        }),
        scan_decoded(),
    );

    let join_blocks = || {
        let mut join = JoinCursor::new(
            Box::new(BlockScanCursor::new(index.block_list(rare))),
            Box::new(BlockScanCursor::new(index.block_list(common))),
        );
        let mut n = 0usize;
        while join.advance_node().is_some() {
            n += 1;
        }
        black_box(n);
        join.counters()
    };
    sink.record(
        "join_rare_common_blocks",
        measure(50, || {
            join_blocks();
        }),
        join_blocks(),
    );
    let join_decoded = || {
        let mut join = JoinCursor::new(
            Box::new(ScanCursor::new(index.list(rare))),
            Box::new(ScanCursor::new(index.list(common))),
        );
        let mut n = 0usize;
        while join.advance_node().is_some() {
            n += 1;
        }
        black_box(n);
        join.counters()
    };
    sink.record(
        "join_rare_common_decoded",
        measure(50, || {
            join_decoded();
        }),
        join_decoded(),
    );

    // Counting-overhead gate: best-of medians to shrug off background
    // load, then assert the counted walk stays within 5% (+0.2 µs
    // measurement slack) of the counter-less walk.
    let best_of = |counted: bool| {
        (0..8)
            .map(|_| {
                median_micros(25, || {
                    scan(counted);
                })
            })
            .fold(f64::MAX, f64::min)
    };
    let counted_us = best_of(true);
    let uncounted_us = best_of(false);
    let gate_runs = (8 * 25 * INNER_RUNS) as u32;
    let gate = |us| Measurement {
        us,
        runs: gate_runs,
    };
    sink.record("scan_blocks_counted", gate(counted_us), scan(true));
    sink.record(
        "scan_blocks_uncounted",
        gate(uncounted_us),
        Default::default(),
    );
    println!(
        "micro_cursors/counting gate: counted {counted_us:.2} µs vs \
         counter-less {uncounted_us:.2} µs ({:+.1}%)",
        100.0 * (counted_us - uncounted_us) / uncounted_us
    );
    assert!(
        counted_us <= uncounted_us * 1.05 + 0.2,
        "access counting costs more than 5% on a block scan: \
         {counted_us:.2} µs vs {uncounted_us:.2} µs"
    );

    let path = sink.write().expect("write BENCH_results.json");
    println!("results merged into {}", path.display());
}

fn benches() {
    let mut c = criterion();
    bench(&mut c);
    bench_skewed(&mut c);
    record_results();
}

criterion_main!(benches);
