#![allow(dead_code)] // shared across several bench binaries, each using a subset

//! Shared Criterion setup for the figure benches.

use criterion::Criterion;
use ftsl_bench::{build_env, series_query, BenchEnv, EnvSpec, Series};
use ftsl_exec::engine::{ExecOptions, Executor};
use std::time::Duration;

/// Criterion tuned for many fast data points.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(450))
}

/// Run one series point inside a Criterion closure.
pub fn run_point(env: &BenchEnv, series: Series, toks: usize, preds: usize) -> usize {
    let query = series_query(series, env, toks, preds);
    let options = ExecOptions {
        npred_full_permutations: true,
        ..Default::default()
    };
    let exec = Executor::with_options(&env.corpus, &env.index, &env.registry, options);
    exec.run_surface(&query, series.engine())
        .expect("series query runs")
        .nodes
        .len()
}

/// The bench corpus (small scale so `cargo bench` stays fast).
pub fn bench_env() -> BenchEnv {
    build_env(EnvSpec::small())
}
