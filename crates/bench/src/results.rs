//! Machine-readable benchmark results: `BENCH_results.json`.
//!
//! Every bench binary that matters for the perf trajectory reports its
//! medians through a [`ResultsSink`], which merges them into one JSON file
//! at the workspace root (override with `FTSL_BENCH_RESULTS`). The schema
//! is deliberately small and stable so CI and notebooks can track numbers
//! across commits without scraping stdout:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "results": [
//!     {
//!       "bench": "topk_scored",
//!       "case": "tfidf_top10_blocks",
//!       "us": 12.25,
//!       "bytes": 0,
//!       "counters": { "entries": 1414, "positions": 0, "positions_decoded": 0,
//!                      "tuples": 0, "skipped": 0, "blocks_skipped": 8 }
//!     }
//!   ]
//! }
//! ```
//!
//! `us` is the median wall time of the case in microseconds (0 for
//! size-only records); `bytes` carries sizes for footprint records (0 for
//! timing records); `counters` are the [`AccessCounters`] of one
//! representative run. Records are keyed by `(bench, case)`: re-running a
//! bench replaces its own records and leaves every other bench's alone, so
//! `cargo bench` incrementally refreshes the file.
//!
//! Set `FTSL_BENCH_SMOKE=1` to make the wired benches run with reduced
//! sample counts — CI uses this to keep the results artifact fresh without
//! paying for full measurement runs.

use ftsl_index::AccessCounters;
use std::path::PathBuf;
use std::time::Instant;

/// One measured case.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Bench binary the record belongs to (e.g. `"topk_scored"`).
    pub bench: String,
    /// Case label within the bench (e.g. `"tfidf_top10_blocks"`).
    pub case: String,
    /// Median wall time in microseconds (0 for size-only records).
    pub us: f64,
    /// Payload size for footprint records (0 for timing records).
    pub bytes: u64,
    /// Access counters of one representative run.
    pub counters: AccessCounters,
}

/// Collects one bench binary's records and merges them into the shared
/// results file on [`ResultsSink::write`].
pub struct ResultsSink {
    bench: String,
    records: Vec<BenchRecord>,
}

/// Where the merged results live: `$FTSL_BENCH_RESULTS`, or
/// `BENCH_results.json` at the workspace root.
pub fn default_path() -> PathBuf {
    if let Ok(p) = std::env::var("FTSL_BENCH_RESULTS") {
        return PathBuf::from(p);
    }
    // crates/bench → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_results.json")
}

/// True when `FTSL_BENCH_SMOKE=1`: benches shrink their sample counts.
pub fn smoke() -> bool {
    std::env::var("FTSL_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Median wall time of `f` in microseconds over `reps` timed runs (after
/// one warm-up call). Robust to background load: each rep is timed
/// individually and the median taken.
pub fn median_micros<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut times: Vec<f64> = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        times.push(start.elapsed().as_nanos() as f64 / 1_000.0);
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

impl ResultsSink {
    /// A sink for `bench`'s records.
    pub fn new(bench: &str) -> Self {
        ResultsSink {
            bench: bench.to_string(),
            records: Vec::new(),
        }
    }

    /// Record a timing case.
    pub fn record(&mut self, case: &str, us: f64, counters: AccessCounters) {
        self.records.push(BenchRecord {
            bench: self.bench.clone(),
            case: case.to_string(),
            us,
            bytes: 0,
            counters,
        });
    }

    /// Record a size case (bytes instead of time).
    pub fn record_bytes(&mut self, case: &str, bytes: u64) {
        self.records.push(BenchRecord {
            bench: self.bench.clone(),
            case: case.to_string(),
            us: 0.0,
            bytes,
            counters: AccessCounters::new(),
        });
    }

    /// Merge this bench's records into the shared file (replacing the
    /// bench's previous records, keeping every other bench's) and return
    /// the path written.
    pub fn write(self) -> std::io::Result<PathBuf> {
        let path = default_path();
        let mut all = match std::fs::read_to_string(&path) {
            Ok(text) => parse_results(&text).unwrap_or_default(),
            Err(_) => Vec::new(),
        };
        all.retain(|r| r.bench != self.bench);
        all.extend(self.records);
        all.sort_by(|a, b| (&a.bench, &a.case).cmp(&(&b.bench, &b.case)));
        std::fs::write(&path, render_results(&all))?;
        Ok(path)
    }
}

fn render_results(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let c = r.counters;
        out.push_str(&format!(
            "    {{ \"bench\": \"{}\", \"case\": \"{}\", \"us\": {:.3}, \"bytes\": {}, \
             \"counters\": {{ \"entries\": {}, \"positions\": {}, \"positions_decoded\": {}, \
             \"tuples\": {}, \"skipped\": {}, \"blocks_skipped\": {} }} }}{}\n",
            r.bench,
            r.case,
            r.us,
            r.bytes,
            c.entries,
            c.positions,
            c.positions_decoded,
            c.tuples,
            c.skipped,
            c.blocks_skipped,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a results file produced by [`render_results`]. Tolerant of
/// whitespace but not a general JSON parser: object fields are extracted
/// by key scanning (names and cases never contain quotes or escapes).
/// Individually malformed records are skipped (the rest of the history
/// survives the merge); `None` only when the text is not recognizably
/// ours at all — the caller starts a fresh file rather than guessing.
fn parse_results(text: &str) -> Option<Vec<BenchRecord>> {
    let mut records = Vec::new();
    let body = text.split_once("\"results\"")?.1;
    // Each record object sits between '{' and the matching '}' — our
    // writer nests exactly one level (counters), so track depth.
    let mut depth = 0usize;
    let mut start = None;
    for (i, ch) in body.char_indices() {
        match ch {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            // The results array ends at the first unnested ']' (or the
            // enclosing object's '}'): nothing after it is a record.
            ']' | '}' if depth == 0 => break,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    // Salvage what parses: one malformed record (a hand
                    // edit, a truncated write) must not throw away every
                    // other bench's accumulated history on the next merge.
                    if let Some(record) = parse_record(&body[start?..=i]) {
                        records.push(record);
                    }
                }
            }
            _ => {}
        }
    }
    Some(records)
}

fn field<'a>(object: &'a str, key: &str) -> Option<&'a str> {
    let after = object.split_once(&format!("\"{key}\""))?.1;
    let after = after.split_once(':')?.1.trim_start();
    let end = after.find([',', '}', '\n']).unwrap_or(after.len());
    Some(after[..end].trim())
}

fn parse_record(object: &str) -> Option<BenchRecord> {
    let string =
        |key: &str| -> Option<String> { Some(field(object, key)?.trim_matches('"').to_string()) };
    let num = |key: &str| -> Option<f64> { field(object, key)?.parse().ok() };
    Some(BenchRecord {
        bench: string("bench")?,
        case: string("case")?,
        us: num("us")?,
        bytes: num("bytes")? as u64,
        counters: AccessCounters {
            entries: num("entries")? as u64,
            positions: num("positions")? as u64,
            positions_decoded: num("positions_decoded")? as u64,
            tuples: num("tuples")? as u64,
            skipped: num("skipped")? as u64,
            blocks_skipped: num("blocks_skipped")? as u64,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bench: &str, case: &str, us: f64) -> BenchRecord {
        BenchRecord {
            bench: bench.into(),
            case: case.into(),
            us,
            bytes: 7,
            counters: AccessCounters {
                entries: 1,
                positions: 2,
                positions_decoded: 3,
                tuples: 4,
                skipped: 5,
                blocks_skipped: 6,
            },
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let records = vec![sample("a", "x", 1.5), sample("b", "y", 2.25)];
        let text = render_results(&records);
        assert_eq!(parse_results(&text).expect("parses"), records);
    }

    #[test]
    fn unrecognized_text_is_rejected_not_mangled() {
        assert!(parse_results("not json at all").is_none());
        assert_eq!(parse_results("{\"results\": []}"), Some(Vec::new()));
    }

    #[test]
    fn one_malformed_record_does_not_drop_the_rest() {
        let records = vec![sample("a", "x", 1.5), sample("b", "y", 2.25)];
        let mut text = render_results(&records);
        // Corrupt the first record's `us` value; the second must survive.
        text = text.replacen("\"us\": 1.500", "\"us\": oops", 1);
        let salvaged = parse_results(&text).expect("still recognizably ours");
        assert_eq!(salvaged, vec![sample("b", "y", 2.25)]);
    }

    #[test]
    fn merge_replaces_only_own_bench() {
        // Simulated by the retain+extend in `write`; checked here directly.
        let mut all = vec![sample("a", "x", 1.0), sample("b", "y", 2.0)];
        let fresh = vec![sample("a", "x", 9.0), sample("a", "z", 3.0)];
        all.retain(|r| r.bench != "a");
        all.extend(fresh);
        all.sort_by(|a, b| (&a.bench, &a.case).cmp(&(&b.bench, &b.case)));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].us, 9.0);
        assert_eq!(all[1].case, "z");
        assert_eq!(all[2].bench, "b");
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0u32;
        let us = median_micros(5, || {
            calls += 1;
            if calls == 3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        assert!(us < 5_000.0, "median {us} polluted by the outlier");
    }
}
