//! Machine-readable benchmark results: `BENCH_results.json`.
//!
//! Every bench binary that matters for the perf trajectory reports its
//! medians through a [`ResultsSink`], which merges them into one JSON file
//! at the workspace root (override with `FTSL_BENCH_RESULTS`). The schema
//! is deliberately small and stable so CI and notebooks can track numbers
//! across commits without scraping stdout:
//!
//! ```json
//! {
//!   "schema": 3,
//!   "results": [
//!     {
//!       "bench": "topk_scored",
//!       "case": "tfidf_top10_blocks",
//!       "us": 12.25,
//!       "runs": 150,
//!       "counters": { "entries": 1414, "positions": 0, "positions_decoded": 0,
//!                      "tuples": 0, "skipped": 0, "blocks_skipped": 8,
//!                      "segments_skipped": 0 }
//!     },
//!     { "bench": "batch_decode", "case": "compressed_bytes_small", "bytes": 5120 },
//!     {
//!       "bench": "load_serve",
//!       "case": "mixed_w4",
//!       "workers": 4, "requests": 4000, "qps": 151234.5,
//!       "p50_us": 7.0, "p95_us": 21.0, "p99_us": 44.0,
//!       "cache_hit": 0.83, "allocs_per_query": 2.1
//!     }
//!   ]
//! }
//! ```
//!
//! Timing records carry `us` (the case's median wall time in microseconds),
//! `runs` (how many executions of the case fed that median — schema 3
//! guarantees at least [`INNER_RUNS`] per timed sample, so sub-microsecond
//! cases are no longer at the mercy of clock quantization), plus the
//! [`AccessCounters`] of one representative run. Size-only footprint
//! records carry `bytes` and *no* `us` field at all — a consumer must not
//! mistake "we measured a size" for "this ran in zero time". Load records
//! (from the `load_serve` harness) carry throughput and tail-latency
//! percentiles instead of a single median. Records are keyed by `(bench,
//! case)`: re-running a bench replaces its own records and leaves every
//! other bench's alone, so `cargo bench` incrementally refreshes the file.
//!
//! Set `FTSL_BENCH_SMOKE=1` to make the wired benches run with reduced
//! sample counts — CI uses this to keep the results artifact fresh without
//! paying for full measurement runs.

use ftsl_index::AccessCounters;
use std::path::PathBuf;
use std::time::Instant;

/// One measured case.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Bench binary the record belongs to (e.g. `"topk_scored"`).
    pub bench: String,
    /// Case label within the bench (e.g. `"tfidf_top10_blocks"`).
    pub case: String,
    /// Median wall time in microseconds; `None` for size-only records,
    /// which never rendered a timing and must not pretend to.
    pub us: Option<f64>,
    /// How many executions of the case fed the median (0 when unknown —
    /// size-only records and pre-schema-3 history).
    pub runs: u32,
    /// Payload size for footprint records (0 for timing records).
    pub bytes: u64,
    /// Access counters of one representative run.
    pub counters: AccessCounters,
    /// Throughput/latency payload for load-harness records.
    pub load: Option<LoadMetrics>,
}

/// Closed-loop load-harness results for one worker-count case: throughput,
/// tail latency, cache effectiveness, and steady-state allocation rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadMetrics {
    /// Pool workers serving the run.
    pub workers: u32,
    /// Total requests completed.
    pub requests: u64,
    /// Requests per second over the whole run.
    pub qps: f64,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
    /// Result-cache hit rate over the run, in `[0, 1]`.
    pub cache_hit: f64,
    /// Mean worker-thread heap allocations per served query.
    pub allocs_per_query: f64,
}

/// A median with the number of executions behind it, as produced by
/// [`measure`] and consumed by [`ResultsSink::record`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Median wall time in microseconds.
    pub us: f64,
    /// Executions that fed the median (`samples x INNER_RUNS`).
    pub runs: u32,
}

/// Collects one bench binary's records and merges them into the shared
/// results file on [`ResultsSink::write`].
pub struct ResultsSink {
    bench: String,
    records: Vec<BenchRecord>,
}

/// Where the merged results live: `$FTSL_BENCH_RESULTS`, or
/// `BENCH_results.json` at the workspace root.
pub fn default_path() -> PathBuf {
    if let Ok(p) = std::env::var("FTSL_BENCH_RESULTS") {
        return PathBuf::from(p);
    }
    // crates/bench → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_results.json")
}

/// True when `FTSL_BENCH_SMOKE=1`: benches shrink their sample counts.
pub fn smoke() -> bool {
    std::env::var("FTSL_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Inner runs per timed sample. Sub-microsecond cases timed one call at a
/// time sit right at `Instant` quantization (an idle-core wakeup or timer
/// edge lands entirely on a single call and survives the median) — the
/// recorded `scan_common_blocks` once read ~10x its criterion-measured
/// cost this way. Batching >= 5 runs per sample amortizes both the clock
/// read and any one-off stall across the batch.
pub const INNER_RUNS: usize = 5;

/// Median wall time of `f` in microseconds over `samples` timed samples
/// (after one warm-up call), each sample the mean of [`INNER_RUNS`]
/// back-to-back runs. Robust to background load: samples are timed
/// individually and the median taken.
pub fn measure<F: FnMut()>(samples: usize, mut f: F) -> Measurement {
    f();
    let samples = samples.max(1);
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..INNER_RUNS {
            f();
        }
        times.push(start.elapsed().as_nanos() as f64 / 1_000.0 / INNER_RUNS as f64);
    }
    times.sort_by(f64::total_cmp);
    Measurement {
        us: times[times.len() / 2],
        runs: (samples * INNER_RUNS) as u32,
    }
}

/// [`measure`], keeping only the median — for callers that feed gates and
/// comparisons rather than records.
pub fn median_micros<F: FnMut()>(samples: usize, f: F) -> f64 {
    measure(samples, f).us
}

impl ResultsSink {
    /// A sink for `bench`'s records.
    pub fn new(bench: &str) -> Self {
        ResultsSink {
            bench: bench.to_string(),
            records: Vec::new(),
        }
    }

    /// Record a timing case from a [`measure`] result.
    pub fn record(&mut self, case: &str, m: Measurement, counters: AccessCounters) {
        self.records.push(BenchRecord {
            bench: self.bench.clone(),
            case: case.to_string(),
            us: Some(m.us),
            runs: m.runs,
            bytes: 0,
            counters,
            load: None,
        });
    }

    /// Record a size case (bytes instead of time; the record carries no
    /// `us` field).
    pub fn record_bytes(&mut self, case: &str, bytes: u64) {
        self.records.push(BenchRecord {
            bench: self.bench.clone(),
            case: case.to_string(),
            us: None,
            runs: 0,
            bytes,
            counters: AccessCounters::new(),
            load: None,
        });
    }

    /// Record a load-harness case: throughput + tail latency percentiles.
    pub fn record_load(&mut self, case: &str, load: LoadMetrics) {
        self.records.push(BenchRecord {
            bench: self.bench.clone(),
            case: case.to_string(),
            us: None,
            runs: 0,
            bytes: 0,
            counters: AccessCounters::new(),
            load: Some(load),
        });
    }

    /// Merge this bench's records into the shared file (replacing the
    /// bench's previous records, keeping every other bench's) and return
    /// the path written.
    pub fn write(self) -> std::io::Result<PathBuf> {
        let path = default_path();
        let mut all = match std::fs::read_to_string(&path) {
            Ok(text) => parse_results(&text).unwrap_or_default(),
            Err(_) => Vec::new(),
        };
        all.retain(|r| r.bench != self.bench);
        all.extend(self.records);
        all.sort_by(|a, b| (&a.bench, &a.case).cmp(&(&b.bench, &b.case)));
        std::fs::write(&path, render_results(&all))?;
        Ok(path)
    }
}

fn render_results(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"schema\": 3,\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        // Timing records get `us` + `runs` + counters; load records get
        // throughput and percentiles; size-only records get `bytes` and
        // nothing that looks like a measurement of time.
        let body = match (r.us, &r.load) {
            (Some(us), _) => {
                let c = r.counters;
                format!(
                    "\"us\": {:.3}, \"runs\": {}, \
                     \"counters\": {{ \"entries\": {}, \"positions\": {}, \
                     \"positions_decoded\": {}, \"tuples\": {}, \"skipped\": {}, \
                     \"blocks_skipped\": {}, \"segments_skipped\": {}, \
                     \"pair_entries\": {} }}",
                    us,
                    r.runs,
                    c.entries,
                    c.positions,
                    c.positions_decoded,
                    c.tuples,
                    c.skipped,
                    c.blocks_skipped,
                    c.segments_skipped,
                    c.pair_entries,
                )
            }
            (None, Some(l)) => format!(
                "\"workers\": {}, \"requests\": {}, \"qps\": {:.1}, \
                 \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"cache_hit\": {:.4}, \"allocs_per_query\": {:.3}",
                l.workers,
                l.requests,
                l.qps,
                l.p50_us,
                l.p95_us,
                l.p99_us,
                l.cache_hit,
                l.allocs_per_query,
            ),
            (None, None) => format!("\"bytes\": {}", r.bytes),
        };
        out.push_str(&format!(
            "    {{ \"bench\": \"{}\", \"case\": \"{}\", {} }}{}\n",
            r.bench,
            r.case,
            body,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a results file produced by [`render_results`]. Tolerant of
/// whitespace but not a general JSON parser: object fields are extracted
/// by key scanning (names and cases never contain quotes or escapes).
/// Individually malformed records are skipped (the rest of the history
/// survives the merge); `None` only when the text is not recognizably
/// ours at all — the caller starts a fresh file rather than guessing.
fn parse_results(text: &str) -> Option<Vec<BenchRecord>> {
    let mut records = Vec::new();
    let body = text.split_once("\"results\"")?.1;
    // Each record object sits between '{' and the matching '}' — our
    // writer nests exactly one level (counters), so track depth.
    let mut depth = 0usize;
    let mut start = None;
    for (i, ch) in body.char_indices() {
        match ch {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            // The results array ends at the first unnested ']' (or the
            // enclosing object's '}'): nothing after it is a record.
            ']' | '}' if depth == 0 => break,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    // Salvage what parses: one malformed record (a hand
                    // edit, a truncated write) must not throw away every
                    // other bench's accumulated history on the next merge.
                    if let Some(record) = parse_record(&body[start?..=i]) {
                        records.push(record);
                    }
                }
            }
            _ => {}
        }
    }
    Some(records)
}

fn field<'a>(object: &'a str, key: &str) -> Option<&'a str> {
    let after = object.split_once(&format!("\"{key}\""))?.1;
    let after = after.split_once(':')?.1.trim_start();
    let end = after.find([',', '}', '\n']).unwrap_or(after.len());
    Some(after[..end].trim())
}

fn parse_record(object: &str) -> Option<BenchRecord> {
    let string =
        |key: &str| -> Option<String> { Some(field(object, key)?.trim_matches('"').to_string()) };
    let num = |key: &str| -> Option<f64> { field(object, key)?.parse().ok() };
    // A missing `us` marks a size-only record; a *present but unparseable*
    // one marks a corrupted record, which is dropped, not reinterpreted.
    let us = match field(object, "us") {
        Some(text) => Some(text.parse::<f64>().ok()?),
        None => None,
    };
    // A `qps` field marks a load record; its sibling percentiles default
    // to 0 only if a hand edit dropped them.
    let load = num("qps").map(|qps| LoadMetrics {
        workers: num("workers").unwrap_or(0.0) as u32,
        requests: num("requests").unwrap_or(0.0) as u64,
        qps,
        p50_us: num("p50_us").unwrap_or(0.0),
        p95_us: num("p95_us").unwrap_or(0.0),
        p99_us: num("p99_us").unwrap_or(0.0),
        cache_hit: num("cache_hit").unwrap_or(0.0),
        allocs_per_query: num("allocs_per_query").unwrap_or(0.0),
    });
    // Size-only records carry no counters (and pre-`segments_skipped`
    // files carry no such key); absent numeric fields default to 0.
    let num0 = |key: &str| num(key).unwrap_or(0.0) as u64;
    Some(BenchRecord {
        bench: string("bench")?,
        case: string("case")?,
        us,
        runs: num0("runs") as u32,
        load,
        bytes: num0("bytes"),
        counters: AccessCounters {
            entries: num0("entries"),
            positions: num0("positions"),
            positions_decoded: num0("positions_decoded"),
            tuples: num0("tuples"),
            skipped: num0("skipped"),
            blocks_skipped: num0("blocks_skipped"),
            segments_skipped: num0("segments_skipped"),
            pair_entries: num0("pair_entries"),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bench: &str, case: &str, us: f64) -> BenchRecord {
        BenchRecord {
            bench: bench.into(),
            case: case.into(),
            us: Some(us),
            runs: 150,
            bytes: 0,
            counters: AccessCounters {
                entries: 1,
                positions: 2,
                positions_decoded: 3,
                tuples: 4,
                skipped: 5,
                blocks_skipped: 6,
                segments_skipped: 7,
                pair_entries: 8,
            },
            load: None,
        }
    }

    fn size_sample(bench: &str, case: &str, bytes: u64) -> BenchRecord {
        BenchRecord {
            bench: bench.into(),
            case: case.into(),
            us: None,
            runs: 0,
            bytes,
            counters: AccessCounters::new(),
            load: None,
        }
    }

    fn load_sample(bench: &str, case: &str, workers: u32, qps: f64) -> BenchRecord {
        BenchRecord {
            bench: bench.into(),
            case: case.into(),
            us: None,
            runs: 0,
            bytes: 0,
            counters: AccessCounters::new(),
            load: Some(LoadMetrics {
                workers,
                requests: 4000,
                qps,
                p50_us: 7.5,
                p95_us: 21.25,
                p99_us: 44.125,
                cache_hit: 0.8325,
                allocs_per_query: 2.125,
            }),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let records = vec![
            sample("a", "x", 1.5),
            size_sample("a", "bytes_x", 4096),
            sample("b", "y", 2.25),
            load_sample("c", "mixed_w4", 4, 151234.5),
        ];
        let text = render_results(&records);
        assert_eq!(parse_results(&text).expect("parses"), records);
    }

    #[test]
    fn load_records_carry_percentiles_not_a_median() {
        let text = render_results(&[load_sample("load_serve", "mixed_w2", 2, 99000.0)]);
        let row = text.lines().find(|l| l.contains("mixed_w2")).unwrap();
        assert!(
            !row.contains("\"us\":"),
            "load rows have no single median: {row}"
        );
        for key in ["workers", "qps", "p50_us", "p95_us", "p99_us", "cache_hit"] {
            assert!(row.contains(&format!("\"{key}\"")), "missing {key}: {row}");
        }
        let parsed = parse_results(&text).expect("parses");
        assert_eq!(parsed[0].us, None, "p50_us must not be misread as us");
        assert_eq!(parsed[0].load.unwrap().workers, 2);
        assert_eq!(parsed[0].load.unwrap().p99_us, 44.125);
    }

    #[test]
    fn timing_records_carry_their_run_count() {
        let m = measure(4, || {});
        assert_eq!(m.runs as usize, 4 * INNER_RUNS, "samples x inner runs");
        let text = render_results(&[sample("t", "q", 3.5)]);
        assert!(text.contains("\"runs\": 150"), "{text}");
        // Pre-schema-3 history (no `runs` key) parses with runs == 0.
        let legacy = text.replace("\"runs\": 150, ", "");
        assert_eq!(parse_results(&legacy).expect("parses")[0].runs, 0);
    }

    #[test]
    fn size_records_carry_no_timing_field() {
        let text = render_results(&[size_sample("sizes", "compressed_bytes", 512)]);
        let row = text
            .lines()
            .find(|l| l.contains("compressed_bytes"))
            .unwrap();
        assert!(
            !row.contains("\"us\""),
            "size-only row must not fake a timing: {row}"
        );
        assert!(
            !row.contains("\"counters\""),
            "size-only row has no counters: {row}"
        );
        assert!(row.contains("\"bytes\": 512"), "{row}");
        // And it parses back as size-only, not as a 0-µs timing.
        let parsed = parse_results(&text).expect("parses");
        assert_eq!(parsed[0].us, None);
        assert_eq!(parsed[0].bytes, 512);
    }

    #[test]
    fn timing_records_carry_counters_including_segments_skipped() {
        let text = render_results(&[sample("t", "q", 3.5)]);
        let row = text.lines().find(|l| l.contains("\"q\"")).unwrap();
        assert!(row.contains("\"us\": 3.500"), "{row}");
        assert!(row.contains("\"segments_skipped\": 7"), "{row}");
        assert!(
            !row.contains("\"bytes\""),
            "timing rows have no size payload: {row}"
        );
    }

    #[test]
    fn pre_segments_skipped_files_still_parse() {
        // A schema-1 row: `us` on every record, `bytes` alongside counters,
        // no `segments_skipped`. Old history must survive the merge.
        let text = "{\n  \"schema\": 1,\n  \"results\": [\n    { \"bench\": \"old\", \
                    \"case\": \"c\", \"us\": 1.250, \"bytes\": 0, \"counters\": { \
                    \"entries\": 9, \"positions\": 0, \"positions_decoded\": 0, \
                    \"tuples\": 0, \"skipped\": 0, \"blocks_skipped\": 2 } }\n  ]\n}\n";
        let parsed = parse_results(text).expect("parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].us, Some(1.25));
        assert_eq!(parsed[0].counters.entries, 9);
        assert_eq!(parsed[0].counters.segments_skipped, 0);
    }

    #[test]
    fn unrecognized_text_is_rejected_not_mangled() {
        assert!(parse_results("not json at all").is_none());
        assert_eq!(parse_results("{\"results\": []}"), Some(Vec::new()));
    }

    #[test]
    fn one_malformed_record_does_not_drop_the_rest() {
        let records = vec![sample("a", "x", 1.5), sample("b", "y", 2.25)];
        let mut text = render_results(&records);
        // Corrupt the first record's `us` value; the second must survive.
        text = text.replacen("\"us\": 1.500", "\"us\": oops", 1);
        let salvaged = parse_results(&text).expect("still recognizably ours");
        assert_eq!(salvaged, vec![sample("b", "y", 2.25)]);
    }

    #[test]
    fn merge_replaces_only_own_bench() {
        // Simulated by the retain+extend in `write`; checked here directly.
        let mut all = vec![sample("a", "x", 1.0), sample("b", "y", 2.0)];
        let fresh = vec![sample("a", "x", 9.0), sample("a", "z", 3.0)];
        all.retain(|r| r.bench != "a");
        all.extend(fresh);
        all.sort_by(|a, b| (&a.bench, &a.case).cmp(&(&b.bench, &b.case)));
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].us, Some(9.0));
        assert_eq!(all[1].case, "z");
        assert_eq!(all[2].bench, "b");
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0u32;
        let us = median_micros(5, || {
            calls += 1;
            if calls == 3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        assert!(us < 5_000.0, "median {us} polluted by the outlier");
    }
}
