//! Shared benchmark harness for regenerating the paper's evaluation
//! (Section 6, Figures 3–8).
//!
//! The paper's series labels map to engine configurations as follows:
//!
//! | Label      | Query predicates | Engine | Notes |
//! |------------|------------------|--------|-------|
//! | BOOL       | none             | BOOL merge | predicate-free conjunction |
//! | PPRED-POS  | positive         | PPRED streaming | single scan |
//! | NPRED-POS  | positive         | NPRED, *full permutations* | the presented `toks_Q!` algorithm |
//! | NPRED-NEG  | negative         | NPRED, full permutations | |
//! | COMP-POS   | positive         | COMP materialized | |
//! | COMP-NEG   | negative         | COMP materialized | |
//!
//! COMP runs whose estimated materialization exceeds a tuple budget are
//! skipped and reported as such (the full-scale Figure 8 point at 125
//! positions/entry is exactly the regime the paper shows COMP failing in).

pub mod results;

use ftsl_corpus::queries::planted_names;
use ftsl_corpus::{PredPolarity, QuerySpec, SynthConfig};
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::{AccessCounters, IndexBuilder, InvertedIndex};
use ftsl_lang::{parse, Mode, SurfaceQuery};
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;
use std::time::{Duration, Instant};

/// Maximum estimated materialized tuples before a COMP run is skipped.
pub const COMP_TUPLE_BUDGET: u64 = 20_000_000;

/// A corpus + index + registry ready for benchmarking.
pub struct BenchEnv {
    /// The synthetic corpus.
    pub corpus: Corpus,
    /// Its inverted index.
    pub index: InvertedIndex,
    /// Built-in predicates.
    pub registry: PredicateRegistry,
    /// Names of the planted query tokens (`q0`..).
    pub tokens: Vec<String>,
    /// Occurrences per entry of each planted token.
    pub occurrences: usize,
}

/// Corpus shape parameters for one experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct EnvSpec {
    /// Number of context nodes.
    pub cnodes: usize,
    /// Occurrences of each planted token per containing document
    /// (`pos_per_entry` for the query tokens).
    pub occurrences: usize,
    /// Fraction of documents containing each planted token.
    pub doc_fraction: f64,
    /// Background tokens per document.
    pub tokens_per_doc: usize,
}

impl EnvSpec {
    /// Small criterion-friendly default.
    pub fn small() -> Self {
        EnvSpec {
            cnodes: 400,
            occurrences: 6,
            doc_fraction: 0.4,
            tokens_per_doc: 150,
        }
    }

    /// The figures-binary default (scaled-down INEX-like).
    pub fn medium() -> Self {
        EnvSpec {
            cnodes: 1500,
            occurrences: 10,
            doc_fraction: 0.4,
            tokens_per_doc: 250,
        }
    }

    /// Paper-scale (Section 6's defaults: 6 000 nodes, 25 positions/entry).
    pub fn full() -> Self {
        EnvSpec {
            cnodes: 6000,
            occurrences: 25,
            doc_fraction: 0.4,
            tokens_per_doc: 400,
        }
    }
}

/// Build a benchmark environment with 5 planted query tokens.
pub fn build_env(spec: EnvSpec) -> BenchEnv {
    let tokens = planted_names(5);
    let mut config = SynthConfig {
        cnodes: spec.cnodes,
        vocabulary: 5_000,
        zipf_exponent: 1.0,
        tokens_per_doc: spec.tokens_per_doc,
        sentence_len: 15,
        sentences_per_para: 5,
        planted: Vec::new(),
        seed: 0xEDB7_2006,
    };
    for t in &tokens {
        config = config.plant(t, spec.doc_fraction, spec.occurrences);
    }
    let corpus = config.build();
    let index = IndexBuilder::new().build(&corpus);
    BenchEnv {
        corpus,
        index,
        registry: PredicateRegistry::with_builtins(),
        tokens,
        occurrences: spec.occurrences,
    }
}

/// The paper's series labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Series {
    /// Predicate-free conjunction on the BOOL engine.
    Bool,
    /// Positive predicates on the PPRED engine.
    PpredPos,
    /// Positive predicates on the NPRED engine (full permutations).
    NpredPos,
    /// Negative predicates on the NPRED engine (full permutations).
    NpredNeg,
    /// Positive predicates on the COMP engine.
    CompPos,
    /// Negative predicates on the COMP engine.
    CompNeg,
}

impl Series {
    /// All series, in the paper's plotting order.
    pub const ALL: [Series; 6] = [
        Series::Bool,
        Series::PpredPos,
        Series::NpredPos,
        Series::NpredNeg,
        Series::CompPos,
        Series::CompNeg,
    ];

    /// Display label (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Series::Bool => "BOOL",
            Series::PpredPos => "PPRED-POS",
            Series::NpredPos => "NPRED-POS",
            Series::NpredNeg => "NPRED-NEG",
            Series::CompPos => "COMP-POS",
            Series::CompNeg => "COMP-NEG",
        }
    }

    /// Engine to force for this series.
    pub fn engine(&self) -> EngineKind {
        match self {
            Series::Bool => EngineKind::Bool,
            Series::PpredPos => EngineKind::Ppred,
            Series::NpredPos | Series::NpredNeg => EngineKind::Npred,
            Series::CompPos | Series::CompNeg => EngineKind::Comp,
        }
    }

    /// Predicate polarity of the series' queries.
    pub fn polarity(&self) -> PredPolarity {
        match self {
            Series::NpredNeg | Series::CompNeg => PredPolarity::Negative,
            _ => PredPolarity::Positive,
        }
    }

    /// Whether the series uses a predicate-free BOOL query.
    pub fn is_bool(&self) -> bool {
        matches!(self, Series::Bool)
    }
}

/// Build the query for a series at the given `toks_Q`/`preds_Q` point.
pub fn series_query(series: Series, env: &BenchEnv, toks: usize, preds: usize) -> SurfaceQuery {
    let spec = QuerySpec {
        toks,
        preds: if series.is_bool() { 0 } else { preds },
        polarity: series.polarity(),
        distance: 20,
        seed: 7 + toks as u64 * 31 + preds as u64,
    };
    if series.is_bool() {
        parse(&spec.render_bool(&env.tokens), Mode::Bool).expect("bool query parses")
    } else {
        spec.parse(&env.tokens)
    }
}

/// Outcome of a measured run.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median wall time.
    pub time: Duration,
    /// Access counters of one run.
    pub counters: AccessCounters,
    /// Number of matching nodes.
    pub hits: usize,
    /// True when the run was skipped (over budget).
    pub skipped: bool,
}

impl Measurement {
    fn skipped() -> Self {
        Measurement {
            time: Duration::ZERO,
            counters: AccessCounters::new(),
            hits: 0,
            skipped: true,
        }
    }
}

/// Estimate the tuples a COMP evaluation of a `toks`-way conjunction would
/// materialize: (docs containing all tokens) × occurrences^toks.
pub fn estimate_comp_tuples(env: &BenchEnv, toks: usize) -> u64 {
    let exec = Executor::new(&env.corpus, &env.index, &env.registry);
    let spec = QuerySpec {
        toks,
        preds: 0,
        polarity: PredPolarity::Positive,
        distance: 20,
        seed: 0,
    };
    let bool_q = parse(&spec.render_bool(&env.tokens), Mode::Bool).expect("parses");
    let docs = exec
        .run_surface(&bool_q, EngineKind::Bool)
        .map(|o| o.nodes.len() as u64)
        .unwrap_or(0);
    docs.saturating_mul((env.occurrences as u64).saturating_pow(toks as u32))
}

/// Run one series point, `reps` times, reporting the median time.
pub fn measure(
    env: &BenchEnv,
    series: Series,
    toks: usize,
    preds: usize,
    reps: usize,
) -> Measurement {
    if matches!(series, Series::CompPos | Series::CompNeg)
        && estimate_comp_tuples(env, toks) > COMP_TUPLE_BUDGET
    {
        return Measurement::skipped();
    }
    let query = series_query(series, env, toks, preds);
    let options = ExecOptions {
        npred_full_permutations: true,
        ..Default::default()
    };
    let exec = Executor::with_options(&env.corpus, &env.index, &env.registry, options);

    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = exec
            .run_surface(&query, series.engine())
            .expect("series query runs");
        times.push(start.elapsed());
        last = Some(out);
    }
    times.sort_unstable();
    let out = last.expect("at least one rep");
    Measurement {
        time: times[times.len() / 2],
        counters: out.counters,
        hits: out.nodes.len(),
        skipped: false,
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: Duration, skipped: bool) -> String {
    if skipped {
        return "   (skip)".to_string();
    }
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us:>6}µs ")
    } else if us < 1_000_000 {
        format!("{:>6.1}ms ", us as f64 / 1_000.0)
    } else {
        format!("{:>6.2}s  ", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_and_all_series_run() {
        let env = build_env(EnvSpec {
            cnodes: 60,
            occurrences: 3,
            doc_fraction: 0.5,
            tokens_per_doc: 40,
        });
        for series in Series::ALL {
            let m = measure(&env, series, 2, 1, 1);
            assert!(!m.skipped, "{} skipped", series.label());
            // Every engine agrees this corpus has matches for 2-token
            // conjunctions at 50% planting.
            if series.is_bool() {
                assert!(m.hits > 0);
            }
        }
    }

    #[test]
    fn comp_budget_skips_oversized_runs() {
        let env = build_env(EnvSpec {
            cnodes: 60,
            occurrences: 3,
            doc_fraction: 0.5,
            tokens_per_doc: 40,
        });
        // A fake budget estimate: 5 tokens at occurrence 3 stays small, so
        // nothing skips at this scale.
        assert!(estimate_comp_tuples(&env, 3) < COMP_TUPLE_BUDGET);
        let m = measure(&env, Series::CompPos, 3, 2, 1);
        assert!(!m.skipped);
    }

    #[test]
    fn series_queries_match_their_classes() {
        let env = build_env(EnvSpec {
            cnodes: 30,
            occurrences: 2,
            doc_fraction: 0.5,
            tokens_per_doc: 30,
        });
        use ftsl_lang::{classify, LanguageClass};
        let q = series_query(Series::PpredPos, &env, 3, 2);
        assert_eq!(classify(&q, &env.registry), LanguageClass::Ppred);
        let q = series_query(Series::NpredNeg, &env, 3, 2);
        assert_eq!(classify(&q, &env.registry), LanguageClass::Npred);
        let q = series_query(Series::Bool, &env, 3, 2);
        assert!(classify(&q, &env.registry) <= LanguageClass::Bool);
    }
}
