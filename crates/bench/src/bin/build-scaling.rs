//! Index-construction scaling probe: wall time of sequential vs sharded
//! builds over an INEX-like corpus, at a few corpus sizes.
//!
//! ```text
//! cargo run --release -p ftsl-bench --bin build-scaling
//! ```

use ftsl_corpus::SynthConfig;
use ftsl_index::IndexBuilder;
use std::time::Instant;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("cores: {cores}");
    for cnodes in [1_000usize, 4_000, 12_000] {
        let corpus = SynthConfig::inex_like(cnodes).build();
        let mut line = format!("cnodes {cnodes:>6}:");
        for threads in [1, cores] {
            let builder = IndexBuilder::new().threads(threads);
            // Warm once, then take the best of 3 to damp scheduler noise.
            let _ = builder.build(&corpus);
            let best = (0..3)
                .map(|_| {
                    let start = Instant::now();
                    let index = builder.build(&corpus);
                    let elapsed = start.elapsed();
                    assert_eq!(index.stats().cnodes, cnodes);
                    elapsed
                })
                .min()
                .expect("three runs");
            line.push_str(&format!("  {threads:>2} thread(s) {:>8.1?}", best));
        }
        println!("{line}");
    }
}
