//! Regenerate the paper's evaluation figures as text tables.
//!
//! ```text
//! figures [fig3|fig5|fig6|fig7|fig8|all] [--scale small|medium|full] [--reps N]
//! ```
//!
//! * **fig5** — evaluation time vs. number of query tokens (1–5, default 3);
//! * **fig6** — evaluation time vs. number of predicates (0–4, default 2);
//! * **fig7** — evaluation time vs. number of context nodes;
//! * **fig8** — evaluation time vs. positions per inverted-list entry;
//! * **fig3** — the complexity hierarchy, validated with access counters.
//!
//! Engine series follow the paper's legends (BOOL, PPRED-POS, NPRED-POS,
//! NPRED-NEG, COMP-POS, COMP-NEG). COMP points whose estimated
//! materialization exceeds the tuple budget print as `(skip)`.

use ftsl_bench::{build_env, fmt_duration, measure, BenchEnv, EnvSpec, Series};
use std::time::Instant;

struct Args {
    figures: Vec<String>,
    scale: String,
    reps: usize,
}

fn parse_args() -> Args {
    let mut figures = Vec::new();
    let mut scale = "medium".to_string();
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| "medium".into()),
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(3),
            "all" => figures.extend(["fig3", "fig5", "fig6", "fig7", "fig8"].map(String::from)),
            f if f.starts_with("fig") => figures.push(f.to_string()),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if figures.is_empty() {
        figures.extend(["fig3", "fig5", "fig6", "fig7", "fig8"].map(String::from));
    }
    Args {
        figures,
        scale,
        reps,
    }
}

fn spec_for(scale: &str) -> EnvSpec {
    match scale {
        "small" => EnvSpec::small(),
        "full" => EnvSpec::full(),
        _ => EnvSpec::medium(),
    }
}

fn main() {
    let args = parse_args();
    let base = spec_for(&args.scale);
    println!(
        "# FTSL figure regeneration (scale={}, reps={})",
        args.scale, args.reps
    );
    println!(
        "# base corpus: cnodes={} occurrences/entry={} doc_fraction={}",
        base.cnodes, base.occurrences, base.doc_fraction
    );

    for fig in &args.figures {
        match fig.as_str() {
            "fig3" => fig3(base, args.reps),
            "fig5" => fig5(base, args.reps),
            "fig6" => fig6(base, args.reps),
            "fig7" => fig7(base, args.reps),
            "fig8" => fig8(base, args.reps),
            other => eprintln!("unknown figure {other}"),
        }
    }
}

fn header(title: &str, x_label: &str) {
    println!();
    println!("## {title}");
    print!("{x_label:>10} |");
    for s in Series::ALL {
        print!("{:>10}", s.label());
    }
    println!();
    println!("{}", "-".repeat(10 + 2 + 10 * Series::ALL.len()));
}

fn row(env: &BenchEnv, x: impl std::fmt::Display, toks: usize, preds: usize, reps: usize) {
    print!("{x:>10} |");
    for s in Series::ALL {
        let m = measure(env, s, toks, preds, reps);
        print!("{}", fmt_duration(m.time, m.skipped));
    }
    println!();
}

/// Figure 5: varying the number of query tokens (1-5, preds_Q = 2).
fn fig5(base: EnvSpec, reps: usize) {
    let start = Instant::now();
    let env = build_env(base);
    eprintln!("[fig5] corpus built in {:?}", start.elapsed());
    header(
        "Figure 5 — evaluation time vs. query tokens (preds_Q = 2)",
        "toks_Q",
    );
    for toks in 1..=5 {
        row(&env, toks, toks, 2, reps);
    }
}

/// Figure 6: varying the number of predicates (0-4, toks_Q = 3).
fn fig6(base: EnvSpec, reps: usize) {
    let env = build_env(base);
    header(
        "Figure 6 — evaluation time vs. predicates (toks_Q = 3)",
        "preds_Q",
    );
    for preds in 0..=4 {
        row(&env, preds, 3, preds, reps);
    }
}

/// Figure 7: varying the number of context nodes (toks_Q = 3, preds_Q = 2).
/// Paper values: 2 500 / 6 000 / 10 000; scaled proportionally to the
/// configured base size.
fn fig7(base: EnvSpec, reps: usize) {
    header("Figure 7 — evaluation time vs. context nodes", "cnodes");
    let fractions = [2_500.0 / 6_000.0, 1.0, 10_000.0 / 6_000.0];
    for f in fractions {
        let cnodes = ((base.cnodes as f64) * f) as usize;
        let env = build_env(EnvSpec { cnodes, ..base });
        row(&env, cnodes, 3, 2, reps);
    }
}

/// Figure 8: varying positions per inverted-list entry (5 / 25 / 125 at
/// paper scale; proportional at other scales).
fn fig8(base: EnvSpec, reps: usize) {
    header(
        "Figure 8 — evaluation time vs. positions per entry",
        "pos/entry",
    );
    let occurrences = [
        (base.occurrences / 5).max(1),
        base.occurrences,
        base.occurrences * 5,
    ];
    for occ in occurrences {
        let env = build_env(EnvSpec {
            occurrences: occ,
            ..base
        });
        row(&env, occ, 3, 2, reps);
    }
}

/// Figure 3: the complexity hierarchy, validated with machine-independent
/// access counters instead of wall time.
fn fig3(base: EnvSpec, reps: usize) {
    let env = build_env(base);
    println!();
    println!("## Figure 3 — complexity hierarchy (access counters, toks_Q=3, preds_Q=2)");
    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>10} {:>8}",
        "series", "entries", "positions", "tuples", "time", "hits"
    );
    println!("{}", "-".repeat(74));
    for s in Series::ALL {
        let m = measure(&env, s, 3, 2, reps);
        if m.skipped {
            println!("{:>10} | (skipped: over tuple budget)", s.label());
            continue;
        }
        println!(
            "{:>10} | {:>12} {:>12} {:>12} {:>10} {:>8}",
            s.label(),
            m.counters.entries,
            m.counters.positions,
            m.counters.tuples,
            fmt_duration(m.time, false).trim(),
            m.hits
        );
    }
    println!();
    println!("expected ordering (paper): BOOL ≤ PPRED ≤ NPRED ≤ COMP in positions touched;");
    println!("COMP additionally materializes tuples (its `tuples` column dominates).");
}
