//! # ftsl-corpus — synthetic corpora and query workloads
//!
//! The paper's evaluation (Section 6) uses the INEX 2003 collection
//! (500 MB, ~12 000 IEEE articles) plus synthetic data sets which the
//! authors report behave similarly. INEX is not redistributable, so this
//! crate generates deterministic synthetic corpora whose *model parameters*
//! — `cnodes`, `pos_per_cnode`, `entries_per_token`, `pos_per_entry` — are
//! directly controllable, which is exactly what the experiments sweep:
//!
//! * [`zipf::Zipf`] — Zipf-distributed vocabulary sampling (natural-language
//!   token frequencies);
//! * [`synth::SynthConfig`] — corpus generation with sentence/paragraph
//!   structure and *planted* query tokens whose per-entry position counts
//!   and document frequencies are controlled (Figures 7–8 sweep these);
//! * [`queries::QuerySpec`] — the experiment query generator: `toks_Q`
//!   tokens and `preds_Q` positive or negative predicates (Figures 5–6).

pub mod queries;
pub mod synth;
pub mod zipf;

pub use queries::{PredPolarity, QuerySpec};
pub use synth::{PlantedToken, SynthConfig};
pub use zipf::Zipf;
