//! Deterministic synthetic corpus generation.
//!
//! Documents are token streams with sentence/paragraph structure. Background
//! tokens are Zipf-distributed over a synthetic vocabulary (`t0`, `t1`, …);
//! *planted tokens* are inserted with controlled document frequency and
//! occurrences per document, giving direct control over the complexity-model
//! parameters `entries_per_token` and `pos_per_entry` that Figures 7–8
//! sweep.

use crate::zipf::Zipf;
use ftsl_model::{Corpus, Position};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A token planted into the corpus with controlled statistics.
#[derive(Clone, Debug)]
pub struct PlantedToken {
    /// Token text.
    pub token: String,
    /// Fraction of documents containing the token (document frequency /
    /// cnodes).
    pub doc_fraction: f64,
    /// Occurrences per containing document (`pos_per_entry` for this
    /// token's list).
    pub occurrences: usize,
}

/// Synthetic corpus configuration.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Number of context nodes (`cnodes`).
    pub cnodes: usize,
    /// Background vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent for background tokens.
    pub zipf_exponent: f64,
    /// Background tokens per document.
    pub tokens_per_doc: usize,
    /// Mean sentence length in tokens.
    pub sentence_len: usize,
    /// Sentences per paragraph.
    pub sentences_per_para: usize,
    /// Planted query tokens.
    pub planted: Vec<PlantedToken>,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            cnodes: 1000,
            vocabulary: 5000,
            zipf_exponent: 1.0,
            tokens_per_doc: 200,
            sentence_len: 15,
            sentences_per_para: 5,
            planted: Vec::new(),
            seed: 0xF75,
        }
    }
}

impl SynthConfig {
    /// A small corpus for tests.
    pub fn small() -> Self {
        SynthConfig {
            cnodes: 50,
            vocabulary: 200,
            tokens_per_doc: 40,
            ..Default::default()
        }
    }

    /// The INEX-2003-like preset used as the default experiment corpus: the
    /// collection has ~12 000 articles; the paper's default sweep value is
    /// 6 000 context nodes.
    pub fn inex_like(cnodes: usize) -> Self {
        SynthConfig {
            cnodes,
            vocabulary: 20_000,
            zipf_exponent: 1.05,
            tokens_per_doc: 400,
            sentence_len: 18,
            sentences_per_para: 6,
            planted: Vec::new(),
            seed: 0x1EEE_2003,
        }
    }

    /// Plant a token (builder style).
    pub fn plant(mut self, token: &str, doc_fraction: f64, occurrences: usize) -> Self {
        self.planted.push(PlantedToken {
            token: token.to_string(),
            doc_fraction,
            occurrences,
        });
        self
    }

    /// Generate the corpus.
    pub fn build(&self) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut corpus = Corpus::new();
        let background: Vec<ftsl_model::TokenId> = (0..self.vocabulary)
            .map(|i| corpus.intern(&format!("t{i}")))
            .collect();
        let planted_ids: Vec<ftsl_model::TokenId> = self
            .planted
            .iter()
            .map(|p| corpus.intern(&p.token))
            .collect();
        let zipf = Zipf::new(self.vocabulary, self.zipf_exponent);

        for doc_idx in 0..self.cnodes {
            // Decide which planted tokens appear here and at which slots.
            let total_background = self.tokens_per_doc;
            let mut planted_slots: Vec<(usize, ftsl_model::TokenId)> = Vec::new();
            for (p, &id) in self.planted.iter().zip(&planted_ids) {
                if rng.random::<f64>() < p.doc_fraction {
                    for _ in 0..p.occurrences {
                        let slot = rng.random_range(0..total_background.max(1));
                        planted_slots.push((slot, id));
                    }
                }
            }
            planted_slots.sort_by_key(|&(slot, _)| slot);

            let mut tokens = Vec::with_capacity(total_background + planted_slots.len());
            let mut offset = 0u32;
            let mut sentence = 0u32;
            let mut paragraph = 0u32;
            let mut in_sentence = 0usize;
            let mut in_para = 0usize;
            let mut planted_iter = planted_slots.into_iter().peekable();
            for slot in 0..total_background {
                while planted_iter.peek().is_some_and(|&(s, _)| s <= slot) {
                    let (_, id) = planted_iter.next().unwrap();
                    tokens.push((id, Position::new(offset, sentence, paragraph)));
                    offset += 1;
                }
                let tok = background[zipf.sample(&mut rng)];
                tokens.push((tok, Position::new(offset, sentence, paragraph)));
                offset += 1;
                in_sentence += 1;
                if in_sentence >= self.sentence_len {
                    in_sentence = 0;
                    sentence += 1;
                    in_para += 1;
                    if in_para >= self.sentences_per_para {
                        in_para = 0;
                        paragraph += 1;
                    }
                }
            }
            for (_, id) in planted_iter {
                tokens.push((id, Position::new(offset, sentence, paragraph)));
                offset += 1;
            }
            corpus.add_tokens(format!("synth{doc_idx}"), tokens);
        }
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthConfig::small().build();
        let b = SynthConfig::small().build();
        assert_eq!(a.len(), b.len());
        for (da, db) in a.documents().iter().zip(b.documents()) {
            assert_eq!(da.tokens, db.tokens);
        }
    }

    #[test]
    fn corpus_has_requested_shape() {
        let config = SynthConfig::small();
        let corpus = config.build();
        assert_eq!(corpus.len(), 50);
        let stats = corpus.stats();
        assert!(stats.pos_per_cnode >= 40);
        assert!(stats.vocabulary <= 200 + 1);
    }

    #[test]
    fn planted_tokens_hit_their_statistics() {
        let config = SynthConfig::small().plant("needle", 0.5, 4);
        let corpus = config.build();
        let index = IndexBuilder::new().build(&corpus);
        let needle = corpus.token_id("needle").unwrap();
        let list = index.list(needle);
        // ~50% of 50 docs, 4 occurrences each.
        assert!(
            list.num_entries() >= 15 && list.num_entries() <= 35,
            "{}",
            list.num_entries()
        );
        for i in 0..list.num_entries() {
            assert_eq!(list.positions_of(i).len(), 4);
        }
    }

    #[test]
    fn structure_ordinals_are_monotone() {
        let corpus = SynthConfig::small().build();
        for doc in corpus.documents() {
            for w in doc.tokens.windows(2) {
                assert!(w[0].1.offset < w[1].1.offset);
                assert!(w[0].1.sentence <= w[1].1.sentence);
                assert!(w[0].1.paragraph <= w[1].1.paragraph);
            }
        }
    }

    #[test]
    fn paragraphs_exist_in_longer_documents() {
        let corpus = SynthConfig::default().build();
        let doc = corpus.document(ftsl_model::NodeId(0));
        let max_para = doc.tokens.iter().map(|(_, p)| p.paragraph).max().unwrap();
        assert!(max_para >= 1, "expected multiple paragraphs");
    }
}
