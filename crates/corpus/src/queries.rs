//! Experiment query generation (Section 6.2).
//!
//! The experiments characterize queries by `toks_Q` (1–5, default 3) and
//! `preds_Q` (0–4, default 2), with *positive* predicate sets
//! (distance/ordered/samepara) and *negative* sets built as "the negation of
//! the positive predicates" — exactly how the paper constructed its
//! NPRED-NEG/COMP-NEG workloads.

use ftsl_lang::{parse, Mode, SurfaceQuery};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Whether generated predicates are positive or negative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredPolarity {
    /// distance / ordered / samepara.
    Positive,
    /// not_distance / not_ordered / not_samepara.
    Negative,
}

/// A query shape in the paper's experiment parameter space.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// `toks_Q`: number of query tokens (positions variables).
    pub toks: usize,
    /// `preds_Q`: number of predicates.
    pub preds: usize,
    /// Predicate polarity.
    pub polarity: PredPolarity,
    /// Distance bound used by distance predicates.
    pub distance: i64,
    /// Seed for predicate/shape choices.
    pub seed: u64,
}

impl QuerySpec {
    /// The paper's default query shape: 3 tokens, 2 predicates, positive.
    pub fn default_positive() -> Self {
        QuerySpec {
            toks: 3,
            preds: 2,
            polarity: PredPolarity::Positive,
            distance: 20,
            seed: 99,
        }
    }

    /// Render the query over the given planted tokens as COMP text.
    ///
    /// Shape: `SOME p0 .. SOME pk (p0 HAS 't0' AND ... AND pred(..) ...)`.
    /// With `preds = 0` and one token this degenerates to a BOOL query.
    pub fn render(&self, tokens: &[String]) -> String {
        assert!(self.toks >= 1);
        assert!(
            tokens.len() >= self.toks,
            "need {} planted tokens",
            self.toks
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut body: Vec<String> = (0..self.toks)
            .map(|i| format!("p{i} HAS '{}'", tokens[i]))
            .collect();
        let pred_templates_pos = ["distance", "ordered", "samepara"];
        let pred_templates_neg = ["not_distance", "not_ordered", "not_samepara"];
        for k in 0..self.preds {
            // Chain predicates over adjacent variable pairs so every
            // variable participates; fall back to (0, 1) for single-token
            // queries.
            let (a, b) = if self.toks >= 2 {
                let a = k % (self.toks - 1);
                (a, a + 1)
            } else {
                (0, 0)
            };
            let which = rng.random_range(0..3);
            let name = match self.polarity {
                PredPolarity::Positive => pred_templates_pos[which],
                PredPolarity::Negative => pred_templates_neg[which],
            };
            let pred = if name.ends_with("distance") {
                format!("{name}(p{a}, p{b}, {})", self.distance)
            } else {
                format!("{name}(p{a}, p{b})")
            };
            body.push(pred);
        }
        let mut q = body.join(" AND ");
        for i in (0..self.toks).rev() {
            q = format!("SOME p{i} ({q})");
        }
        q
    }

    /// Render a plain BOOL conjunction over the same tokens (the BOOL series
    /// of Figures 5–8 uses predicate-free queries).
    pub fn render_bool(&self, tokens: &[String]) -> String {
        tokens[..self.toks]
            .iter()
            .map(|t| format!("'{t}'"))
            .collect::<Vec<_>>()
            .join(" AND ")
    }

    /// Parse the rendered COMP query (convenience for benches).
    pub fn parse(&self, tokens: &[String]) -> SurfaceQuery {
        parse(&self.render(tokens), Mode::Comp).expect("generated query parses")
    }
}

/// The planted token names used by the benchmark corpora: `q0`, `q1`, ...
pub fn planted_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("q{i}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_lang::{classify, LanguageClass};
    use ftsl_predicates::PredicateRegistry;

    #[test]
    fn rendered_queries_parse_and_classify() {
        let tokens = planted_names(5);
        let reg = PredicateRegistry::with_builtins();

        let pos = QuerySpec {
            toks: 3,
            preds: 2,
            polarity: PredPolarity::Positive,
            distance: 10,
            seed: 1,
        };
        let q = pos.parse(&tokens);
        assert_eq!(classify(&q, &reg), LanguageClass::Ppred);

        let neg = QuerySpec {
            toks: 3,
            preds: 2,
            polarity: PredPolarity::Negative,
            distance: 10,
            seed: 1,
        };
        let q = neg.parse(&tokens);
        assert_eq!(classify(&q, &reg), LanguageClass::Npred);
    }

    #[test]
    fn zero_predicates_yield_pure_conjunctions() {
        let tokens = planted_names(4);
        let spec = QuerySpec {
            toks: 4,
            preds: 0,
            polarity: PredPolarity::Positive,
            distance: 5,
            seed: 3,
        };
        let q = spec.render(&tokens);
        assert!(!q.contains("distance") && !q.contains("ordered"));
        let b = spec.render_bool(&tokens);
        assert_eq!(b, "'q0' AND 'q1' AND 'q2' AND 'q3'");
        let reg = PredicateRegistry::with_builtins();
        assert_eq!(
            classify(&parse(&b, Mode::Bool).unwrap(), &reg),
            LanguageClass::BoolNoNeg
        );
    }

    #[test]
    fn predicates_chain_over_all_variables() {
        let tokens = planted_names(5);
        let spec = QuerySpec {
            toks: 5,
            preds: 4,
            polarity: PredPolarity::Positive,
            distance: 9,
            seed: 8,
        };
        let q = spec.render(&tokens);
        for v in ["p0", "p1", "p2", "p3", "p4"] {
            assert!(q.contains(v), "missing {v} in {q}");
        }
    }

    #[test]
    fn token_count_must_be_satisfiable() {
        let spec = QuerySpec {
            toks: 1,
            preds: 1,
            polarity: PredPolarity::Positive,
            distance: 4,
            seed: 0,
        };
        let tokens = planted_names(1);
        // Single-variable predicates degenerate to (p0, p0) but still parse.
        let q = spec.parse(&tokens);
        let reg = PredicateRegistry::with_builtins();
        let _ = classify(&q, &reg);
    }
}
