//! Zipf-distributed sampling over a finite vocabulary.

use rand::RngExt;

/// A Zipf(s) distribution over ranks `0..n`: `P(rank k) ∝ 1/(k+1)^s`.
/// Sampling is inverse-CDF via binary search over precomputed cumulative
/// weights — O(log n) per sample.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` ranks with exponent `s` (s = 0 is
    /// uniform; s ≈ 1 is natural language).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty vocabulary");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize so binary search can use a [0,1) uniform draw.
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_dominate() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 of Zipf(1) over 100 ranks carries ~19% of the mass.
        assert!(
            counts[0] > 2_500 && counts[0] < 6_000,
            "rank0 = {}",
            counts[0]
        );
    }

    #[test]
    fn uniform_when_exponent_is_zero() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1_500 && c < 2_500, "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn samples_are_always_in_range() {
        let zipf = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }
}
