//! Differential property test: [`ListCursor`] and
//! [`ftsl_index::block::BlockCursor`] agree on results **and access
//! counters** under random interleavings of `next_entry`/`seek`/`node`.
//!
//! The counters are the workspace's machine-independent cost model, so
//! layout comparisons are only meaningful if both cursors account the
//! same logical accesses identically: consumed entries must match
//! exactly, and consumed + skipped must cover the same ground. (This
//! test caught a real bug: the block cursor's deferred entry-run
//! accounting lost a run when a seek unpacked a new block before the
//! landing folded the old one.)

use ftsl_index::block::BlockList;
use ftsl_index::{ListCursor, PostingList};
use ftsl_model::{NodeId, Position};

fn sample(n: u32, stride: u32) -> PostingList {
    PostingList::from_entries(
        (0..n)
            .map(|i| (NodeId(i * stride), vec![Position::flat(i)]))
            .collect(),
    )
}

#[test]
fn counters_agree_on_random_op_sequences() {
    let mut state = 0x12345678u64;
    let mut rng = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as u32
    };
    for trial in 0..500 {
        let n = 1 + rng() % 400;
        let stride = 1 + rng() % 5;
        let list = sample(n, stride);
        let blocks = BlockList::from_posting(&list);
        let mut dec = ListCursor::new(&list);
        let mut blk = blocks.cursor();
        let mut ops = Vec::new();
        for _ in 0..40 {
            let op = rng() % 3;
            ops.push(op);
            match op {
                0 => {
                    assert_eq!(dec.next_entry(), blk.next_entry(), "trial {trial} {ops:?}");
                }
                1 => {
                    let t = NodeId(rng() % (n * stride + 10));
                    assert_eq!(dec.seek(t), blk.seek(t), "trial {trial} {ops:?}");
                }
                _ => {
                    assert_eq!(dec.node(), blk.node(), "trial {trial} {ops:?}");
                }
            }
            let (dc, bc) = (dec.counters(), blk.counters());
            assert_eq!(
                dc.entries, bc.entries,
                "entries diverge: trial {trial} {ops:?}"
            );
            assert_eq!(
                dc.entries + dc.skipped,
                bc.entries + bc.skipped,
                "consumed+skipped diverge: trial {trial} {ops:?}"
            );
        }
    }
}
