//! Property tests for the block-compressed posting layout: compression is
//! lossless under iteration, `seek` agrees with naive scanning, and the
//! versioned persistence format round-trips while rejecting unknown
//! versions.

use ftsl_index::block::BlockList;
use ftsl_index::{persist, IndexBuilder, ListCursor, PostingList};
use ftsl_model::{Corpus, NodeId, Position};
use proptest::prelude::*;

/// Random strictly-increasing entry lists with structured positions.
fn arb_entries() -> impl Strategy<Value = Vec<(NodeId, Vec<Position>)>> {
    proptest::collection::vec(
        (
            1u32..40,
            proptest::collection::vec((1u32..9, 0u32..2, 0u32..2), 1..6),
        ),
        0..400,
    )
    .prop_map(|raw| {
        let mut node = 0u32;
        raw.into_iter()
            .map(|(gap, pos_deltas)| {
                node += gap;
                let mut offset = 0u32;
                let mut sentence = 0u32;
                let mut paragraph = 0u32;
                let positions = pos_deltas
                    .into_iter()
                    .map(|(doff, dsent, dpara)| {
                        offset += doff;
                        sentence += dsent;
                        paragraph += dpara;
                        Position::new(offset, sentence, paragraph)
                    })
                    .collect();
                (NodeId(node), positions)
            })
            .collect()
    })
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(192)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn compression_roundtrips_exactly(entries in arb_entries()) {
        let list = PostingList::from_entries(entries);
        let blocks = BlockList::from_posting(&list);
        prop_assert_eq!(blocks.num_entries(), list.num_entries());
        prop_assert_eq!(blocks.num_positions(), list.num_positions());
        // Decode via cursor iteration must reproduce every entry and
        // position, in order.
        let mut cur = blocks.cursor();
        for i in 0..list.num_entries() {
            prop_assert_eq!(cur.next_entry(), Some(list.node_of(i)));
            prop_assert_eq!(cur.positions(), list.positions_of(i));
        }
        prop_assert_eq!(cur.next_entry(), None);
        // And the whole-list decode helper agrees.
        prop_assert_eq!(blocks.to_posting(), list);
    }

    #[test]
    fn seek_agrees_with_naive_scan(
        entries in arb_entries(),
        targets in proptest::collection::vec(0u32..20_000, 1..30),
    ) {
        let list = PostingList::from_entries(entries);
        let blocks = BlockList::from_posting(&list);
        let mut sorted = targets.clone();
        sorted.sort_unstable();

        let mut block_cur = blocks.cursor();
        let mut list_cur = ListCursor::new(&list);
        // Naive reference: linear scan over the decoded entries.
        let mut naive_at = 0usize;

        for t in sorted {
            let target = NodeId(t);
            while naive_at < list.num_entries() && list.node_of(naive_at) < target {
                naive_at += 1;
            }
            let expected =
                (naive_at < list.num_entries()).then(|| list.node_of(naive_at));
            prop_assert_eq!(block_cur.seek(target), expected, "block seek to {}", t);
            prop_assert_eq!(list_cur.seek(target), expected, "gallop seek to {}", t);
            if expected.is_some() {
                // Positions at the landing entry must match the list's.
                prop_assert_eq!(block_cur.positions(), list.positions_of(naive_at));
                prop_assert_eq!(list_cur.positions(), list.positions_of(naive_at));
            }
        }
        // Monotone forward-only cursors never decode an entry twice: decoded
        // plus skipped never exceeds the list length (+1 slack for the
        // landing probe per seek is already included in `entries`).
        let c = block_cur.counters();
        prop_assert!(c.entries + c.skipped <= list.num_entries() as u64);
        let c = list_cur.counters();
        prop_assert!(c.entries + c.skipped <= list.num_entries() as u64);
    }

    #[test]
    fn persisted_v3_roundtrips_and_rejects_other_versions(
        docs in proptest::collection::vec(
            proptest::collection::vec(0usize..7, 0..30), 0..12),
        fake_version in 9u32..1000,
    ) {
        const VOCAB: [&str; 7] = ["ant", "bee", "cat", "dog", "elk", "fox", "gnu"];
        let texts: Vec<String> = docs
            .into_iter()
            .map(|toks| {
                toks.into_iter().map(|t| VOCAB[t]).collect::<Vec<_>>().join(" ")
            })
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);

        let bytes = persist::encode(&index);
        let decoded = persist::decode(bytes.clone()).expect("v3 roundtrip");
        prop_assert_eq!(decoded.stats(), index.stats());
        for t in 0..corpus.interner().len() {
            let tok = ftsl_model::TokenId(t as u32);
            prop_assert_eq!(decoded.list(tok), index.list(tok));
            // Block lists compare bit-exactly, *including* the per-block
            // impact metadata (BlockMeta::max_tf is part of PartialEq).
            prop_assert_eq!(decoded.block_list(tok), index.block_list(tok));
            prop_assert_eq!(decoded.block_list(tok).max_tf(), index.block_list(tok).max_tf());
        }
        prop_assert_eq!(decoded.any(), index.any());

        // Corrupting the version field must fail loudly, not misparse:
        // retired v1–v4, the manifest's 6/8, and any unknown version decode
        // to BadVersion, never a panic or a silent misparse. (5 and 7 are
        // the readable bare-index versions and are excluded here.)
        let mut raw = bytes.as_slice().to_vec();
        for version in [1u32, 2, 3, 4, 6, 8, fake_version] {
            raw[4..8].copy_from_slice(&version.to_le_bytes());
            let err = persist::decode(&raw[..]).expect_err("non-v3 version");
            prop_assert_eq!(err, persist::PersistError::BadVersion(version));
        }
    }

    /// Truncating a valid v3 image at an arbitrary byte boundary must
    /// produce an error — never a panic, never an `Ok`.
    #[test]
    fn truncated_v3_buffers_error_not_panic(cut_permille in 0usize..1000) {
        let corpus = Corpus::from_texts(&["hot hot hot cold", "hot warm", "cold cold"]);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = persist::encode(&index);
        let cut = bytes.len() * cut_permille / 1000;
        prop_assert!(persist::decode(bytes.slice(0..cut)).is_err());
    }
}
