//! Index invariants on random corpora: the inverted lists are exactly the
//! transpose of the documents, `IL_ANY` covers every position, the
//! Section 5.1.2 size parameters are the true maxima, and binary
//! persistence is lossless.

use ftsl_index::{persist, IndexBuilder};
use ftsl_model::{Corpus, TokenId};
use proptest::prelude::*;

const VOCAB: [&str; 5] = ["ant", "bee", "cat", "dog", "elk"];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..VOCAB.len() + 2, 0..25), 0..10).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| if t < VOCAB.len() { VOCAB[t] } else { "." })
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn index_is_the_exact_transpose_of_the_corpus(corpus in arb_corpus()) {
        let index = IndexBuilder::new().build(&corpus);

        // Every document occurrence appears in its token's list.
        for doc in corpus.documents() {
            for &(tok, pos) in &doc.tokens {
                let list = index.list(tok);
                let entry = (0..list.num_entries())
                    .find(|&i| list.node_of(i) == doc.node)
                    .expect("entry for containing node");
                prop_assert!(list.positions_of(entry).contains(&pos));
            }
        }

        // Every list position appears in the corpus, with the right token.
        for t in 0..corpus.interner().len() {
            let tok = TokenId(t as u32);
            for (node, positions) in index.list(tok).iter() {
                for p in positions {
                    prop_assert_eq!(corpus.token_at(node, *p), Some(tok));
                }
            }
        }

        // IL_ANY covers exactly the non-empty documents' positions.
        let any_total: usize = index.any().iter().map(|(_, ps)| ps.len()).sum();
        let corpus_total: usize = corpus.documents().iter().map(|d| d.len()).sum();
        prop_assert_eq!(any_total, corpus_total);
    }

    #[test]
    fn stats_are_true_maxima(corpus in arb_corpus()) {
        let index = IndexBuilder::new().build(&corpus);
        let s = index.stats();
        prop_assert_eq!(s.cnodes, corpus.len());
        let true_pos_per_cnode =
            corpus.documents().iter().map(|d| d.len()).max().unwrap_or(0);
        prop_assert_eq!(s.pos_per_cnode, true_pos_per_cnode);
        let true_entries = (0..corpus.interner().len())
            .map(|t| index.df(TokenId(t as u32)))
            .max()
            .unwrap_or(0);
        prop_assert_eq!(s.entries_per_token, true_entries);
    }

    #[test]
    fn persistence_roundtrip_is_lossless(corpus in arb_corpus()) {
        let index = IndexBuilder::new().build(&corpus);
        let decoded = persist::decode(persist::encode(&index)).expect("decodes");
        prop_assert_eq!(decoded.stats(), index.stats());
        for t in 0..corpus.interner().len() {
            let tok = TokenId(t as u32);
            prop_assert_eq!(decoded.list(tok), index.list(tok));
        }
        prop_assert_eq!(decoded.any(), index.any());
    }

    #[test]
    fn cursor_walk_equals_list_contents(corpus in arb_corpus()) {
        let index = IndexBuilder::new().build(&corpus);
        for t in 0..corpus.interner().len() {
            let tok = TokenId(t as u32);
            let list = index.list(tok);
            let mut cursor = index.cursor(tok);
            let mut i = 0usize;
            while let Some(node) = cursor.next_entry() {
                prop_assert_eq!(node, list.node_of(i));
                prop_assert_eq!(cursor.positions(), list.positions_of(i));
                i += 1;
            }
            prop_assert_eq!(i, list.num_entries());
        }
    }
}
