//! LEB128 variable-length integer coding.
//!
//! The block-compressed posting layout ([`crate::block`]) stores node-id and
//! position deltas as unsigned LEB128 varints: 7 value bits per byte, high
//! bit set on every byte except the last. Small deltas — the common case by
//! construction, since both node ids and offsets are sorted — take one byte.

/// Append `v` to `out` as an unsigned LEB128 varint (1–5 bytes).
#[inline]
pub fn put_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `v` to `out` as an unsigned LEB128 varint (1–10 bytes).
#[inline]
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a varint at `*pos`, advancing `*pos` past it. Returns `None` on
/// truncated input or a value that does not fit in a `u32`.
///
/// The one-byte case — the overwhelming majority for sorted deltas — is an
/// explicit fast path; the multi-byte continuation lives out of line so the
/// hot decode loops stay small.
#[inline]
pub fn get_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    let byte = *data.get(*pos)?;
    *pos += 1;
    if byte & 0x80 == 0 {
        return Some(u32::from(byte));
    }
    get_u32_tail(data, pos, u32::from(byte & 0x7f))
}

/// Continuation of [`get_u32`] past the first byte.
#[cold]
fn get_u32_tail(data: &[u8], pos: &mut usize, first: u32) -> Option<u32> {
    let mut v: u32 = first;
    let mut shift = 7u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        let low = (byte & 0x7f) as u32;
        if shift >= 32 || (shift == 28 && low > 0x0f) {
            return None;
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Decode a 64-bit varint at `*pos`, advancing `*pos` past it.
#[inline]
pub fn get_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        let low = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && low > 1) {
            return None;
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Encoded length of `v` in bytes, without materializing it.
#[inline]
pub fn len_u32(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_boundaries() {
        let cases = [
            0,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            u32::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            buf.clear();
            put_u32(&mut buf, v);
            assert_eq!(buf.len(), len_u32(v), "length of {v}");
            let mut pos = 0;
            assert_eq!(get_u32(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn u64_roundtrip_boundaries() {
        let cases = [0u64, 0x7f, 0x80, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &cases {
            buf.clear();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_and_overlong_inputs_fail() {
        let mut pos = 0;
        assert_eq!(get_u32(&[0x80], &mut pos), None); // truncated
        let mut pos = 0;
        assert_eq!(get_u32(&[0x80, 0x80, 0x80, 0x80, 0x7f], &mut pos), None); // > u32
        let mut pos = 0;
        assert_eq!(get_u32(&[], &mut pos), None);
    }

    #[test]
    fn sequential_values_pack_densely() {
        let mut buf = Vec::new();
        for v in 0u32..300 {
            put_u32(&mut buf, v);
        }
        let mut pos = 0;
        for v in 0u32..300 {
            assert_eq!(get_u32(&buf, &mut pos), Some(v));
        }
        // 128 one-byte values + 172 two-byte values.
        assert_eq!(buf.len(), 128 + 172 * 2);
    }
}
