//! # ftsl-index — inverted-list substrate
//!
//! Implements the paper's data model for query evaluation (Section 5.1.2):
//! for every token `tok` an inverted list `IL_tok` of `(cn, PosList)` entries
//! ordered by context-node id, with positions ordered by occurrence; plus
//! `IL_ANY`, the list of *all* positions of every node.
//!
//! Access is deliberately restricted to the paper's **sequential cursor
//! API** — `nextEntry()` and `getPositions()` ([`ListCursor`]) — and every
//! cursor counts the entries and positions it touches, so complexity claims
//! (Figure 3) can be validated with machine-independent counters.

pub mod builder;
pub mod counters;
pub mod cursor;
pub mod index;
pub mod persist;
pub mod postings;
pub mod stats;

pub use builder::IndexBuilder;
pub use counters::AccessCounters;
pub use cursor::ListCursor;
pub use index::InvertedIndex;
pub use postings::PostingList;
pub use stats::IndexStats;
