//! # ftsl-index — inverted-list substrate
//!
//! Implements the paper's data model for query evaluation (Section 5.1.2):
//! for every token `tok` an inverted list `IL_tok` of `(cn, PosList)` entries
//! ordered by context-node id, with positions ordered by occurrence; plus
//! `IL_ANY`, the list of *all* positions of every node.
//!
//! Access goes through the paper's **sequential cursor API** —
//! `nextEntry()` and `getPositions()` ([`ListCursor`]) — extended with one
//! operation the paper's cost model doesn't have: `seek(node)`
//! ([`ListCursor::seek`], [`block::BlockCursor::seek`]), which jumps to the
//! first entry at or past a node id. Every cursor counts the entries and
//! positions it touches — and, separately, the entries a seek bypasses — so
//! complexity claims (Figure 3) and skip-layout wins can both be validated
//! with machine-independent counters ([`AccessCounters`]).
//!
//! Physically, every list exists in two forms: the decoded columnar
//! [`PostingList`] and the block-compressed [`block::BlockList`]
//! (bit-packed frame-of-reference blocks of [`block::BLOCK_ENTRIES`]
//! entries — see [`bitpack`] — headed by an implicit skip list, decoded a
//! whole block at a time). The compressed form is what [`persist`] stores
//! on disk; [`IndexBuilder`] produces both, sharding construction across
//! threads for large corpora.
//!
//! ## Live maintenance
//!
//! Everything above describes one frozen index. The [`live`] module turns
//! it into an LSM-style *serving* structure: a [`live::LiveIndex`] accepts
//! `add_document`/`delete_node`, seals write-buffer contents into immutable
//! segments (each an ordinary [`InvertedIndex`]), tombstones deletes in
//! per-segment bitmaps ([`segment::DeleteSet`]), compacts segments with a
//! background tiered merge, and serves readers through point-in-time
//! [`live::Snapshot`]s. [`manifest`] persists the whole segment set
//! atomically (format v8, embedding v7 segment images whose optional
//! sections carry the [`pair`] auxiliary index).

#![warn(missing_docs)]

pub mod bitpack;
pub mod block;
pub mod builder;
pub mod counters;
pub mod cursor;
pub mod index;
pub mod live;
pub mod manifest;
pub mod pair;
pub mod persist;
pub mod postings;
pub mod residency;
pub mod scored;
pub mod segment;
pub mod stats;
pub mod varint;

pub use block::{scratch_pool_stats, BlockCursor, BlockList, ScratchPoolStats};
pub use builder::IndexBuilder;
pub use counters::AccessCounters;
pub use cursor::{ListCursor, PostingCursor};
pub use index::{IndexLayout, InvertedIndex, MemoryFootprint};
pub use live::{LiveConfig, LiveIndex, SegmentReport, Snapshot, SnapshotSegment};
pub use pair::{PairConfig, PairCursor, PairIndex, PairList, PairLookup};
pub use postings::PostingList;
pub use residency::{DecodeCacheStats, DecodedView, Residency};
pub use scored::{EntryScorer, ScoredBlocks, ScoredCursor, ScoredList};
pub use segment::{DeleteFilteredCursor, DeleteSet, MemSegment, SegmentData};
pub use stats::IndexStats;
