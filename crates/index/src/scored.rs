//! Score-at-the-cursor: scored views over the physical posting cursors.
//!
//! The paper's Section 5.3 extension attaches a score to every inverted-list
//! entry. This module makes that attachment *streaming*: a [`ScoredCursor`]
//! walks a posting list exactly like the unscored cursors (`next_entry`,
//! `seek`) while also exposing the entry's score and — crucially — **score
//! upper bounds** derived from the impact metadata stored in the index:
//!
//! * the list-level bound ([`ScoredCursor::max_score_list`]), from the
//!   list's largest term frequency — what MaxScore-style pruning uses to
//!   demote whole lists to probe-only;
//! * the block-level bound ([`ScoredCursor::max_score_current_block`] /
//!   [`ScoredCursor::max_score_at`]), from each compressed block's
//!   [`crate::block::BlockMeta::max_tf`] header — what block-max pruning
//!   uses to skip whole blocks ([`ScoredCursor::skip_block`]) without
//!   decoding an entry.
//!
//! The cursor itself is scoring-model-agnostic: the model contributes an
//! [`EntryScorer`], which turns `(node, term frequency)` into a score and a
//! maximal term frequency into a bound. TF-IDF and probabilistic scorers
//! live in `ftsl-scoring`; this layer only guarantees that whatever bound
//! the scorer reports is respected by the skipping machinery.
//!
//! Both physical layouts implement the same trait: [`ScoredList`] wraps the
//! decoded columnar cursor (no block structure — the whole list is one
//! "block", so pruning degrades to list-level MaxScore), [`ScoredBlocks`]
//! wraps the compressed cursor and gets true per-block bounds.

use crate::block::{BlockCursor, BlockList};
use crate::counters::AccessCounters;
use crate::cursor::ListCursor;
use crate::postings::PostingList;
use ftsl_model::NodeId;

/// A per-list scoring rule: what one inverted-list entry contributes.
///
/// Implementations must keep `bound` consistent with `score`:
/// `bound(m) >= score(n, t)` for every node `n` and every `t <= m`. The
/// pruning machinery in `ftsl-scoring` relies on this monotone-bound
/// contract to skip blocks soundly.
pub trait EntryScorer {
    /// Score of the entry for `node` with term frequency `tf`.
    fn score(&self, node: NodeId, tf: u32) -> f64;
    /// Upper bound on [`Self::score`] over *every* node and every term
    /// frequency `<= max_tf`.
    fn bound(&self, max_tf: u32) -> f64;
}

/// The scored cursor contract: the paper's sequential cursor plus `seek`,
/// entry scores, and impact-derived score upper bounds.
///
/// ```
/// use ftsl_index::block::BlockList;
/// use ftsl_index::scored::{EntryScorer, ScoredBlocks, ScoredCursor};
/// use ftsl_index::PostingList;
/// use ftsl_model::{NodeId, Position};
///
/// /// One point per occurrence, whoever you are.
/// struct PerOccurrence;
/// impl EntryScorer for PerOccurrence {
///     fn score(&self, _node: NodeId, tf: u32) -> f64 { tf as f64 }
///     fn bound(&self, max_tf: u32) -> f64 { max_tf as f64 }
/// }
///
/// // 400 single-occurrence entries, then one 5-occurrence entry.
/// let mut entries: Vec<(NodeId, Vec<Position>)> = (0..400)
///     .map(|i| (NodeId(i), vec![Position::flat(0)]))
///     .collect();
/// entries.push((NodeId(400), (0..5).map(Position::flat).collect()));
/// let blocks = BlockList::from_posting(&PostingList::from_entries(entries));
///
/// let mut cur = ScoredBlocks::new(&blocks, PerOccurrence);
/// assert_eq!(cur.max_score_list(), 5.0);
/// // The first block holds only tf=1 entries: its bound is 1.0, so a
/// // top-k search that already has a threshold above 1.0 skips it whole.
/// assert_eq!(cur.max_score_current_block(), 1.0);
/// let landed = cur.skip_block();
/// assert_eq!(landed, Some(NodeId(128)));
/// assert!(cur.counters().blocks_skipped >= 1);
/// ```
pub trait ScoredCursor {
    /// The node id of the current entry, if positioned on one.
    fn node(&self) -> Option<NodeId>;
    /// Advance to the next entry and return its node id.
    fn next_entry(&mut self) -> Option<NodeId>;
    /// Advance to the first entry with node id ≥ `target`.
    fn seek(&mut self, target: NodeId) -> Option<NodeId>;
    /// Score of the current entry. Takes `&mut self` because the block
    /// layout decodes its tf column lazily, on the block's first score.
    ///
    /// # Panics
    /// Panics if the cursor is not positioned on an entry.
    fn score(&mut self) -> f64;
    /// Upper bound on the score of any entry in the current block (the
    /// whole list on the decoded layout); 0 when exhausted.
    fn max_score_current_block(&self) -> f64;
    /// Upper bound on the score of any entry in the list.
    fn max_score_list(&self) -> f64;
    /// Upper bound on the score this cursor could contribute for node
    /// `target`, from its current position: 0 if the cursor has passed
    /// `target` or no remaining entry can reach it, else the bound of the
    /// block `target` would land in. Touches only skip headers — never
    /// decodes entries.
    fn max_score_at(&self, target: NodeId) -> f64;
    /// Skip the rest of the current block (whole list on the decoded
    /// layout) and land on the first entry of the next one, returning its
    /// node id.
    fn skip_block(&mut self) -> Option<NodeId>;
    /// True once every entry has been consumed or skipped.
    fn exhausted(&self) -> bool;
    /// Access counters accumulated by the underlying cursor.
    fn counters(&self) -> AccessCounters;
}

/// [`ScoredCursor`] over the decoded columnar layout.
pub struct ScoredList<'a, S: EntryScorer> {
    list: &'a PostingList,
    cur: ListCursor<'a>,
    scorer: S,
    list_bound: f64,
}

impl<'a, S: EntryScorer> ScoredList<'a, S> {
    /// Open a scored cursor at the start of `list`.
    pub fn new(list: &'a PostingList, scorer: S) -> Self {
        let list_bound = if list.is_empty() {
            0.0
        } else {
            scorer.bound(list.max_positions_per_entry() as u32)
        };
        ScoredList {
            list,
            cur: ListCursor::new(list),
            scorer,
            list_bound,
        }
    }
}

impl<S: EntryScorer> ScoredCursor for ScoredList<'_, S> {
    fn node(&self) -> Option<NodeId> {
        self.cur.node()
    }

    fn next_entry(&mut self) -> Option<NodeId> {
        self.cur.next_entry()
    }

    fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        self.cur.seek(target)
    }

    fn score(&mut self) -> f64 {
        let node = self.cur.node().expect("cursor not positioned on an entry");
        self.scorer.score(node, self.cur.tf())
    }

    fn max_score_current_block(&self) -> f64 {
        if self.cur.exhausted() {
            0.0
        } else {
            self.list_bound
        }
    }

    fn max_score_list(&self) -> f64 {
        self.list_bound
    }

    fn max_score_at(&self, target: NodeId) -> f64 {
        if self.cur.exhausted() {
            return 0.0;
        }
        if let Some(cur) = self.cur.node() {
            if cur > target {
                return 0.0;
            }
        }
        match self.list.node_ids().last() {
            Some(&last) if last >= target => self.list_bound,
            _ => 0.0,
        }
    }

    fn skip_block(&mut self) -> Option<NodeId> {
        // No block structure: the whole list is one block.
        self.cur.skip_remaining();
        None
    }

    fn exhausted(&self) -> bool {
        self.cur.exhausted()
    }

    fn counters(&self) -> AccessCounters {
        self.cur.counters()
    }
}

/// [`ScoredCursor`] over the block-compressed layout, with true per-block
/// bounds from the [`crate::block::BlockMeta::max_tf`] headers.
pub struct ScoredBlocks<'a, S: EntryScorer> {
    cur: BlockCursor<'a>,
    scorer: S,
    list_bound: f64,
}

impl<'a, S: EntryScorer> ScoredBlocks<'a, S> {
    /// Open a scored cursor at the start of `list`.
    pub fn new(list: &'a BlockList, scorer: S) -> Self {
        let list_bound = if list.is_empty() {
            0.0
        } else {
            scorer.bound(list.max_tf())
        };
        ScoredBlocks {
            cur: list.cursor(),
            scorer,
            list_bound,
        }
    }
}

impl<S: EntryScorer> ScoredCursor for ScoredBlocks<'_, S> {
    fn node(&self) -> Option<NodeId> {
        self.cur.node()
    }

    fn next_entry(&mut self) -> Option<NodeId> {
        self.cur.next_entry()
    }

    fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        self.cur.seek(target)
    }

    fn score(&mut self) -> f64 {
        let node = self.cur.node().expect("cursor not positioned on an entry");
        self.scorer.score(node, self.cur.tf())
    }

    fn max_score_current_block(&self) -> f64 {
        match self.cur.block_max_tf() {
            0 => 0.0,
            tf => self.scorer.bound(tf),
        }
    }

    fn max_score_list(&self) -> f64 {
        self.list_bound
    }

    fn max_score_at(&self, target: NodeId) -> f64 {
        if let Some(cur) = self.cur.node() {
            if cur > target {
                return 0.0;
            }
        }
        match self.cur.peek_max_tf_at(target) {
            Some(tf) => self.scorer.bound(tf),
            None => 0.0,
        }
    }

    fn skip_block(&mut self) -> Option<NodeId> {
        self.cur.skip_block()
    }

    fn exhausted(&self) -> bool {
        self.cur.exhausted()
    }

    fn counters(&self) -> AccessCounters {
        self.cur.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_ENTRIES;
    use ftsl_model::Position;

    /// tf-proportional scores, independent of the node.
    struct TfScorer;
    impl EntryScorer for TfScorer {
        fn score(&self, _node: NodeId, tf: u32) -> f64 {
            tf as f64
        }
        fn bound(&self, max_tf: u32) -> f64 {
            max_tf as f64
        }
    }

    /// 3 blocks; tf rises with the entry index so later blocks have higher
    /// bounds (first block max_tf = 1, second 2, third 3).
    fn graded_list() -> PostingList {
        PostingList::from_entries(
            (0..300u32)
                .map(|i| {
                    let tf = 1 + i / BLOCK_ENTRIES as u32;
                    (NodeId(2 * i), (0..tf).map(Position::flat).collect())
                })
                .collect(),
        )
    }

    #[test]
    fn both_layouts_agree_on_scores_and_list_bound() {
        let list = graded_list();
        let blocks = BlockList::from_posting(&list);
        let mut dec = ScoredList::new(&list, TfScorer);
        let mut blk = ScoredBlocks::new(&blocks, TfScorer);
        assert_eq!(dec.max_score_list(), 3.0);
        assert_eq!(blk.max_score_list(), 3.0);
        while let Some(n) = dec.next_entry() {
            assert_eq!(blk.next_entry(), Some(n));
            assert_eq!(dec.score(), blk.score());
            assert!(dec.score() <= dec.max_score_list());
            assert!(blk.score() <= blk.max_score_current_block());
        }
        assert_eq!(blk.next_entry(), None);
    }

    #[test]
    fn block_bounds_are_tighter_than_list_bound() {
        let list = graded_list();
        let blocks = BlockList::from_posting(&list);
        let mut cur = ScoredBlocks::new(&blocks, TfScorer);
        cur.next_entry();
        assert_eq!(cur.max_score_current_block(), 1.0); // block 0: tf = 1
        assert_eq!(cur.max_score_list(), 3.0);
        // Probing a node in the last block sees that block's bound.
        assert_eq!(cur.max_score_at(NodeId(2 * 299)), 3.0);
        // Probing past the end sees nothing.
        assert_eq!(cur.max_score_at(NodeId(10_000)), 0.0);
    }

    #[test]
    fn skip_block_lands_on_next_block_and_counts() {
        let list = graded_list();
        let blocks = BlockList::from_posting(&list);
        let mut cur = ScoredBlocks::new(&blocks, TfScorer);
        cur.next_entry();
        let landed = cur.skip_block();
        assert_eq!(landed, Some(NodeId(2 * BLOCK_ENTRIES as u32)));
        let c = cur.counters();
        assert_eq!(c.blocks_skipped, 1);
        assert_eq!(c.skipped, BLOCK_ENTRIES as u64 - 1);
        assert_eq!(c.entries, 2); // first entry + landing entry
                                  // Two more skips exhaust the list.
        assert!(cur.skip_block().is_some());
        assert_eq!(cur.skip_block(), None);
        assert!(cur.exhausted());
        assert_eq!(cur.skip_block(), None); // idempotent at the end
    }

    #[test]
    fn decoded_layout_degrades_to_list_level_pruning() {
        let list = graded_list();
        let mut cur = ScoredList::new(&list, TfScorer);
        cur.next_entry();
        assert_eq!(cur.max_score_current_block(), cur.max_score_list());
        assert_eq!(cur.max_score_at(NodeId(4)), 3.0);
        assert_eq!(cur.skip_block(), None);
        assert!(cur.exhausted());
        assert_eq!(cur.counters().skipped, 299);
        assert_eq!(cur.counters().blocks_skipped, 0);
    }

    #[test]
    fn empty_lists_bound_to_zero() {
        let list = PostingList::empty();
        let blocks = BlockList::from_posting(&list);
        let mut dec = ScoredList::new(&list, TfScorer);
        let mut blk = ScoredBlocks::new(&blocks, TfScorer);
        assert_eq!(dec.max_score_list(), 0.0);
        assert_eq!(blk.max_score_list(), 0.0);
        assert_eq!(dec.next_entry(), None);
        assert_eq!(blk.next_entry(), None);
        assert_eq!(blk.max_score_current_block(), 0.0);
    }

    #[test]
    fn max_score_at_is_zero_behind_the_cursor() {
        let list = graded_list();
        let blocks = BlockList::from_posting(&list);
        let mut cur = ScoredBlocks::new(&blocks, TfScorer);
        cur.seek(NodeId(300));
        assert_eq!(cur.max_score_at(NodeId(10)), 0.0);
        let mut dec = ScoredList::new(&list, TfScorer);
        dec.seek(NodeId(300));
        assert_eq!(dec.max_score_at(NodeId(10)), 0.0);
    }
}
