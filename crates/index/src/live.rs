//! The live index: LSM-style incremental maintenance over sealed segments.
//!
//! The paper evaluates every engine over a collection built once and
//! frozen. [`LiveIndex`] removes that restriction without touching the
//! engines: documents are added to a mutable in-memory write buffer
//! ([`crate::segment::MemSegment`]), flushes seal the buffer into immutable
//! segments (each one an ordinary [`crate::InvertedIndex`] over a local
//! corpus), deletes mark per-segment tombstone bitmaps, and a background
//! tiered-merge thread compacts small segments into bigger ones. Readers
//! never see any of this mid-flight: [`LiveIndex::snapshot`] returns a
//! cheap point-in-time [`Snapshot`] (a handful of `Arc` clones) whose
//! segments, tombstones, and corpus statistics are frozen — later adds,
//! deletes, flushes, and merges leave every held snapshot untouched.
//!
//! ## Global node ids
//!
//! Every added document gets the next global node id, forever. A segment
//! records which global ids its local ids `0..n` stand for
//! ([`crate::segment::SegmentData::globals`]); unmerged segments own
//! contiguous ranges, merged segments keep the surviving ids (holes where
//! tombstoned documents were dropped). Segments are kept ordered by their
//! disjoint global ranges, so per-segment results concatenate into globally
//! ascending result lists.
//!
//! ## Vocabulary
//!
//! One token vocabulary grows monotonically for the whole live index: the
//! write buffer's corpus owns it, and each sealed segment carries a clone
//! taken at seal time. Token ids are therefore *prefix-consistent* — the
//! same id means the same string in every segment that knows it — which is
//! what lets merged corpus statistics (`df`, `db_size`) be summed per token
//! id across segments.

use crate::segment::{DeleteSet, MemSegment, SegmentData};
use ftsl_model::{Corpus, Document, NodeId, TokenInterner, Tokenizer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Tuning knobs for a [`LiveIndex`].
#[derive(Clone, Copy, Debug)]
pub struct LiveConfig {
    /// Seal the write buffer automatically once it holds this many
    /// documents.
    pub flush_threshold: usize,
    /// Tiered merge fan-in: an adjacent run of this many sealed segments in
    /// the same size tier is compacted into one.
    pub merge_fanin: usize,
    /// A segment whose tombstoned fraction reaches this ratio is rewritten
    /// on its own (dropping the dead documents) even without same-tier
    /// neighbours.
    pub merge_tombstone_ratio: f64,
    /// Cost-driven compaction trigger: when the *measured* per-segment
    /// query cost (decoded-entry counters from a cheap first-block probe of
    /// each segment's hottest list) exceeds this multiple of what one
    /// merged segment would pay for the same probe, every sealed segment is
    /// compacted into one — even when the size tiers see nothing to do.
    /// This is what catches the "many medium segments, each forcing its own
    /// block decode" shape that size tiers are blind to. `<= 0` disables
    /// the probe.
    pub merge_cost_ratio: f64,
    /// Run the tiered merge policy on a background thread. When `false`,
    /// merges happen only through [`LiveIndex::merge_all`] /
    /// [`LiveIndex::maybe_merge`] — the deterministic mode tests use.
    pub background_merge: bool,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            flush_threshold: 1024,
            merge_fanin: 4,
            merge_tombstone_ratio: 0.5,
            merge_cost_ratio: 3.0,
            background_merge: true,
        }
    }
}

/// One sealed segment plus its copy-on-write tombstone bitmap.
#[derive(Clone, Debug)]
pub(crate) struct SealedEntry {
    pub(crate) data: Arc<SegmentData>,
    pub(crate) deletes: Arc<DeleteSet>,
}

/// Mutable state behind the lock.
#[derive(Debug)]
struct State {
    mem: MemSegment,
    /// Tombstones for the buffered documents (copy-on-write like the sealed
    /// ones, so snapshots freeze them too).
    mem_deletes: Arc<DeleteSet>,
    /// Cached sealed view of the current buffer contents, so consecutive
    /// snapshots of an unchanged buffer don't rebuild its index. Valid iff
    /// it covers exactly `mem.len()` documents.
    mem_view: Option<Arc<SegmentData>>,
    /// Sealed segments ordered by their disjoint global-id ranges.
    sealed: Vec<SealedEntry>,
    next_global: u32,
    next_segment_id: u64,
    /// Bumped on every mutation; snapshots carry the version they saw.
    version: u64,
    /// At most one merge builds at a time (background or synchronous).
    merging: bool,
    /// Merges committed over the index's lifetime (metrics surface).
    merges_completed: u64,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Wakes the background merger (new work) and synchronous mergers
    /// waiting for `merging` to clear.
    wake: Condvar,
    shutdown: AtomicBool,
    config: LiveConfig,
}

/// A dynamically maintained, segmented index over one growing collection.
///
/// All methods take `&self`: mutations synchronize internally, so a
/// `LiveIndex` can be shared across threads (the background merger is one
/// such thread).
///
/// ```
/// use ftsl_index::live::{LiveConfig, LiveIndex};
///
/// let live = LiveIndex::with_config(LiveConfig {
///     background_merge: false,
///     ..LiveConfig::default()
/// });
/// let a = live.add_document("rust makes systems programming approachable");
/// let b = live.add_document("full text search in rust");
/// live.flush();
/// live.delete_node(a);
/// let snap = live.snapshot();
/// assert_eq!(snap.live_doc_count(), 1);
/// assert!(snap.document(b).is_some());
/// assert!(snap.document(a).is_none(), "tombstoned");
/// ```
pub struct LiveIndex {
    shared: Arc<Shared>,
    tokenizer: Tokenizer,
    merger: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for LiveIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveIndex")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl Default for LiveIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveIndex {
    /// An empty live index with default configuration (background merging
    /// on).
    pub fn new() -> Self {
        Self::with_config(LiveConfig::default())
    }

    /// An empty live index with explicit configuration.
    pub fn with_config(config: LiveConfig) -> Self {
        Self::build(Corpus::new(), config)
    }

    /// Seed a live index from an existing corpus, sealed as segment 0 (the
    /// "bulk load, then serve writes" path).
    pub fn from_corpus(corpus: Corpus) -> Self {
        Self::from_corpus_with(corpus, LiveConfig::default())
    }

    /// [`Self::from_corpus`] with explicit configuration.
    pub fn from_corpus_with(corpus: Corpus, config: LiveConfig) -> Self {
        Self::build(corpus, config)
    }

    fn build(seed: Corpus, config: LiveConfig) -> Self {
        let vocab = seed.interner().clone();
        let mut sealed = Vec::new();
        let next_global = seed.len() as u32;
        let mut next_segment_id = 0;
        if !seed.is_empty() {
            let globals = (0..next_global).collect();
            let len = seed.len();
            sealed.push(SealedEntry {
                data: Arc::new(SegmentData::seal(0, seed, globals)),
                deletes: Arc::new(DeleteSet::new(len)),
            });
            next_segment_id = 1;
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                mem: MemSegment::new(Corpus::with_interner(vocab)),
                mem_deletes: Arc::new(DeleteSet::new(0)),
                mem_view: None,
                sealed,
                next_global,
                next_segment_id,
                version: 0,
                merging: false,
                merges_completed: 0,
            }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            config,
        });
        let merger = config.background_merge.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || merger_loop(&shared))
        });
        LiveIndex {
            shared,
            tokenizer: Tokenizer::new(),
            merger,
        }
    }

    /// Replace the tokenizer used by [`Self::add_document`] (e.g. to apply
    /// the analyzed stemming/stop-word pipeline).
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> LiveConfig {
        self.shared.config
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("live index lock poisoned")
    }

    /// Tokenize and add one document, returning its global node id. The
    /// write buffer auto-flushes at [`LiveConfig::flush_threshold`].
    pub fn add_document(&self, text: &str) -> NodeId {
        let mut st = self.lock();
        let global = st.next_global;
        st.next_global += 1;
        st.mem.add(&self.tokenizer, text, global);
        Arc::make_mut(&mut st.mem_deletes).push_slot();
        st.version += 1;
        if st.mem.len() >= self.shared.config.flush_threshold {
            flush_locked(&mut st);
            self.shared.wake.notify_all();
        }
        NodeId(global)
    }

    /// Tombstone a document by global node id. Returns `false` when the id
    /// was never assigned or is already deleted. The document's bytes stay
    /// in its segment until a merge rewrites it; queries stop seeing it
    /// immediately (on snapshots taken after this call).
    pub fn delete_node(&self, node: NodeId) -> bool {
        let mut st = self.lock();
        if node.0 >= st.next_global {
            return false;
        }
        let deleted = if let Some(local) = st.mem.local_of(node) {
            Arc::make_mut(&mut st.mem_deletes).delete(local)
        } else {
            let found = st
                .sealed
                .iter()
                .enumerate()
                .find_map(|(i, e)| e.data.local_of(node).map(|local| (i, local)));
            match found {
                Some((i, local)) => Arc::make_mut(&mut st.sealed[i].deletes).delete(local),
                None => false, // id fell in a hole a merge already dropped
            }
        };
        if deleted {
            st.version += 1;
            drop(st);
            // A delete can push a segment over the tombstone-ratio trigger.
            self.shared.wake.notify_all();
        }
        deleted
    }

    /// Seal the write buffer into a new immutable segment. Returns `false`
    /// when the buffer was empty.
    pub fn flush(&self) -> bool {
        let mut st = self.lock();
        let flushed = flush_locked(&mut st);
        if flushed {
            drop(st);
            self.shared.wake.notify_all();
        }
        flushed
    }

    /// A point-in-time view of the whole collection: every sealed segment
    /// plus (if non-empty) a sealed view of the write buffer, with the
    /// tombstone bitmaps frozen as of now. O(segments) `Arc` clones, except
    /// when the buffer changed since the last snapshot — then its view is
    /// (re)built once and cached.
    pub fn snapshot(&self) -> Snapshot {
        let mut st = self.lock();
        let mut segments: Vec<SnapshotSegment> = st
            .sealed
            .iter()
            .map(|e| SnapshotSegment {
                data: Arc::clone(&e.data),
                deletes: Arc::clone(&e.deletes),
            })
            .collect();
        if !st.mem.is_empty() {
            let stale = st
                .mem_view
                .as_ref()
                .is_none_or(|v| v.num_docs() != st.mem.len());
            if stale {
                // The view borrows the *next* segment id: if the buffer is
                // later flushed unchanged, the flushed segment is this very
                // view under the id it would get anyway.
                let view = Arc::new(st.mem.seal_view(st.next_segment_id));
                st.mem_view = Some(view);
            }
            segments.push(SnapshotSegment {
                data: Arc::clone(st.mem_view.as_ref().expect("just cached")),
                deletes: Arc::clone(&st.mem_deletes),
            });
        }
        Snapshot {
            segments,
            version: st.version,
        }
    }

    /// Flush, then compact every sealed segment into one, synchronously
    /// (waits for a background merge in flight). Returns `false` when there
    /// was nothing to compact.
    pub fn merge_all(&self) -> bool {
        self.flush();
        self.merge_with(|st| {
            let worth_it = st.sealed.len() > 1
                || st
                    .sealed
                    .first()
                    .is_some_and(|e| e.deletes.deleted_count() > 0);
            worth_it.then_some((0, st.sealed.len()))
        })
    }

    /// Apply one round of the tiered merge policy synchronously. Returns
    /// whether a merge ran (useful when background merging is off).
    pub fn maybe_merge(&self) -> bool {
        let config = self.shared.config;
        self.merge_with(move |st| plan_merge(st, &config))
    }

    /// Run one merge chosen by `pick` (a range over the sealed list),
    /// serialized against any other merge.
    fn merge_with(&self, pick: impl Fn(&State) -> Option<(usize, usize)>) -> bool {
        let (id, entries) = {
            let mut st = self.lock();
            while st.merging {
                st = self.shared.wake.wait(st).expect("live index lock poisoned");
            }
            let Some((start, end)) = pick(&st) else {
                return false;
            };
            st.merging = true;
            let id = st.next_segment_id;
            st.next_segment_id += 1;
            (id, st.sealed[start..end].to_vec())
        };
        let merged = build_merged(id, &entries);
        commit_merge(&self.shared, &entries, merged);
        true
    }

    /// Number of sealed segments (the write buffer not included).
    pub fn segment_count(&self) -> usize {
        self.lock().sealed.len()
    }

    /// Documents currently sitting in the write buffer.
    pub fn buffered_docs(&self) -> usize {
        self.lock().mem.len()
    }

    /// Live (non-tombstoned) documents across segments and buffer.
    pub fn live_doc_count(&self) -> usize {
        let st = self.lock();
        let sealed: usize = st
            .sealed
            .iter()
            .map(|e| e.data.num_docs() - e.deletes.deleted_count())
            .sum();
        sealed + st.mem.len() - st.mem_deletes.deleted_count()
    }

    /// Total tombstones not yet reclaimed by a merge.
    pub fn tombstone_count(&self) -> usize {
        let st = self.lock();
        st.sealed
            .iter()
            .map(|e| e.deletes.deleted_count())
            .sum::<usize>()
            + st.mem_deletes.deleted_count()
    }

    /// The mutation version (bumped by every add/delete/flush/merge).
    /// Snapshots record the version they were taken at, so callers can
    /// cache derived structures per version.
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// Merges committed over the index's lifetime (background or
    /// synchronous).
    pub fn merges_completed(&self) -> u64 {
        self.lock().merges_completed
    }

    /// Flush the buffer and hand the manifest encoder a consistent view of
    /// the sealed segment set plus the id high-water marks.
    pub(crate) fn sealed_parts(&self) -> (Vec<SealedEntry>, u32, u64) {
        let mut st = self.lock();
        flush_locked(&mut st);
        (st.sealed.clone(), st.next_global, st.next_segment_id)
    }

    /// Rebuild a live index from manifest-decoded parts. The write buffer
    /// starts empty with the widest persisted vocabulary.
    pub(crate) fn from_sealed_parts(
        sealed: Vec<SealedEntry>,
        next_global: u32,
        next_segment_id: u64,
        config: LiveConfig,
    ) -> Self {
        let vocab = widest_vocabulary(sealed.iter().map(|e| e.data.corpus()))
            .cloned()
            .unwrap_or_default();
        let live = Self::build(Corpus::new(), config);
        {
            let mut st = live.lock();
            st.mem = MemSegment::new(Corpus::with_interner(vocab));
            st.sealed = sealed;
            st.next_global = next_global;
            st.next_segment_id = next_segment_id;
        }
        live
    }
}

impl Drop for LiveIndex {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(handle) = self.merger.take() {
            let _ = handle.join();
        }
    }
}

/// Seal the buffer into the sealed list; `false` when empty.
fn flush_locked(st: &mut State) -> bool {
    if st.mem.is_empty() {
        return false;
    }
    // The cached view is reusable only if it covers the whole buffer AND
    // still carries the id this flush is about to hand out — a merge may
    // have consumed ids since the view was cached, and sealing it as-is
    // would produce two segments with the same id (breaking the id-based
    // merge-commit bookkeeping).
    let stale = st
        .mem_view
        .as_ref()
        .is_none_or(|v| v.num_docs() != st.mem.len() || v.id() != st.next_segment_id);
    let data = if stale {
        Arc::new(st.mem.seal_view(st.next_segment_id))
    } else {
        st.mem_view.take().expect("checked fresh")
    };
    st.next_segment_id += 1;
    st.sealed.push(SealedEntry {
        data,
        deletes: Arc::clone(&st.mem_deletes),
    });
    st.mem.drain();
    st.mem_deletes = Arc::new(DeleteSet::new(0));
    st.mem_view = None;
    st.version += 1;
    true
}

/// The tiered policy: prefer compacting an adjacent run of `merge_fanin`
/// same-tier segments (smallest tiers merge first); otherwise rewrite a
/// single segment drowning in tombstones; otherwise ask the measured query
/// cost whether full compaction pays ([`LiveConfig::merge_cost_ratio`]).
fn plan_merge(st: &State, config: &LiveConfig) -> Option<(usize, usize)> {
    let fanin = config.merge_fanin.max(2);
    let tier = |e: &SealedEntry| {
        let mut live = e.data.num_docs() - e.deletes.deleted_count();
        let mut t = 0u32;
        while live >= fanin {
            live /= fanin;
            t += 1;
        }
        t
    };
    let tiers: Vec<u32> = st.sealed.iter().map(tier).collect();
    let mut run_start = 0;
    for i in 1..=tiers.len() {
        if i == tiers.len() || tiers[i] != tiers[run_start] {
            if i - run_start >= fanin {
                return Some((run_start, run_start + fanin));
            }
            run_start = i;
        }
    }
    if let Some(solo) = st.sealed.iter().position(|e| {
        let n = e.data.num_docs();
        n > 0
            && e.deletes.deleted_count() > 0
            && e.deletes.deleted_count() as f64 >= config.merge_tombstone_ratio * n as f64
    }) {
        return Some((solo, solo + 1));
    }
    plan_cost_compaction(st, config)
}

/// Measure what segmentation costs a query *right now* and compact when it
/// pays: probe each sealed segment's hottest posting list by walking its
/// first block and reading the decoded-entry counter — the same counter a
/// real query reports — then compare the per-segment sum against the
/// first-block cost a single merged segment would pay for the same list.
/// Size tiers never see this shape (N medium segments, none of them small
/// enough to merge), but the measured ratio does.
fn plan_cost_compaction(st: &State, config: &LiveConfig) -> Option<(usize, usize)> {
    if config.merge_cost_ratio <= 0.0 || st.sealed.len() < 2 {
        return None;
    }
    let mut segmented_cost = 0u64;
    let mut hottest_df_total = 0u64;
    for e in &st.sealed {
        let index = e.data.index();
        let corpus = e.data.corpus();
        let Some(hottest) = (0..corpus.interner().len())
            .map(|t| ftsl_model::TokenId(t as u32))
            .max_by_key(|&t| index.df(t))
        else {
            continue;
        };
        hottest_df_total += index.df(hottest) as u64;
        let mut probe = index.block_list(hottest).cursor();
        for _ in 0..crate::block::BLOCK_ENTRIES {
            if probe.next_entry().is_none() {
                break;
            }
        }
        segmented_cost += probe.counters().entries;
    }
    // One merged segment pays at most a single first block for the probe
    // (its hottest list holds at most the sum of the per-segment hottest
    // lists, capped at one block's worth of decoding).
    let merged_cost = hottest_df_total.min(crate::block::BLOCK_ENTRIES as u64);
    (merged_cost > 0 && segmented_cost as f64 > config.merge_cost_ratio * merged_cost as f64)
        .then_some((0, st.sealed.len()))
}

/// The widest vocabulary among `corpora` — a superset of every one of
/// them, because the live vocabulary only ever grows and each corpus
/// carries a clone taken at some point on that growth line. The single
/// place this invariant is exploited (merging, manifest encoding,
/// snapshot token resolution) all route through here.
pub(crate) fn widest_vocabulary<'a>(
    corpora: impl Iterator<Item = &'a Corpus>,
) -> Option<&'a TokenInterner> {
    corpora.map(Corpus::interner).max_by_key(|i| i.len())
}

/// Build the compacted segment: surviving documents of `entries` (as of the
/// captured tombstone bitmaps) re-sealed under one corpus that keeps the
/// newest vocabulary involved — token ids stay prefix-consistent, and no
/// retokenization happens (analyzed corpora survive merges unchanged).
fn build_merged(id: u64, entries: &[SealedEntry]) -> SegmentData {
    let vocab = widest_vocabulary(entries.iter().map(|e| e.data.corpus()))
        .cloned()
        .unwrap_or_default();
    let mut corpus = Corpus::with_interner(vocab);
    let mut globals = Vec::new();
    for e in entries {
        for local in 0..e.data.num_docs() {
            if e.deletes.is_live(local) {
                let doc = e.data.document(local);
                corpus.add_tokens(doc.label.clone(), doc.tokens.clone());
                globals.push(e.data.global_of(local).0);
            }
        }
    }
    SegmentData::seal(id, corpus, globals)
}

/// Swap the merged inputs for the merged output under the lock, carrying
/// over tombstones that arrived while the merge was building (they apply to
/// the *current* bitmaps, which may have moved past the captured ones).
fn commit_merge(shared: &Shared, inputs: &[SealedEntry], merged: SegmentData) {
    let mut st = shared.state.lock().expect("live index lock poisoned");
    let mut deletes = DeleteSet::new(merged.num_docs());
    for captured in inputs {
        let Some(current) = st.sealed.iter().find(|e| e.data.id() == captured.data.id()) else {
            continue;
        };
        for local in current.deletes.iter_deleted() {
            if captured.deletes.is_live(local) {
                if let Some(nl) = merged.local_of(current.data.global_of(local)) {
                    deletes.delete(nl);
                }
            }
        }
    }
    let ids: Vec<u64> = inputs.iter().map(|e| e.data.id()).collect();
    let start = st
        .sealed
        .iter()
        .position(|e| ids.contains(&e.data.id()))
        .expect("merge inputs vanished");
    // Only merges remove sealed entries and merges are serialized, so the
    // captured run is still contiguous at `start`.
    let replacement = (merged.num_docs() > 0).then(|| SealedEntry {
        data: Arc::new(merged),
        deletes: Arc::new(deletes),
    });
    st.sealed.splice(start..start + ids.len(), replacement);
    st.merging = false;
    st.version += 1;
    st.merges_completed += 1;
    drop(st);
    shared.wake.notify_all();
}

/// The background merger: sleep until woken (or 100 ms), run the tiered
/// policy once, repeat. Exits when the owning [`LiveIndex`] drops.
fn merger_loop(shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let job = {
            let mut st = shared.state.lock().expect("live index lock poisoned");
            if st.merging {
                None
            } else if let Some((start, end)) = plan_merge(&st, &shared.config) {
                st.merging = true;
                let id = st.next_segment_id;
                st.next_segment_id += 1;
                Some((id, st.sealed[start..end].to_vec()))
            } else {
                None
            }
        };
        match job {
            Some((id, entries)) => {
                let merged = build_merged(id, &entries);
                commit_merge(shared, &entries, merged);
            }
            None => {
                let st = shared.state.lock().expect("live index lock poisoned");
                let _ = shared
                    .wake
                    .wait_timeout(st, Duration::from_millis(100))
                    .expect("live index lock poisoned");
            }
        }
    }
}

/// One segment as a snapshot sees it: immutable data plus the tombstone
/// bitmap frozen at snapshot time.
#[derive(Clone, Debug)]
pub struct SnapshotSegment {
    data: Arc<SegmentData>,
    deletes: Arc<DeleteSet>,
}

impl SnapshotSegment {
    /// The sealed segment (corpus + index + global id map).
    pub fn data(&self) -> &SegmentData {
        &self.data
    }

    /// The frozen tombstone bitmap (local node ids).
    pub fn deletes(&self) -> &DeleteSet {
        &self.deletes
    }

    /// Live documents in this segment.
    pub fn live_count(&self) -> usize {
        self.data.num_docs() - self.deletes.deleted_count()
    }

    /// True when no document of the segment is tombstoned — evaluation can
    /// skip delete filtering entirely.
    pub fn fully_live(&self) -> bool {
        self.deletes.deleted_count() == 0
    }
}

/// A point-in-time view over a [`LiveIndex`]: an ordered list of segments
/// with frozen tombstones. Holding a snapshot pins the segment data it
/// references (via `Arc`), so concurrent merges cost memory, not
/// correctness.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    segments: Vec<SnapshotSegment>,
    version: u64,
}

impl Snapshot {
    /// The segments, ordered by their disjoint global-id ranges (write
    /// buffer view last).
    pub fn segments(&self) -> &[SnapshotSegment] {
        &self.segments
    }

    /// Number of segments in the view.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The [`LiveIndex::version`] this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live documents across all segments.
    pub fn live_doc_count(&self) -> usize {
        self.segments.iter().map(SnapshotSegment::live_count).sum()
    }

    /// Tombstoned documents still physically present.
    pub fn tombstone_count(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.deletes.deleted_count())
            .sum()
    }

    /// True when the snapshot holds no live document.
    pub fn is_empty(&self) -> bool {
        self.live_doc_count() == 0
    }

    /// The widest vocabulary any segment carries. The vocabulary only ever
    /// grows, so this interner is a superset of every segment's — the right
    /// place to resolve query tokens to global idf values.
    pub fn widest_interner(&self) -> Option<&TokenInterner> {
        widest_vocabulary(self.segments.iter().map(|s| s.data.corpus()))
    }

    /// Look up a live document by global node id.
    pub fn document(&self, global: NodeId) -> Option<&Document> {
        for seg in &self.segments {
            if let Some(local) = seg.data.local_of(global) {
                return seg.deletes.is_live(local).then(|| seg.data.document(local));
            }
        }
        None
    }

    /// Iterate `(global id, document)` over live documents in ascending
    /// global order — exactly the collection a monolithic rebuild would
    /// index, in the same order.
    pub fn live_documents(&self) -> impl Iterator<Item = (NodeId, &Document)> + '_ {
        self.segments.iter().flat_map(|seg| {
            (0..seg.data.num_docs())
                .filter(move |&local| seg.deletes.is_live(local))
                .map(move |local| (seg.data.global_of(local), seg.data.document(local)))
        })
    }

    /// Per-segment footprint/tombstone report (what `:stats` prints).
    pub fn segment_reports(&self) -> Vec<SegmentReport> {
        self.segments
            .iter()
            .map(|s| {
                let footprint = s.data.index().memory_footprint();
                SegmentReport {
                    id: s.data.id(),
                    docs: s.data.num_docs(),
                    tombstones: s.deletes.deleted_count(),
                    resident_bytes: footprint.total(),
                    pair_bytes: footprint.pairs,
                }
            })
            .collect()
    }
}

/// Per-segment diagnostics for stats reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment id.
    pub id: u64,
    /// Documents physically present (live + tombstoned).
    pub docs: usize,
    /// Tombstoned documents awaiting a merge.
    pub tombstones: usize,
    /// Resident bytes of the segment's index (pair lists included).
    pub resident_bytes: usize,
    /// Bytes of [`Self::resident_bytes`] attributable to the word-pair
    /// auxiliary index, so footprint attribution separates pair lists
    /// from core postings.
    pub pair_bytes: usize,
}

impl SegmentReport {
    /// Fraction of physically present documents still live (1.0 for an
    /// empty segment).
    pub fn live_ratio(&self) -> f64 {
        if self.docs == 0 {
            1.0
        } else {
            (self.docs - self.tombstones) as f64 / self.docs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> LiveConfig {
        LiveConfig {
            background_merge: false,
            ..LiveConfig::default()
        }
    }

    #[test]
    fn adds_assign_increasing_global_ids_across_flushes() {
        let live = LiveIndex::with_config(manual());
        let a = live.add_document("one two");
        let b = live.add_document("two three");
        live.flush();
        let c = live.add_document("three four");
        assert_eq!((a, b, c), (NodeId(0), NodeId(1), NodeId(2)));
        assert_eq!(live.segment_count(), 1);
        assert_eq!(live.buffered_docs(), 1);
        let snap = live.snapshot();
        assert_eq!(snap.num_segments(), 2, "buffer appears as a segment");
        assert_eq!(snap.live_doc_count(), 3);
        let globals: Vec<u32> = snap.live_documents().map(|(n, _)| n.0).collect();
        assert_eq!(globals, vec![0, 1, 2]);
    }

    #[test]
    fn snapshots_are_isolated_from_later_mutations() {
        let live = LiveIndex::with_config(manual());
        let a = live.add_document("alpha beta");
        live.add_document("beta gamma");
        live.flush();
        let before = live.snapshot();
        live.delete_node(a);
        live.add_document("delta");
        live.merge_all();
        assert_eq!(before.live_doc_count(), 2, "held snapshot unchanged");
        assert!(before.document(a).is_some());
        let after = live.snapshot();
        assert_eq!(after.live_doc_count(), 2); // one deleted, one added
        assert!(after.document(a).is_none());
    }

    #[test]
    fn merge_all_compacts_to_one_segment_dropping_tombstones() {
        let live = LiveIndex::with_config(manual());
        for i in 0..6 {
            live.add_document(&format!("tok{} shared", i));
            live.flush();
        }
        live.delete_node(NodeId(2));
        assert_eq!(live.segment_count(), 6);
        assert!(live.merge_all());
        assert_eq!(live.segment_count(), 1);
        assert_eq!(live.tombstone_count(), 0, "merge reclaims tombstones");
        let snap = live.snapshot();
        // Surviving global ids keep their values, with a hole at 2.
        let globals: Vec<u32> = snap.live_documents().map(|(n, _)| n.0).collect();
        assert_eq!(globals, vec![0, 1, 3, 4, 5]);
        // Deleting into the hole reports false; survivors still deletable.
        assert!(!live.delete_node(NodeId(2)));
        assert!(live.delete_node(NodeId(3)));
    }

    #[test]
    fn tiered_policy_merges_same_tier_runs() {
        let live = LiveIndex::with_config(LiveConfig {
            merge_fanin: 3,
            ..manual()
        });
        for i in 0..3 {
            live.add_document(&format!("doc{i}"));
            live.flush();
        }
        assert_eq!(live.segment_count(), 3);
        assert!(live.maybe_merge(), "three tier-0 segments merge");
        assert_eq!(live.segment_count(), 1);
        assert!(!live.maybe_merge(), "nothing left to do");
    }

    #[test]
    fn tombstone_ratio_triggers_solo_compaction() {
        let live = LiveIndex::with_config(LiveConfig {
            merge_tombstone_ratio: 0.5,
            ..manual()
        });
        for i in 0..4 {
            live.add_document(&format!("doc{i} filler"));
        }
        live.flush();
        live.delete_node(NodeId(0));
        assert!(!live.maybe_merge(), "1/4 deleted is under the ratio");
        live.delete_node(NodeId(1));
        assert!(live.maybe_merge(), "2/4 deleted hits the ratio");
        assert_eq!(live.tombstone_count(), 0);
        assert_eq!(live.live_doc_count(), 2);
    }

    #[test]
    fn measured_query_cost_triggers_full_compaction() {
        // Four 150-doc segments sharing one hot token: the size tiers see a
        // same-tier run of 4 < fanin 8 and do nothing, but probing each
        // segment's hottest list decodes a full first block per segment
        // (4 × 128 entries) where one merged segment would pay 128 — over
        // the 3× default ratio, so the measured cost forces compaction.
        let live = LiveIndex::with_config(LiveConfig {
            merge_fanin: 8,
            ..manual()
        });
        for s in 0..4 {
            for i in 0..150 {
                live.add_document(&format!("common doc{s}x{i}"));
            }
            live.flush();
        }
        assert_eq!(live.segment_count(), 4);
        assert!(live.maybe_merge(), "4x first-block probe cost must trigger");
        assert_eq!(live.segment_count(), 1);
        assert!(!live.maybe_merge(), "a single segment has nothing to gain");
        assert_eq!(live.live_doc_count(), 600);
    }

    #[test]
    fn cost_probe_leaves_cheap_shapes_alone_and_can_be_disabled() {
        // Two such segments probe at 2 × 128 = 256 entries against 128
        // merged — a 2× ratio, under the 3× trigger: segmentation is not
        // yet hurting enough to pay for a rewrite.
        let live = LiveIndex::with_config(LiveConfig {
            merge_fanin: 8,
            ..manual()
        });
        for s in 0..2 {
            for i in 0..150 {
                live.add_document(&format!("common doc{s}x{i}"));
            }
            live.flush();
        }
        assert!(!live.maybe_merge(), "2x probe cost is under the ratio");
        assert_eq!(live.segment_count(), 2);

        // `merge_cost_ratio <= 0` switches the probe off even for shapes
        // that would otherwise trigger.
        let off = LiveIndex::with_config(LiveConfig {
            merge_fanin: 8,
            merge_cost_ratio: 0.0,
            ..manual()
        });
        for s in 0..4 {
            for i in 0..150 {
                off.add_document(&format!("common doc{s}x{i}"));
            }
            off.flush();
        }
        assert!(!off.maybe_merge(), "probe disabled");
        assert_eq!(off.segment_count(), 4);
    }

    #[test]
    fn fully_deleted_segment_disappears_on_merge() {
        let live = LiveIndex::with_config(manual());
        live.add_document("only");
        live.flush();
        live.delete_node(NodeId(0));
        assert!(live.maybe_merge());
        assert_eq!(live.segment_count(), 0);
        assert!(live.snapshot().is_empty());
    }

    #[test]
    fn background_merger_compacts_eventually() {
        let live = LiveIndex::with_config(LiveConfig {
            merge_fanin: 2,
            background_merge: true,
            ..LiveConfig::default()
        });
        for i in 0..8 {
            live.add_document(&format!("doc{i} word"));
            live.flush();
        }
        // 8 tier-0 segments; the background thread should fold them up.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while live.segment_count() > 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            live.segment_count() <= 2,
            "background merge did not run: {} segments",
            live.segment_count()
        );
        assert_eq!(live.live_doc_count(), 8);
    }

    #[test]
    fn vocabulary_is_prefix_consistent_across_segments() {
        let live = LiveIndex::with_config(manual());
        live.add_document("alpha beta");
        live.flush();
        live.add_document("beta gamma");
        live.flush();
        let snap = live.snapshot();
        let widest = snap.widest_interner().unwrap();
        let beta = widest.get("beta").unwrap();
        for seg in snap.segments() {
            if let Some(local) = seg.data().corpus().token_id("beta") {
                assert_eq!(local, beta, "same id in every segment that knows it");
            }
        }
        assert!(widest.get("gamma").is_some());
        assert_eq!(
            snap.segments()[0].data().corpus().token_id("gamma"),
            None,
            "earlier segment predates the token"
        );
    }

    #[test]
    fn auto_flush_honours_threshold() {
        let live = LiveIndex::with_config(LiveConfig {
            flush_threshold: 3,
            ..manual()
        });
        for i in 0..7 {
            live.add_document(&format!("doc{i}"));
        }
        assert_eq!(live.segment_count(), 2);
        assert_eq!(live.buffered_docs(), 1);
    }

    #[test]
    fn flush_after_merge_does_not_reuse_a_consumed_segment_id() {
        let live = LiveIndex::with_config(manual());
        live.add_document("one two");
        live.add_document("three four");
        live.flush(); // segment 0
        live.delete_node(NodeId(0)); // 1/2 tombstoned = at the ratio
        live.add_document("buffered five");
        // Cache the buffer view (it borrows the next id, 1)...
        let _pinned = live.snapshot();
        // ...then let a solo compaction consume that id.
        assert!(live.maybe_merge());
        live.flush();
        let ids: Vec<u64> = live
            .snapshot()
            .segments()
            .iter()
            .map(|s| s.data().id())
            .collect();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1], "segment ids must stay unique: {ids:?}");
    }

    #[test]
    fn snapshot_reuses_cached_buffer_view() {
        let live = LiveIndex::with_config(manual());
        live.add_document("cached view");
        let a = live.snapshot();
        let b = live.snapshot();
        assert!(Arc::ptr_eq(&a.segments[0].data, &b.segments[0].data));
        live.add_document("another");
        let c = live.snapshot();
        assert!(!Arc::ptr_eq(&a.segments[0].data, &c.segments[0].data));
    }

    #[test]
    fn segment_reports_cover_footprint_and_live_ratio() {
        let live = LiveIndex::with_config(manual());
        for i in 0..4 {
            live.add_document(&format!("doc{i} shared tokens here"));
        }
        live.flush();
        live.delete_node(NodeId(1));
        let reports = live.snapshot().segment_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].docs, 4);
        assert_eq!(reports[0].tombstones, 1);
        assert!(reports[0].resident_bytes > 0);
        assert!((reports[0].live_ratio() - 0.75).abs() < 1e-12);
    }
}
