//! Word-pair auxiliary index: proximity acceleration for phrase and
//! NEAR(k) queries (Veretennikov-style additional indexes with
//! multi-component keys).
//!
//! For every **directed** pair of tokens `(a, b)` that co-occur in a
//! document with `b` at most [`PairConfig::window`] offsets *after* `a`,
//! the pair index stores one posting per containing document carrying the
//! **minimum forward gap** `g = min { off(b) − off(a) | off(a) < off(b) ≤
//! off(a) + window }`. Because the predicate "some occurrence of `b`
//! follows some occurrence of `a` within `w`" is exactly `minGap(a→b) ≤
//! w`, an ordered phrase / window / distance query over two tokens
//! resolves from **one** pair list instead of intersecting two position
//! streams and walking their offsets.
//!
//! ## Frequency cutoff
//!
//! Only pairs whose *cheaper* term is frequent enough get indexed: a pair
//! `(a, b)` is stored iff `df(a) ≥ cutoff` **and** `df(b) ≥ cutoff`
//! ([`PairConfig::df_cutoff`]). Rare pairs are exactly the ones the
//! position-intersection path already handles cheaply (the intersection is
//! driven by the rarer list), so skipping them keeps the auxiliary
//! structure small where it buys nothing. The resulting lookup is
//! tri-state ([`PairLookup`]): a key over two frequent tokens that is
//! *absent* proves the answer empty (no fallback needed), while a key
//! touching an infrequent token is simply **not covered** and the caller
//! must fall back to position intersection.
//!
//! ## Physical layout
//!
//! Pair lists reuse the v5 bit-packed block machinery: blocks of
//! [`crate::block::BLOCK_ENTRIES`] entries, each a 6-byte prefix
//! (`base:u32-le id_width:u8 gap_width:u8`) followed by two exception-free
//! frame-of-reference columns — node-id deltas (lane 0 = 0, lane *i* =
//! `id[i] − id[i−1] − 1`) and `gap − 1` (gaps are ≥ 1 by construction).
//! Each block header ([`PairBlockMeta`]) doubles as a skip-list node
//! (`max_node`, `byte_start`, `first_entry`) and carries the block's
//! **minimum gap**: since every proximity score is monotone *decreasing*
//! in the gap, `min_gap` is the block-max score bound, and a query bounded
//! by `g` can skip whole blocks whose `min_gap` exceeds `g` without
//! decoding an entry.

use crate::bitpack;
use crate::block::BLOCK_ENTRIES;
use crate::counters::AccessCounters;
use crate::postings::PostingList;
use ftsl_model::{Document, NodeId, TokenId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fixed per-block stream overhead: the absolute base node id (4 bytes)
/// plus the two frame widths (1 byte each).
const PAIR_PREFIX_BYTES: usize = 6;

/// Default co-occurrence window: forward gaps up to this many offsets are
/// indexed. 16 covers adjacency (phrase), every `distance(_, _, d)` with
/// `d ≤ 15`, and `window(_, _, w)` with `w ≤ 16`, while keeping the pair
/// fan-out per occurrence small.
pub const DEFAULT_PAIR_WINDOW: u32 = 16;

/// Default document-frequency cutoff: both tokens of a pair must appear
/// in at least this many documents for the pair to be indexed.
pub const DEFAULT_PAIR_DF_CUTOFF: u32 = 2;

/// Build-time configuration of the pair index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairConfig {
    /// Largest forward gap indexed (`window = 0` disables pair indexing).
    pub window: u32,
    /// Both tokens of a pair must have `df ≥ df_cutoff` to be indexed
    /// (0 indexes every pair).
    pub df_cutoff: u32,
}

impl Default for PairConfig {
    fn default() -> Self {
        PairConfig {
            window: DEFAULT_PAIR_WINDOW,
            df_cutoff: DEFAULT_PAIR_DF_CUTOFF,
        }
    }
}

impl PairConfig {
    /// A configuration that builds no pair index at all.
    pub fn disabled() -> Self {
        PairConfig {
            window: 0,
            df_cutoff: 0,
        }
    }
}

/// Header of one compressed pair block — skip-list node plus the block's
/// proximity impact bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairBlockMeta {
    /// Largest node id stored in the block (its last entry's id).
    pub max_node: NodeId,
    /// Byte offset of the block's encoding in the data stream.
    pub byte_start: u32,
    /// Global index of the block's first entry.
    pub first_entry: u32,
    /// Smallest gap of any entry in the block. Proximity scores decrease
    /// with the gap, so this is the block-max score bound — and a query
    /// bounded by `g < min_gap` skips the block whole.
    pub min_gap: u32,
}

/// A block-compressed pair posting list: one `(node, min forward gap)`
/// entry per document containing the pair within the window.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairList {
    blocks: Vec<PairBlockMeta>,
    data: Vec<u8>,
    entries: u32,
}

impl PairList {
    /// Encode `(node, gap)` entries (strictly increasing node ids, every
    /// gap ≥ 1) into bit-packed blocks.
    pub fn from_entries(entries: &[(u32, u32)]) -> Self {
        let mut out = PairList::default();
        let mut frame = [0u32; bitpack::LANES];
        for chunk in entries.chunks(BLOCK_ENTRIES) {
            let count = chunk.len();
            let byte_start = out.data.len() as u32;
            let first_entry = out.entries;

            // Column 1: id deltas (lane 0 is 0 — the base is absolute).
            let mut max_delta = 0u32;
            for (lane, pair) in frame[1..count].iter_mut().zip(chunk.windows(2)) {
                let d = pair[1].0 - pair[0].0 - 1;
                *lane = d;
                max_delta = max_delta.max(d);
            }
            frame[0] = 0;
            for lane in &mut frame[count..] {
                *lane = 0;
            }
            let id_width = bitpack::width_for(max_delta);

            // Column 2: gap − 1 (every stored gap is ≥ 1).
            let mut min_gap = u32::MAX;
            let mut max_gm1 = 0u32;
            for &(_, gap) in chunk {
                debug_assert!(gap >= 1, "pair gaps are forward distances ≥ 1");
                min_gap = min_gap.min(gap);
                max_gm1 = max_gm1.max(gap - 1);
            }
            let gap_width = bitpack::width_for(max_gm1);

            out.data.extend_from_slice(&chunk[0].0.to_le_bytes());
            out.data.extend_from_slice(&[id_width, gap_width]);
            bitpack::pack(&frame, count, id_width, &mut out.data);
            for (lane, &(_, gap)) in frame.iter_mut().zip(chunk) {
                *lane = gap - 1;
            }
            for lane in &mut frame[count..] {
                *lane = 0;
            }
            bitpack::pack(&frame, count, gap_width, &mut out.data);

            out.entries += count as u32;
            out.blocks.push(PairBlockMeta {
                max_node: NodeId(chunk[count - 1].0),
                byte_start,
                first_entry,
                min_gap,
            });
        }
        out
    }

    /// Decode every `(node, gap)` entry (trusted bytes — lists built in
    /// memory are well-formed by construction).
    pub fn to_entries(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.entries as usize);
        let mut cur = self.cursor();
        while let Some(node) = cur.next_entry() {
            out.push((node.0, cur.gap()));
        }
        out
    }

    /// Like [`Self::to_entries`], but over *untrusted* bytes (the persisted
    /// load path): every width, frame, count, ordering, and padding
    /// invariant is checked — including that gaps stay within `1..=window`
    /// and that each header's `max_node`/`min_gap` agree with the entries —
    /// so each list has exactly one canonical encoding. Any violation
    /// returns `Err` with a description instead of panicking.
    pub fn try_to_entries(&self, window: u32) -> Result<Vec<(u32, u32)>, &'static str> {
        let entries = self.entries as usize;
        if self.blocks.len() != entries.div_ceil(BLOCK_ENTRIES) {
            return Err("pair block count disagrees with entry count");
        }
        let mut out = Vec::with_capacity(entries);
        let mut at = 0usize;
        let mut prev_node: Option<u32> = None;
        let mut ids = [0u32; bitpack::LANES];
        let mut gaps = [0u32; bitpack::LANES];
        for (b, meta) in self.blocks.iter().enumerate() {
            let count = BLOCK_ENTRIES.min(entries - b * BLOCK_ENTRIES);
            if meta.byte_start as usize != at || meta.first_entry as usize != b * BLOCK_ENTRIES {
                return Err("pair block header disagrees with entry stream");
            }
            if self.data.len() - at < PAIR_PREFIX_BYTES {
                return Err("truncated pair block prefix");
            }
            let base = u32::from_le_bytes([
                self.data[at],
                self.data[at + 1],
                self.data[at + 2],
                self.data[at + 3],
            ]);
            let id_width = self.data[at + 4];
            let gap_width = self.data[at + 5];
            at += PAIR_PREFIX_BYTES;
            if id_width > 32 || gap_width > 32 {
                return Err("pair frame width exceeds 32 bits");
            }
            let frames =
                bitpack::packed_bytes(id_width, count) + bitpack::packed_bytes(gap_width, count);
            if self.data.len() - at < frames {
                return Err("truncated pair block frames");
            }
            at += bitpack::unpack(&self.data[at..], id_width, count, &mut ids);
            at += bitpack::unpack(&self.data[at..], gap_width, count, &mut gaps);
            if ids[0] != 0 {
                return Err("first pair id-delta lane not zero");
            }
            for lane in count..BLOCK_ENTRIES {
                if ids[lane] != 0 || gaps[lane] != 0 {
                    return Err("non-zero pair padding lane");
                }
            }
            if prev_node.is_some_and(|p| base <= p) {
                return Err("pair node ids not strictly increasing");
            }
            ids[0] = base;
            for i in 1..count {
                ids[i] = ids[i - 1]
                    .checked_add(ids[i])
                    .and_then(|n| n.checked_add(1))
                    .ok_or("pair node overflow")?;
            }
            prev_node = Some(ids[count - 1]);
            if NodeId(ids[count - 1]) != meta.max_node {
                return Err("pair block max node disagrees with entries");
            }
            let mut block_min = u32::MAX;
            for i in 0..count {
                let gap = gaps[i].checked_add(1).ok_or("pair gap overflow")?;
                if gap > window {
                    return Err("pair gap exceeds the index window");
                }
                block_min = block_min.min(gap);
                out.push((ids[i], gap));
            }
            if block_min != meta.min_gap {
                return Err("pair block min_gap disagrees with entries");
            }
        }
        if at != self.data.len() {
            return Err("trailing bytes after last pair block");
        }
        Ok(out)
    }

    /// Number of `(node, gap)` entries.
    pub fn num_entries(&self) -> usize {
        self.entries as usize
    }

    /// True iff the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of compressed blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Smallest gap across the whole list — the list-level proximity
    /// impact bound (`u32::MAX` for an empty list).
    pub fn min_gap(&self) -> u32 {
        self.blocks
            .iter()
            .map(|b| b.min_gap)
            .min()
            .unwrap_or(u32::MAX)
    }

    /// Compressed payload size in bytes (entry stream + skip headers).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len() + self.blocks.len() * std::mem::size_of::<PairBlockMeta>()
    }

    /// Open a seeking, block-at-a-time cursor.
    pub fn cursor(&self) -> PairCursor<'_> {
        PairCursor {
            list: self,
            ids: [0; BLOCK_ENTRIES],
            gaps: [0; BLOCK_ENTRIES],
            idx: usize::MAX,
            count: 0,
            first: 0,
            block: usize::MAX,
            started: false,
            done: false,
            counters: AccessCounters::new(),
        }
    }

    /// Skip headers and raw stream (exposed for persistence).
    pub(crate) fn parts(&self) -> (&[PairBlockMeta], &[u8], u32) {
        (&self.blocks, &self.data, self.entries)
    }

    /// Reassemble from persisted parts (validated by
    /// [`Self::try_to_entries`] on the load path).
    pub(crate) fn from_parts(blocks: Vec<PairBlockMeta>, data: Vec<u8>, entries: u32) -> Self {
        PairList {
            blocks,
            data,
            entries,
        }
    }
}

/// A forward-only, skip-aware cursor over a [`PairList`], decoding one
/// whole block (both columns) at a time.
///
/// Counter semantics follow the established contract: consumed entries
/// count in [`AccessCounters::entries`] *and* in
/// [`AccessCounters::pair_entries`] (so pair-path work stays comparable to
/// intersection work while remaining attributable), bypassed entries in
/// [`AccessCounters::skipped`], and whole-block jumps in
/// [`AccessCounters::blocks_skipped`].
#[derive(Clone, Debug)]
pub struct PairCursor<'a> {
    list: &'a PairList,
    ids: [u32; BLOCK_ENTRIES],
    gaps: [u32; BLOCK_ENTRIES],
    /// Index of the current entry within the resident block; `usize::MAX`
    /// when not positioned.
    idx: usize,
    /// Entries in the resident block (0 when none is decoded).
    count: usize,
    /// Global index of the resident block's first entry.
    first: u32,
    /// Index of the resident block; `usize::MAX` when none is decoded.
    block: usize,
    started: bool,
    done: bool,
    counters: AccessCounters,
}

impl<'a> PairCursor<'a> {
    /// Global index of the next entry to consume.
    fn global_next(&self) -> u32 {
        if self.done {
            self.list.entries
        } else if self.idx < self.count {
            self.first + self.idx as u32 + 1
        } else {
            0
        }
    }

    /// Batch-decode both columns of `block`.
    #[cold]
    fn unpack_block(&mut self, block: usize) {
        let meta = &self.list.blocks[block];
        let count = BLOCK_ENTRIES.min(self.list.entries as usize - meta.first_entry as usize);
        let data = &self.list.data;
        let mut at = meta.byte_start as usize;
        let base = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]);
        let (id_width, gap_width) = (data[at + 4], data[at + 5]);
        at += PAIR_PREFIX_BYTES;
        at += bitpack::unpack(&data[at..], id_width, count, &mut self.ids);
        bitpack::unpack(&data[at..], gap_width, count, &mut self.gaps);
        self.ids[0] = base;
        for i in 1..count {
            self.ids[i] = self.ids[i].wrapping_add(self.ids[i - 1]).wrapping_add(1);
        }
        for gap in self.gaps[..count].iter_mut() {
            *gap = gap.wrapping_add(1); // stored as gap − 1
        }
        self.block = block;
        self.count = count;
        self.first = meta.first_entry;
    }

    fn ensure_decoded(&mut self, block: usize) {
        if self.block != block {
            self.unpack_block(block);
        }
    }

    /// Position on global entry `global` (callers guarantee it exists).
    fn land(&mut self, global: u32) -> NodeId {
        self.ensure_decoded(global as usize / BLOCK_ENTRIES);
        self.idx = global as usize % BLOCK_ENTRIES;
        self.started = true;
        self.counters.entries += 1;
        self.counters.pair_entries += 1;
        NodeId(self.ids[self.idx])
    }

    fn mark_done(&mut self) {
        self.done = true;
        self.started = true;
        self.idx = usize::MAX;
        self.count = 0;
    }

    /// Consume the next entry and return its node id.
    #[inline]
    pub fn next_entry(&mut self) -> Option<NodeId> {
        let global = self.global_next();
        if global >= self.list.entries {
            if !self.done {
                self.mark_done();
            }
            return None;
        }
        Some(self.land(global))
    }

    /// Advance to the first entry with node id ≥ `target`, skipping whole
    /// blocks via the headers and binary-searching the landing block.
    /// Stays put if the current entry already satisfies the bound.
    pub fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        if let Some(cur) = self.node() {
            if cur >= target {
                return Some(cur);
            }
        }
        let from = self.global_next();
        if from >= self.list.entries {
            if !self.done {
                self.mark_done();
            }
            return None;
        }
        let cur_block = from as usize / BLOCK_ENTRIES;
        let rel = self.list.blocks[cur_block..].partition_point(|b| b.max_node < target);
        let target_block = cur_block + rel;
        if target_block >= self.list.blocks.len() {
            self.counters.skipped += u64::from(self.list.entries - from);
            self.counters.blocks_skipped += (self.list.blocks.len())
                .saturating_sub((from as usize).div_ceil(BLOCK_ENTRIES))
                as u64;
            self.mark_done();
            return None;
        }
        let meta = self.list.blocks[target_block];
        let mut from = from;
        if meta.first_entry > from {
            self.counters.skipped += u64::from(meta.first_entry - from);
            self.counters.blocks_skipped +=
                (target_block - (from as usize).div_ceil(BLOCK_ENTRIES)) as u64;
            from = meta.first_entry;
        }
        self.ensure_decoded(target_block);
        let lo = (from - meta.first_entry) as usize;
        let within = self.ids[lo..self.count].partition_point(|&id| id < target.0);
        self.counters.skipped += within as u64;
        Some(self.land(meta.first_entry + (lo + within) as u32))
    }

    /// The node id of the current entry.
    #[inline]
    pub fn node(&self) -> Option<NodeId> {
        if self.idx < self.count {
            Some(NodeId(self.ids[self.idx]))
        } else {
            None
        }
    }

    /// Minimum forward gap of the current entry.
    ///
    /// # Panics
    /// Panics if the cursor is not positioned on an entry.
    #[inline]
    pub fn gap(&self) -> u32 {
        assert!(self.idx < self.count, "cursor not positioned on an entry");
        self.gaps[self.idx]
    }

    /// Index of the block the cursor is parked in (the next block to
    /// decode when the cursor has not started); `None` once exhausted.
    fn current_block(&self) -> Option<usize> {
        if self.idx < self.count {
            Some(self.block)
        } else if !self.started && !self.list.blocks.is_empty() {
            Some(0)
        } else {
            None
        }
    }

    /// Smallest gap in the current block — the block-max proximity bound;
    /// `u32::MAX` when exhausted (nothing left to bound).
    pub fn block_min_gap(&self) -> u32 {
        self.current_block()
            .map_or(u32::MAX, |b| self.list.blocks[b].min_gap)
    }

    /// Smallest gap of the block that would contain the first remaining
    /// entry with node id ≥ `target` — a pure header probe. `None` when no
    /// remaining entry can reach `target`.
    pub fn peek_min_gap_at(&self, target: NodeId) -> Option<u32> {
        if let Some(cur) = self.node() {
            if cur >= target {
                return self.current_block().map(|b| self.list.blocks[b].min_gap);
            }
        }
        let from = self.current_block()?;
        let rel = self.list.blocks[from..].partition_point(|b| b.max_node < target);
        self.list.blocks.get(from + rel).map(|b| b.min_gap)
    }

    /// Jump past the current block without consuming its remaining entries
    /// and land on the first entry of the next one.
    pub fn skip_block(&mut self) -> Option<NodeId> {
        let block = self.current_block()?;
        let next = block + 1;
        let from = self.global_next();
        if next >= self.list.blocks.len() {
            let remaining = u64::from(self.list.entries - from);
            self.counters.skipped += remaining;
            self.counters.blocks_skipped += u64::from(remaining > 0);
            self.mark_done();
            return None;
        }
        let meta = self.list.blocks[next];
        let remaining = u64::from(meta.first_entry - from);
        self.counters.skipped += remaining;
        self.counters.blocks_skipped += u64::from(remaining > 0);
        Some(self.land(meta.first_entry))
    }

    /// True once every entry has been consumed or skipped.
    pub fn exhausted(&self) -> bool {
        self.done
    }

    /// Access counters accumulated by this cursor.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }
}

/// Result of a pair-index lookup — the planner's coverage contract.
#[derive(Debug)]
pub enum PairLookup<'a> {
    /// Both tokens are frequent and the pair co-occurs: here is its list.
    List(&'a PairList),
    /// Both tokens are frequent but the pair never co-occurs within the
    /// window: the answer is **provably empty**, no fallback needed.
    Empty,
    /// At least one token is below the df cutoff (or the index was built
    /// without pairs): the pair is outside the index's coverage and the
    /// caller must fall back to position intersection.
    NotCovered,
}

/// The word-pair auxiliary index over one segment's corpus.
///
/// An index built with [`PairConfig::disabled`] (or loaded from a
/// pre-pair-format image) is empty and reports every lookup as
/// [`PairLookup::NotCovered`], so callers degrade to the intersection
/// path uniformly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PairIndex {
    /// The window/cutoff the index was built with (`window == 0` when
    /// disabled or absent).
    config: PairConfig,
    /// Directed token pairs, sorted lexicographically; parallel to
    /// `lists`.
    keys: Vec<(u32, u32)>,
    lists: Vec<PairList>,
    /// Per-token coverage: `frequent[t]` iff `df(t) ≥ df_cutoff` at build
    /// time. Empty when the index is disabled.
    frequent: Vec<bool>,
    /// Total pair postings across all lists.
    entries: u64,
}

impl Default for PairIndex {
    /// The absent index: disabled config, no coverage — every lookup
    /// reports [`PairLookup::NotCovered`].
    fn default() -> Self {
        PairIndex {
            config: PairConfig::disabled(),
            keys: Vec::new(),
            lists: Vec::new(),
            frequent: Vec::new(),
            entries: 0,
        }
    }
}

impl PairIndex {
    /// Build the pair index for `docs` (ordered by node id, as the segment
    /// builder guarantees). `dfs[t]` is the document frequency of token
    /// `t` in the same document set.
    pub fn build(docs: &[Document], dfs: &[u32], config: PairConfig) -> PairIndex {
        if config.window == 0 {
            return PairIndex::default();
        }
        let frequent: Vec<bool> = dfs.iter().map(|&df| df >= config.df_cutoff).collect();
        let mut postings: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
        let mut local: HashMap<(u32, u32), u32> = HashMap::new();
        let mut touched: Vec<(u32, u32)> = Vec::new();
        for doc in docs {
            local.clear();
            touched.clear();
            let toks = &doc.tokens;
            for (i, &(ta, pa)) in toks.iter().enumerate() {
                if !frequent[ta.index()] {
                    continue;
                }
                for &(tb, pb) in &toks[i + 1..] {
                    let gap = pb.offset - pa.offset;
                    if gap > config.window {
                        break; // offsets are strictly increasing
                    }
                    if !frequent[tb.index()] {
                        continue;
                    }
                    let key = (ta.0, tb.0);
                    match local.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            if gap < *e.get() {
                                e.insert(gap);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(gap);
                            touched.push(key);
                        }
                    }
                }
            }
            for &key in &touched {
                postings
                    .entry(key)
                    .or_default()
                    .push((doc.node.0, local[&key]));
            }
        }
        let mut keys: Vec<(u32, u32)> = postings.keys().copied().collect();
        keys.sort_unstable();
        let mut entries = 0u64;
        let lists: Vec<PairList> = keys
            .iter()
            .map(|key| {
                let posting = &postings[key];
                entries += posting.len() as u64;
                PairList::from_entries(posting)
            })
            .collect();
        PairIndex {
            config,
            keys,
            lists,
            frequent,
            entries,
        }
    }

    /// Look up the directed pair `(a, b)` — see [`PairLookup`] for the
    /// coverage contract.
    pub fn lookup(&self, a: TokenId, b: TokenId) -> PairLookup<'_> {
        if !self.covers(a) || !self.covers(b) {
            return PairLookup::NotCovered;
        }
        match self.keys.binary_search(&(a.0, b.0)) {
            Ok(i) => PairLookup::List(&self.lists[i]),
            Err(_) => PairLookup::Empty,
        }
    }

    /// Whether `token` is within the index's coverage (frequent enough at
    /// build time). False for every token when the index is disabled.
    pub fn covers(&self, token: TokenId) -> bool {
        self.frequent.get(token.index()).copied().unwrap_or(false)
    }

    /// The window/cutoff the index was built with.
    pub fn config(&self) -> PairConfig {
        self.config
    }

    /// True when the index holds no pair lists (disabled, or nothing met
    /// the window/cutoff).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of distinct directed pairs indexed.
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Total pair postings across all lists.
    pub fn num_entries(&self) -> u64 {
        self.entries
    }

    /// Resident bytes: packed streams, skip headers, the key array, and
    /// the coverage bitmap.
    pub fn resident_bytes(&self) -> usize {
        self.lists
            .iter()
            .map(PairList::compressed_bytes)
            .sum::<usize>()
            + self.keys.len() * std::mem::size_of::<(u32, u32)>()
            + self.frequent.len()
    }

    /// Iterate `(a, b, list)` in key order (persistence and diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, TokenId, &PairList)> {
        self.keys
            .iter()
            .zip(&self.lists)
            .map(|(&(a, b), list)| (TokenId(a), TokenId(b), list))
    }

    /// Keys, lists, and the coverage bitmap (exposed for persistence).
    pub(crate) fn parts(&self) -> (&[(u32, u32)], &[PairList], &[bool]) {
        (&self.keys, &self.lists, &self.frequent)
    }

    /// Reassemble from persisted parts. Keys must arrive sorted and
    /// unique; the caller validates each list via
    /// [`PairList::try_to_entries`] before trusting it.
    pub(crate) fn from_parts(
        config: PairConfig,
        keys: Vec<(u32, u32)>,
        lists: Vec<PairList>,
        frequent: Vec<bool>,
    ) -> Result<PairIndex, &'static str> {
        if keys.len() != lists.len() {
            return Err("pair key/list count mismatch");
        }
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            return Err("pair keys not sorted and unique");
        }
        let entries = lists.iter().map(|l| l.entries as u64).sum();
        Ok(PairIndex {
            config,
            keys,
            lists,
            frequent,
            entries,
        })
    }
}

/// Position-intersection oracle for the pair semantics: the minimum
/// forward gap (within `window`) between occurrences of `a` and `b` for
/// every node on both lists. This is both the differential-test oracle
/// and the segment-level fallback for pairs outside the index's coverage.
/// Returns `(node, min_gap)` pairs in node order, counting the positions
/// it inspects into `counters` — exactly the work the pair index saves.
pub fn min_forward_gaps(
    a: &PostingList,
    b: &PostingList,
    window: u32,
    counters: &mut AccessCounters,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (a.num_entries(), b.num_entries());
    while i < na && j < nb {
        let (da, db) = (a.node_of(i), b.node_of(j));
        if da < db {
            i += 1;
        } else if db < da {
            j += 1;
        } else {
            counters.entries += 2;
            let pa = a.positions_of(i);
            let pb = b.positions_of(j);
            counters.positions += (pa.len() + pb.len()) as u64;
            let mut best = u32::MAX;
            let mut bi = 0usize;
            for p in pb {
                while bi < pa.len() && pa[bi].offset < p.offset {
                    bi += 1;
                }
                // pa[bi - 1] is the closest occurrence of `a` strictly
                // before `p` (offsets are unique within a document).
                if bi > 0 {
                    let gap = p.offset - pa[bi - 1].offset;
                    if gap >= 1 {
                        best = best.min(gap);
                    }
                }
            }
            if best <= window {
                out.push((da.0, best));
            }
            i += 1;
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_model::Corpus;

    fn build_for(texts: &[&str], config: PairConfig) -> (Corpus, PairIndex) {
        let corpus = Corpus::from_texts(texts);
        let vocab = corpus.interner().len();
        let mut dfs = vec![0u32; vocab];
        let mut seen = vec![u32::MAX; vocab];
        for (d, doc) in corpus.documents().iter().enumerate() {
            for &(t, _) in &doc.tokens {
                if seen[t.index()] != d as u32 {
                    seen[t.index()] = d as u32;
                    dfs[t.index()] += 1;
                }
            }
        }
        let pairs = PairIndex::build(corpus.documents(), &dfs, config);
        (corpus, pairs)
    }

    fn all_pairs() -> PairConfig {
        PairConfig {
            window: 4,
            df_cutoff: 0,
        }
    }

    fn tok(corpus: &Corpus, s: &str) -> TokenId {
        corpus.token_id(s).unwrap()
    }

    #[test]
    fn directed_pairs_store_min_forward_gaps() {
        let (corpus, pairs) = build_for(&["a b c a b"], all_pairs());
        let (a, b, c) = (tok(&corpus, "a"), tok(&corpus, "b"), tok(&corpus, "c"));
        match pairs.lookup(a, b) {
            PairLookup::List(list) => assert_eq!(list.to_entries(), vec![(0, 1)]),
            other => panic!("expected list, got {other:?}"),
        }
        // b → a exists too (gap 2: b at 1, a at 3), direction matters.
        match pairs.lookup(b, a) {
            PairLookup::List(list) => assert_eq!(list.to_entries(), vec![(0, 2)]),
            other => panic!("expected list, got {other:?}"),
        }
        // c → a: gap 1 (c at 2, a at 3).
        match pairs.lookup(c, a) {
            PairLookup::List(list) => assert_eq!(list.to_entries(), vec![(0, 1)]),
            other => panic!("expected list, got {other:?}"),
        }
    }

    #[test]
    fn repeated_token_pairs_index_self_pairs() {
        let (corpus, pairs) = build_for(&["a a a"], all_pairs());
        let a = tok(&corpus, "a");
        match pairs.lookup(a, a) {
            PairLookup::List(list) => assert_eq!(list.to_entries(), vec![(0, 1)]),
            other => panic!("expected list, got {other:?}"),
        }
    }

    #[test]
    fn window_bounds_what_gets_indexed() {
        let (corpus, pairs) = build_for(
            &["a x x x x b"],
            PairConfig {
                window: 4,
                df_cutoff: 0,
            },
        );
        let (a, b) = (tok(&corpus, "a"), tok(&corpus, "b"));
        // Gap is 5 > window 4: both tokens frequent, pair absent → Empty.
        assert!(matches!(pairs.lookup(a, b), PairLookup::Empty));
    }

    #[test]
    fn df_cutoff_excludes_rare_tokens_from_coverage() {
        let (corpus, pairs) = build_for(
            &["common rare common", "common other", "common again"],
            PairConfig {
                window: 4,
                df_cutoff: 2,
            },
        );
        let common = tok(&corpus, "common");
        let rare = tok(&corpus, "rare");
        assert!(pairs.covers(common));
        assert!(!pairs.covers(rare));
        assert!(matches!(pairs.lookup(common, rare), PairLookup::NotCovered));
        assert!(matches!(pairs.lookup(rare, common), PairLookup::NotCovered));
    }

    #[test]
    fn disabled_config_builds_an_empty_uncovered_index() {
        let (corpus, pairs) = build_for(&["a b"], PairConfig::disabled());
        assert!(pairs.is_empty());
        let (a, b) = (tok(&corpus, "a"), tok(&corpus, "b"));
        assert!(matches!(pairs.lookup(a, b), PairLookup::NotCovered));
    }

    #[test]
    fn list_roundtrips_across_block_boundaries() {
        // 300 entries spans 3 blocks; sparse ids and varied gaps.
        let entries: Vec<(u32, u32)> = (0..300u32).map(|i| (i * 7 + 3, 1 + (i % 9))).collect();
        let list = PairList::from_entries(&entries);
        assert_eq!(list.num_blocks(), 3);
        assert_eq!(list.num_entries(), 300);
        assert_eq!(list.to_entries(), entries);
        assert_eq!(list.try_to_entries(16).expect("valid"), entries);
        assert_eq!(list.min_gap(), 1);
    }

    #[test]
    fn cursor_seeks_and_skips_blocks() {
        let entries: Vec<(u32, u32)> = (0..1000u32).map(|i| (2 * i, 1 + (i % 3))).collect();
        let list = PairList::from_entries(&entries);
        let mut cur = list.cursor();
        assert_eq!(cur.seek(NodeId(1501)), Some(NodeId(1502)));
        assert_eq!(cur.gap(), 1 + (751 % 3));
        let c = cur.counters();
        assert_eq!(c.entries, 1);
        assert_eq!(c.pair_entries, 1);
        assert!(c.blocks_skipped >= 5);
        assert!(c.skipped >= 700);
        // Walk off the end.
        assert_eq!(cur.seek(NodeId(10_000)), None);
        assert!(cur.exhausted());
    }

    #[test]
    fn block_min_gap_probes_match_headers() {
        // First two blocks gap 5, third block gap 1.
        let entries: Vec<(u32, u32)> = (0..300u32)
            .map(|i| (i, if i < 256 { 5 } else { 1 }))
            .collect();
        let list = PairList::from_entries(&entries);
        let mut cur = list.cursor();
        cur.next_entry();
        assert_eq!(cur.block_min_gap(), 5);
        assert_eq!(cur.peek_min_gap_at(NodeId(290)), Some(1));
        // Skip to the third block: min gap drops to 1.
        cur.skip_block();
        cur.skip_block();
        assert_eq!(cur.block_min_gap(), 1);
        assert!(cur.counters().blocks_skipped >= 2);
    }

    #[test]
    fn corrupt_pair_bytes_are_errors_not_panics() {
        let entries: Vec<(u32, u32)> = (0..200u32).map(|i| (i * 3, 1 + (i % 4))).collect();
        let list = PairList::from_entries(&entries);
        let (metas, data, count) = list.parts();
        for i in 0..data.len() {
            let mut raw = data.to_vec();
            raw[i] ^= 0x40;
            let candidate = PairList::from_parts(metas.to_vec(), raw, count);
            let _ = candidate.try_to_entries(16);
        }
        // A lying header is always an error.
        let mut bad = metas.to_vec();
        bad[1].min_gap += 1;
        let candidate = PairList::from_parts(bad, data.to_vec(), count);
        assert!(candidate.try_to_entries(16).is_err());
        // Gaps past the declared window are rejected.
        assert!(list.try_to_entries(2).is_err());
    }

    #[test]
    fn oracle_agrees_with_the_built_index() {
        let texts = [
            "the quick brown fox jumps over the lazy dog",
            "the brown dog sleeps",
            "fox and dog and fox",
            "quick quick brown",
        ];
        let (corpus, pairs) = build_for(&texts, all_pairs());
        let index = crate::builder::IndexBuilder::new().build(&corpus);
        let vocab = corpus.interner().len();
        for a in 0..vocab {
            for b in 0..vocab {
                let (ta, tb) = (TokenId(a as u32), TokenId(b as u32));
                let mut c = AccessCounters::new();
                let oracle = min_forward_gaps(index.list(ta), index.list(tb), 4, &mut c);
                let got = match pairs.lookup(ta, tb) {
                    PairLookup::List(list) => list.to_entries(),
                    PairLookup::Empty => Vec::new(),
                    PairLookup::NotCovered => panic!("cutoff 0 covers everything"),
                };
                assert_eq!(got, oracle, "pair ({a}, {b})");
            }
        }
    }
}
