//! Residency policy: which physical forms of the index stay in RAM.
//!
//! PR 1 made the block-compressed [`crate::block::BlockList`] the persisted
//! layout but kept every list *dual-resident* — compressed blocks and the
//! decoded columnar [`PostingList`] side by side — so the ~3.5× compression
//! win never reached memory. [`Residency::BlocksOnly`] fixes that: the
//! decoded views are dropped, every evaluation path reads the compressed
//! form through lazy cursors, and the few remaining random-access consumers
//! (the materialized COMP/scored-algebra oracles) decode whole lists on
//! demand through a small LRU cache ([`DecodeCache`]) so hot lists pay the
//! decompression once, not per query.

use crate::postings::PostingList;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which physical list forms an [`crate::InvertedIndex`] keeps resident.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Residency {
    /// Both forms hot (the PR 1 default): compressed blocks serve seeks and
    /// persistence, decoded columnar views serve random access. RAM pays
    /// for both.
    #[default]
    Dual,
    /// Only the compressed blocks stay resident. Streaming engines read
    /// them directly; random-access consumers go through the LRU
    /// [`DecodeCache`]. `memory_footprint()` shows the compressed-only
    /// number.
    BlocksOnly,
}

impl std::fmt::Display for Residency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Residency::Dual => f.write_str("dual-resident"),
            Residency::BlocksOnly => f.write_str("single-resident (blocks)"),
        }
    }
}

/// A borrowed-or-cached view of a decoded posting list.
///
/// Under [`Residency::Dual`] this is a zero-cost borrow of the resident
/// decoded view; under [`Residency::BlocksOnly`] it is a shared handle into
/// the [`DecodeCache`], kept alive for as long as the caller holds it (LRU
/// eviction drops the cache's reference, never the caller's).
pub enum DecodedView<'a> {
    /// Borrow of a resident decoded list (dual residency, and the empty
    /// out-of-vocabulary list under either residency).
    Resident(&'a PostingList),
    /// Shared handle to a list decoded on demand (blocks-only residency).
    Cached(Arc<PostingList>),
}

impl std::ops::Deref for DecodedView<'_> {
    type Target = PostingList;
    fn deref(&self) -> &PostingList {
        match self {
            DecodedView::Resident(list) => list,
            DecodedView::Cached(arc) => arc,
        }
    }
}

/// Default number of decoded lists the [`DecodeCache`] retains.
pub const DEFAULT_DECODE_CACHE_LISTS: usize = 8;

/// Counters and size of the block-decode cache (diagnostics for `:stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode the list.
    pub misses: u64,
    /// Decoded lists currently retained.
    pub lists: usize,
    /// Resident heap bytes of the retained decoded lists.
    pub resident_bytes: usize,
}

/// A small LRU cache of decoded posting lists, keyed by list slot.
///
/// Exists only to keep *hot* random-access scans fast under
/// [`Residency::BlocksOnly`]: the handful of lists a workload keeps asking
/// for are decoded once and reused; cold lists are evicted and their memory
/// returned. Retention is bounded twice — at most `capacity` lists, and at
/// most `max_bytes` of decoded payload (a list bigger than the whole byte
/// budget, e.g. a decoded `IL_ANY`, is handed to the caller but never
/// retained) — so the blocks-only footprint cannot creep back toward the
/// dual-resident number through the cache.
#[derive(Debug)]
pub struct DecodeCache {
    capacity: usize,
    max_bytes: usize,
    /// MRU-first list of `(slot, decoded)` pairs. A `Vec` scan is fine at
    /// this capacity (≤ a few dozen); no ordered map needed.
    inner: Mutex<Vec<(usize, Arc<PostingList>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DecodeCache {
    fn default() -> Self {
        DecodeCache::new(DEFAULT_DECODE_CACHE_LISTS)
    }
}

impl Clone for DecodeCache {
    /// Cloning an index starts with a fresh, empty cache of the same
    /// bounds (cached decodes are derived data, not state worth copying).
    fn clone(&self) -> Self {
        DecodeCache::with_byte_budget(self.capacity, self.max_bytes)
    }
}

impl DecodeCache {
    /// A cache retaining at most `capacity` decoded lists (min 1), with no
    /// byte budget.
    pub fn new(capacity: usize) -> Self {
        DecodeCache::with_byte_budget(capacity, usize::MAX)
    }

    /// A cache bounded by both list count and total decoded bytes.
    pub fn with_byte_budget(capacity: usize, max_bytes: usize) -> Self {
        DecodeCache {
            capacity: capacity.max(1),
            max_bytes,
            inner: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetch the decoded list for `slot`, decoding it via `decode` on a
    /// miss. The returned handle stays valid after eviction (and is valid
    /// even when the list is too large to retain at all).
    pub fn get_or_decode(
        &self,
        slot: usize,
        decode: impl FnOnce() -> PostingList,
    ) -> Arc<PostingList> {
        {
            let mut inner = self.inner.lock().expect("decode cache poisoned");
            if let Some(i) = inner.iter().position(|(s, _)| *s == slot) {
                let entry = inner.remove(i);
                let handle = entry.1.clone();
                inner.insert(0, entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return handle;
            }
        }
        // Decode outside the lock: lists can be large and decodes concurrent.
        let decoded = Arc::new(decode());
        let mut inner = self.inner.lock().expect("decode cache poisoned");
        if let Some(i) = inner.iter().position(|(s, _)| *s == slot) {
            // A concurrent decode won the race; keep the cached copy.
            let entry = inner.remove(i);
            let handle = entry.1.clone();
            inner.insert(0, entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return handle;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if decoded.resident_bytes() <= self.max_bytes {
            inner.insert(0, (slot, decoded.clone()));
            inner.truncate(self.capacity);
            // Enforce the byte budget LRU-first (the fresh insert at the
            // front fits on its own, so at least it survives).
            let mut bytes: usize = inner.iter().map(|(_, l)| l.resident_bytes()).sum();
            while bytes > self.max_bytes && inner.len() > 1 {
                let (_, evicted) = inner.pop().expect("len > 1");
                bytes -= evicted.resident_bytes();
            }
        }
        decoded
    }

    /// Drop every cached list (residency changes, explicit flushes).
    pub fn clear(&self) {
        self.inner.lock().expect("decode cache poisoned").clear();
    }

    /// Hit/miss counters and current resident size.
    pub fn stats(&self) -> DecodeCacheStats {
        let inner = self.inner.lock().expect("decode cache poisoned");
        DecodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            lists: inner.len(),
            resident_bytes: inner.iter().map(|(_, l)| l.resident_bytes()).sum(),
        }
    }

    /// Resident heap bytes of the retained decoded lists.
    pub fn resident_bytes(&self) -> usize {
        self.stats().resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_model::{NodeId, Position};

    fn list(n: u32) -> PostingList {
        PostingList::from_entries(vec![(NodeId(n), vec![Position::flat(0)])])
    }

    #[test]
    fn cache_hits_after_first_decode() {
        let cache = DecodeCache::new(2);
        let a = cache.get_or_decode(0, || list(0));
        let b = cache.get_or_decode(0, || panic!("must not re-decode"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.lists), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = DecodeCache::new(2);
        cache.get_or_decode(0, || list(0));
        cache.get_or_decode(1, || list(1));
        cache.get_or_decode(0, || panic!("0 is hot")); // 0 becomes MRU
        cache.get_or_decode(2, || list(2)); // evicts 1
        cache.get_or_decode(0, || panic!("0 still cached"));
        let mut re_decoded = false;
        cache.get_or_decode(1, || {
            re_decoded = true;
            list(1)
        });
        assert!(re_decoded, "evicted slot must decode again");
    }

    #[test]
    fn byte_budget_caps_retention_and_never_retains_oversized_lists() {
        let small = |n: u32| list(n); // ~24 resident bytes each
        let big = || {
            PostingList::from_entries(
                (0..1000)
                    .map(|i| (NodeId(i), vec![Position::flat(i)]))
                    .collect(),
            )
        };
        let cache = DecodeCache::with_byte_budget(8, 100);
        // A list bigger than the whole budget is served but not retained.
        let handle = cache.get_or_decode(0, big);
        assert_eq!(handle.num_entries(), 1000);
        assert_eq!(cache.stats().lists, 0, "oversized list must not stick");
        // Small lists are retained up to the byte budget, LRU-evicted past
        // it even though the list-count capacity (8) is not reached.
        for slot in 1..=6 {
            cache.get_or_decode(slot, || small(slot as u32));
        }
        let s = cache.stats();
        assert!(
            s.resident_bytes <= 100,
            "cache holds {}B over the 100B budget",
            s.resident_bytes
        );
        assert!(s.lists < 6, "byte budget should have evicted something");
    }

    #[test]
    fn evicted_handles_stay_valid() {
        let cache = DecodeCache::new(1);
        let a = cache.get_or_decode(0, || list(7));
        cache.get_or_decode(1, || list(1)); // evicts slot 0
        assert_eq!(a.node_of(0), NodeId(7));
        assert_eq!(cache.stats().lists, 1);
    }
}
