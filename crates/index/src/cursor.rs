//! The paper's sequential inverted-list cursor (Section 5.1.2).
//!
//! "The only way to access an inverted list `IL_tok` is to open a cursor"
//! supporting `nextEntry()` and `getPositions()`, each O(1). [`ListCursor`]
//! implements exactly that contract and additionally tracks a position-level
//! sub-cursor (`advance_position`) used by the streaming engines: positions
//! within the current entry are also consumed strictly left-to-right, so a
//! full evaluation touches each list element at most once.

use crate::counters::AccessCounters;
use crate::postings::PostingList;
use ftsl_model::{NodeId, Position};

/// A forward-only cursor over one [`PostingList`].
#[derive(Clone, Debug)]
pub struct ListCursor<'a> {
    list: &'a PostingList,
    /// Index of the current entry; `usize::MAX` before the first
    /// `next_entry` call.
    entry: usize,
    /// Index of the current position within the current entry.
    pos: usize,
    counters: AccessCounters,
}

impl<'a> ListCursor<'a> {
    /// Open a cursor at the start of `list`.
    pub fn new(list: &'a PostingList) -> Self {
        ListCursor { list, entry: usize::MAX, pos: 0, counters: AccessCounters::new() }
    }

    /// `nextEntry()`: advance to the next entry and return its node id, or
    /// `None` when the list is exhausted.
    pub fn next_entry(&mut self) -> Option<NodeId> {
        let next = if self.entry == usize::MAX { 0 } else { self.entry + 1 };
        if next >= self.list.num_entries() {
            self.entry = self.list.num_entries();
            return None;
        }
        self.entry = next;
        self.pos = 0;
        self.counters.entries += 1;
        Some(self.list.node_of(self.entry))
    }

    /// The node id of the current entry.
    pub fn node(&self) -> Option<NodeId> {
        (self.entry != usize::MAX && self.entry < self.list.num_entries())
            .then(|| self.list.node_of(self.entry))
    }

    /// `getPositions()`: the position list of the current entry.
    ///
    /// # Panics
    /// Panics if called before the first successful [`Self::next_entry`].
    pub fn positions(&self) -> &'a [Position] {
        assert!(self.entry != usize::MAX, "cursor not positioned on an entry");
        self.list.positions_of(self.entry)
    }

    /// The current position within the current entry, if any remain.
    pub fn position(&self) -> Option<Position> {
        let ps = self.list.positions_of(self.entry);
        ps.get(self.pos).copied()
    }

    /// Advance the position sub-cursor to the first position with
    /// `offset >= min_offset`; returns it, or `None` if the entry is
    /// exhausted. Consumed positions are counted once each.
    pub fn advance_position(&mut self, min_offset: u32) -> Option<Position> {
        let ps = self.list.positions_of(self.entry);
        while let Some(p) = ps.get(self.pos) {
            if p.offset >= min_offset {
                return Some(*p);
            }
            self.pos += 1;
            self.counters.positions += 1;
        }
        None
    }

    /// Reset the position sub-cursor to the start of the current entry
    /// (used when a different evaluation thread re-scans; counts as fresh
    /// accesses, which is exactly the paper's `toks_Q!`-scans cost model).
    pub fn rewind_positions(&mut self) {
        self.pos = 0;
    }

    /// Access counters accumulated by this cursor.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    /// True if all entries have been consumed.
    pub fn exhausted(&self) -> bool {
        self.entry != usize::MAX && self.entry >= self.list.num_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(o: u32) -> Position {
        Position::flat(o)
    }

    fn sample() -> PostingList {
        PostingList::from_entries(vec![
            (NodeId(1), vec![p(3), p(12), p(39)]),
            (NodeId(4), vec![p(51), p(56)]),
        ])
    }

    #[test]
    fn next_entry_walks_nodes_in_order() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        assert_eq!(c.next_entry(), Some(NodeId(1)));
        assert_eq!(c.node(), Some(NodeId(1)));
        assert_eq!(c.next_entry(), Some(NodeId(4)));
        assert_eq!(c.next_entry(), None);
        assert!(c.exhausted());
        assert_eq!(c.counters().entries, 2);
    }

    #[test]
    fn get_positions_returns_entry_positions() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        c.next_entry();
        assert_eq!(c.positions(), &[p(3), p(12), p(39)]);
    }

    #[test]
    fn advance_position_is_monotone_and_counted() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        c.next_entry();
        assert_eq!(c.advance_position(0), Some(p(3)));
        assert_eq!(c.advance_position(4), Some(p(12)));
        assert_eq!(c.advance_position(13), Some(p(39)));
        assert_eq!(c.advance_position(40), None);
        // Positions 3 and 12 were consumed (39 is still current-candidate
        // when the search for >=40 skips it, making 3 consumed total).
        assert_eq!(c.counters().positions, 3);
    }

    #[test]
    fn advance_position_same_bound_is_stable() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        c.next_entry();
        assert_eq!(c.advance_position(12), Some(p(12)));
        assert_eq!(c.advance_position(12), Some(p(12)));
    }

    #[test]
    #[should_panic]
    fn positions_before_first_entry_panics() {
        let list = sample();
        let c = ListCursor::new(&list);
        let _ = c.positions();
    }
}
