//! The paper's sequential inverted-list cursor (Section 5.1.2), extended
//! with skip-aware seeking.
//!
//! "The only way to access an inverted list `IL_tok` is to open a cursor"
//! supporting `nextEntry()` and `getPositions()`, each O(1). [`ListCursor`]
//! implements exactly that contract and additionally tracks a position-level
//! sub-cursor (`advance_position`) used by the streaming engines: positions
//! within the current entry are also consumed strictly left-to-right, so a
//! full evaluation touches each list element at most once.
//!
//! Beyond the paper's contract, [`ListCursor::seek`] jumps forward to the
//! first entry with a node id ≥ a target by galloping (doubling search) over
//! the decoded node array; [`crate::block::BlockCursor`] provides the same
//! operation over the compressed layout using block skip headers. Entries a
//! seek bypasses are counted in [`AccessCounters::skipped`], never in
//! `entries`, so skip-driven and sequential evaluation can be compared on
//! exact decode work.

use crate::counters::AccessCounters;
use crate::postings::PostingList;
use ftsl_model::{NodeId, Position};

/// The node-level cursor contract shared by [`ListCursor`] (decoded layout)
/// and [`crate::block::BlockCursor`] (compressed layout): sequential
/// `next_entry` plus the skip-aware `seek` extension, with access counting.
/// Lets evaluation strategies run unchanged over either physical form.
pub trait PostingCursor {
    /// Advance to the next entry and return its node id.
    fn next_entry(&mut self) -> Option<NodeId>;
    /// Advance to the first entry with node id ≥ `target`.
    fn seek(&mut self, target: NodeId) -> Option<NodeId>;
    /// Counters accumulated so far.
    fn counters(&self) -> AccessCounters;
}

impl PostingCursor for ListCursor<'_> {
    fn next_entry(&mut self) -> Option<NodeId> {
        ListCursor::next_entry(self)
    }
    fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        ListCursor::seek(self, target)
    }
    fn counters(&self) -> AccessCounters {
        ListCursor::counters(self)
    }
}

impl PostingCursor for crate::block::BlockCursor<'_> {
    fn next_entry(&mut self) -> Option<NodeId> {
        crate::block::BlockCursor::next_entry(self)
    }
    fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        crate::block::BlockCursor::seek(self, target)
    }
    fn counters(&self) -> AccessCounters {
        crate::block::BlockCursor::counters(self)
    }
}

/// A forward-only cursor over one [`PostingList`].
#[derive(Clone, Debug)]
pub struct ListCursor<'a> {
    list: &'a PostingList,
    /// Index of the current entry; `usize::MAX` before the first
    /// `next_entry` call.
    entry: usize,
    /// Index of the current position within the current entry.
    pos: usize,
    counters: AccessCounters,
    /// Whether the current entry's position slice has been looked at.
    /// `Cell`s because the inspection accessors (`positions`, `position`)
    /// take `&self`, mirroring the lazy-decode accounting of the block
    /// layout where the same accessors trigger real decompression.
    inspected: std::cell::Cell<bool>,
    pos_decoded: std::cell::Cell<u64>,
}

impl<'a> ListCursor<'a> {
    /// Open a cursor at the start of `list`.
    pub fn new(list: &'a PostingList) -> Self {
        ListCursor {
            list,
            entry: usize::MAX,
            pos: 0,
            counters: AccessCounters::new(),
            inspected: std::cell::Cell::new(false),
            pos_decoded: std::cell::Cell::new(0),
        }
    }

    /// Record the first inspection of the current entry's positions. The
    /// decoded layout holds positions resident, so nothing is decompressed —
    /// but counting the inspection keeps
    /// [`AccessCounters::positions_decoded`] comparable across layouts.
    fn mark_inspected(&self) {
        if self.entry != usize::MAX && self.entry < self.list.num_entries() && !self.inspected.get()
        {
            self.inspected.set(true);
            self.pos_decoded
                .set(self.pos_decoded.get() + self.list.positions_of(self.entry).len() as u64);
        }
    }

    /// `nextEntry()`: advance to the next entry and return its node id, or
    /// `None` when the list is exhausted.
    pub fn next_entry(&mut self) -> Option<NodeId> {
        let next = if self.entry == usize::MAX {
            0
        } else {
            self.entry + 1
        };
        if next >= self.list.num_entries() {
            self.entry = self.list.num_entries();
            return None;
        }
        self.entry = next;
        self.pos = 0;
        self.inspected.set(false);
        self.counters.entries += 1;
        Some(self.list.node_of(self.entry))
    }

    /// `seek(node)`: advance to the first entry with node id ≥ `target`.
    ///
    /// Stays put when the current entry already satisfies the bound.
    /// Bypassed entries are *galloped over* — found by doubling search on
    /// the node array, counted in [`AccessCounters::skipped`] rather than
    /// `entries` — so a conjunction driven by its rarest list decodes
    /// O(rare · log common) entries instead of O(rare + common).
    ///
    /// ```
    /// use ftsl_index::{ListCursor, PostingList};
    /// use ftsl_model::{NodeId, Position};
    ///
    /// let list = PostingList::from_entries(
    ///     (0..100).map(|i| (NodeId(2 * i), vec![Position::flat(0)])).collect(),
    /// );
    /// let mut cur = ListCursor::new(&list);
    /// assert_eq!(cur.seek(NodeId(51)), Some(NodeId(52)));   // lands past 50
    /// assert_eq!(cur.seek(NodeId(52)), Some(NodeId(52)));   // stays put
    /// assert_eq!(cur.seek(NodeId(1000)), None);             // exhausted
    /// assert!(cur.counters().skipped > 0);
    /// ```
    pub fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        let n = self.list.num_entries();
        let start = if self.entry == usize::MAX {
            0
        } else if self.entry >= n {
            return None;
        } else if self.list.node_of(self.entry) >= target {
            return Some(self.list.node_of(self.entry));
        } else {
            self.entry + 1
        };
        // Gallop: double the step until we overshoot, then binary-search the
        // bracketed window. O(log distance) comparisons.
        let mut lo = start;
        let mut step = 1usize;
        while lo + step < n && self.list.node_of(lo + step) < target {
            lo += step;
            step *= 2;
        }
        let hi = (lo + step).min(n);
        let found = lo
            + self
                .list
                .nodes_in(lo, hi)
                .partition_point(|&node| node < target);
        let skipped = (found - start) as u64;
        self.counters.skipped += skipped;
        if found >= n {
            self.entry = n;
            return None;
        }
        self.entry = found;
        self.pos = 0;
        self.inspected.set(false);
        self.counters.entries += 1;
        Some(self.list.node_of(found))
    }

    /// The node id of the current entry.
    pub fn node(&self) -> Option<NodeId> {
        (self.entry != usize::MAX && self.entry < self.list.num_entries())
            .then(|| self.list.node_of(self.entry))
    }

    /// Term frequency of the current entry (its position count).
    ///
    /// # Panics
    /// Panics if called before the first successful [`Self::next_entry`].
    pub fn tf(&self) -> u32 {
        assert!(
            self.entry != usize::MAX && self.entry < self.list.num_entries(),
            "cursor not positioned on an entry"
        );
        self.list.positions_of(self.entry).len() as u32
    }

    /// Exhaust the cursor, counting every remaining (undecoded) entry as
    /// skipped. The decoded layout has no block structure, so this is what
    /// "skip the current block" degrades to when a score bound proves the
    /// rest of the list cannot contribute.
    pub fn skip_remaining(&mut self) {
        let n = self.list.num_entries();
        let remaining = if self.entry == usize::MAX {
            n
        } else {
            n.saturating_sub(self.entry + 1)
        };
        self.counters.skipped += remaining as u64;
        self.entry = n;
    }

    /// `getPositions()`: the position list of the current entry.
    ///
    /// # Panics
    /// Panics if called before the first successful [`Self::next_entry`].
    pub fn positions(&self) -> &'a [Position] {
        assert!(
            self.entry != usize::MAX,
            "cursor not positioned on an entry"
        );
        self.mark_inspected();
        self.list.positions_of(self.entry)
    }

    /// The current position within the current entry, if any remain.
    pub fn position(&self) -> Option<Position> {
        self.mark_inspected();
        let ps = self.list.positions_of(self.entry);
        ps.get(self.pos).copied()
    }

    /// Advance the position sub-cursor to the first position with
    /// `offset >= min_offset`; returns it, or `None` if the entry is
    /// exhausted. Consumed positions are counted once each.
    pub fn advance_position(&mut self, min_offset: u32) -> Option<Position> {
        self.mark_inspected();
        let ps = self.list.positions_of(self.entry);
        while let Some(p) = ps.get(self.pos) {
            if p.offset >= min_offset {
                return Some(*p);
            }
            self.pos += 1;
            self.counters.positions += 1;
        }
        None
    }

    /// Reset the position sub-cursor to the start of the current entry
    /// (used when a different evaluation thread re-scans; counts as fresh
    /// accesses, which is exactly the paper's `toks_Q!`-scans cost model).
    pub fn rewind_positions(&mut self) {
        self.pos = 0;
    }

    /// Access counters accumulated by this cursor.
    pub fn counters(&self) -> AccessCounters {
        let mut c = self.counters;
        c.positions_decoded = self.pos_decoded.get();
        c
    }

    /// True if all entries have been consumed.
    pub fn exhausted(&self) -> bool {
        self.entry != usize::MAX && self.entry >= self.list.num_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(o: u32) -> Position {
        Position::flat(o)
    }

    fn sample() -> PostingList {
        PostingList::from_entries(vec![
            (NodeId(1), vec![p(3), p(12), p(39)]),
            (NodeId(4), vec![p(51), p(56)]),
        ])
    }

    #[test]
    fn next_entry_walks_nodes_in_order() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        assert_eq!(c.next_entry(), Some(NodeId(1)));
        assert_eq!(c.node(), Some(NodeId(1)));
        assert_eq!(c.next_entry(), Some(NodeId(4)));
        assert_eq!(c.next_entry(), None);
        assert!(c.exhausted());
        assert_eq!(c.counters().entries, 2);
    }

    #[test]
    fn get_positions_returns_entry_positions() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        c.next_entry();
        assert_eq!(c.positions(), &[p(3), p(12), p(39)]);
    }

    #[test]
    fn advance_position_is_monotone_and_counted() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        c.next_entry();
        assert_eq!(c.advance_position(0), Some(p(3)));
        assert_eq!(c.advance_position(4), Some(p(12)));
        assert_eq!(c.advance_position(13), Some(p(39)));
        assert_eq!(c.advance_position(40), None);
        // Positions 3 and 12 were consumed (39 is still current-candidate
        // when the search for >=40 skips it, making 3 consumed total).
        assert_eq!(c.counters().positions, 3);
    }

    #[test]
    fn advance_position_same_bound_is_stable() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        c.next_entry();
        assert_eq!(c.advance_position(12), Some(p(12)));
        assert_eq!(c.advance_position(12), Some(p(12)));
    }

    #[test]
    fn positions_decoded_counts_first_inspection_per_entry() {
        let list = sample();
        let mut c = ListCursor::new(&list);
        c.next_entry();
        assert_eq!(c.counters().positions_decoded, 0);
        let _ = c.positions();
        let _ = c.positions(); // second look is free
        assert_eq!(c.counters().positions_decoded, 3);
        c.next_entry(); // positions never inspected
        assert_eq!(c.counters().positions_decoded, 3);
    }

    #[test]
    #[should_panic]
    fn positions_before_first_entry_panics() {
        let list = sample();
        let c = ListCursor::new(&list);
        let _ = c.positions();
    }
}
