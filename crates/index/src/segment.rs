//! Segments: the building blocks of the live (LSM-style) index.
//!
//! A [`SegmentData`] is one sealed, immutable slice of the collection — a
//! per-segment [`Corpus`] (local node ids `0..n`) plus the
//! [`InvertedIndex`] built over it, plus the mapping from local node ids to
//! the *global* node ids the [`crate::live::LiveIndex`] hands out. Deletes
//! never touch a sealed segment; they live next to it in a copy-on-write
//! [`DeleteSet`] bitmap, so a held snapshot keeps the bits it saw while the
//! live index keeps marking new tombstones.
//!
//! The [`MemSegment`] is the mutable write buffer: documents accumulate in
//! a plain [`Corpus`] (which owns the *current* global vocabulary) until a
//! flush seals them into a [`SegmentData`].

use crate::builder::IndexBuilder;
use crate::counters::AccessCounters;
use crate::index::InvertedIndex;
use crate::scored::ScoredCursor;
use ftsl_model::{Corpus, Document, NodeId, Tokenizer};

/// A per-segment tombstone bitmap over local node ids.
///
/// Cloning is cheap relative to segment size (one word per 64 documents),
/// which is what makes copy-on-write snapshots work: the live index mutates
/// a fresh clone (`Arc::make_mut`) while snapshots keep the frozen one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeleteSet {
    words: Vec<u64>,
    len: usize,
    deleted: usize,
}

impl DeleteSet {
    /// An all-live bitmap over `len` local node ids.
    pub fn new(len: usize) -> Self {
        DeleteSet {
            words: vec![0; len.div_ceil(64)],
            len,
            deleted: 0,
        }
    }

    /// Number of local node ids covered (live or deleted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitmap covers no documents at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extend the bitmap with one more live slot (write-buffer growth).
    pub fn push_slot(&mut self) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
    }

    /// Mark a local node deleted. Returns `false` if it was already deleted
    /// or out of range (so callers can report idempotent deletes honestly).
    pub fn delete(&mut self, local: usize) -> bool {
        if local >= self.len || self.is_deleted(local) {
            return false;
        }
        self.words[local / 64] |= 1 << (local % 64);
        self.deleted += 1;
        true
    }

    /// Whether a local node is tombstoned. Out-of-range ids read as live.
    pub fn is_deleted(&self, local: usize) -> bool {
        local < self.len && self.words[local / 64] & (1 << (local % 64)) != 0
    }

    /// Whether a local node is still live.
    pub fn is_live(&self, local: usize) -> bool {
        !self.is_deleted(local)
    }

    /// Number of tombstoned documents.
    pub fn deleted_count(&self) -> usize {
        self.deleted
    }

    /// Number of live documents.
    pub fn live_count(&self) -> usize {
        self.len - self.deleted
    }

    /// Iterate the tombstoned local node ids in ascending order.
    pub fn iter_deleted(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.is_deleted(i))
    }

    /// The raw bitmap words (for persistence; `len` words cover
    /// [`Self::len`] slots, trailing bits zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap from persisted parts.
    ///
    /// Returns `None` when the parts are inconsistent (wrong word count,
    /// set bits past `len`, or a popcount that disagrees with `deleted`) —
    /// persistence treats that as corruption, never as a panic.
    pub fn from_parts(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if let Some(&last) = words.last() {
            let used = len - (words.len() - 1) * 64;
            if used < 64 && last >> used != 0 {
                return None;
            }
        }
        let deleted = words.iter().map(|w| w.count_ones() as usize).sum();
        Some(DeleteSet {
            words,
            len,
            deleted,
        })
    }
}

/// One sealed, immutable segment: a local corpus, its inverted index, and
/// the global node ids its local ids map to.
#[derive(Clone, Debug)]
pub struct SegmentData {
    id: u64,
    corpus: Corpus,
    index: InvertedIndex,
    /// `globals[local]` is the global node id of local node `local`;
    /// strictly ascending (segments own disjoint, ordered global ranges).
    globals: Vec<u32>,
}

impl SegmentData {
    /// Seal a corpus (local node ids `0..n`) into a segment.
    ///
    /// # Panics
    /// Panics if `globals` is not strictly ascending or disagrees with the
    /// corpus length — both would corrupt the global id space silently.
    pub fn seal(id: u64, corpus: Corpus, globals: Vec<u32>) -> Self {
        assert_eq!(globals.len(), corpus.len(), "one global id per document");
        assert!(
            globals.windows(2).all(|w| w[0] < w[1]),
            "global ids must be strictly ascending"
        );
        let index = IndexBuilder::new().build(&corpus);
        SegmentData {
            id,
            corpus,
            index,
            globals,
        }
    }

    /// Reassemble a segment from persisted parts, trusting the caller (the
    /// manifest decoder) to have validated corpus/index agreement. The
    /// ascending-globals invariant is still enforced here.
    pub(crate) fn from_parts(
        id: u64,
        corpus: Corpus,
        globals: Vec<u32>,
        index: InvertedIndex,
    ) -> Self {
        assert_eq!(globals.len(), corpus.len(), "one global id per document");
        assert!(
            globals.windows(2).all(|w| w[0] < w[1]),
            "global ids must be strictly ascending"
        );
        SegmentData {
            id,
            corpus,
            index,
            globals,
        }
    }

    /// The segment's identity (unique within one live index; merge commits
    /// locate their inputs by it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The per-segment corpus (local node ids).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The per-segment inverted index (local node ids).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Number of documents sealed into the segment (including tombstoned
    /// ones — tombstones live outside the immutable data).
    pub fn num_docs(&self) -> usize {
        self.globals.len()
    }

    /// The global node id of a local node.
    pub fn global_of(&self, local: usize) -> NodeId {
        NodeId(self.globals[local])
    }

    /// The local node id holding `global`, if this segment owns it.
    pub fn local_of(&self, global: NodeId) -> Option<usize> {
        self.globals.binary_search(&global.0).ok()
    }

    /// The global id range `[first, last]` this segment covers (`None` when
    /// empty). Ranges of distinct segments never overlap.
    pub fn global_range(&self) -> Option<(u32, u32)> {
        Some((*self.globals.first()?, *self.globals.last()?))
    }

    /// All `(local, global)` pairs in ascending order.
    pub fn globals(&self) -> &[u32] {
        &self.globals
    }

    /// The document at a local node id.
    pub fn document(&self, local: usize) -> &Document {
        self.corpus.document(NodeId(local as u32))
    }
}

/// The mutable in-memory write buffer: documents accumulate here between
/// flushes. Its corpus owns the *current* global token vocabulary — sealed
/// segments carry clones of it, which keeps token ids prefix-consistent
/// across the whole live index.
#[derive(Clone, Debug)]
pub struct MemSegment {
    corpus: Corpus,
    globals: Vec<u32>,
}

impl MemSegment {
    /// An empty buffer continuing from an existing vocabulary.
    pub fn new(corpus: Corpus) -> Self {
        assert!(corpus.is_empty(), "write buffer must start without docs");
        MemSegment {
            corpus,
            globals: Vec::new(),
        }
    }

    /// Tokenize and append one document under global id `global`.
    pub fn add(&mut self, tokenizer: &Tokenizer, text: &str, global: u32) {
        debug_assert!(self.globals.last().is_none_or(|&g| g < global));
        self.corpus.add_text_with(tokenizer, text);
        self.globals.push(global);
    }

    /// Number of buffered documents.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// True iff nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// The local slot of `global`, if buffered here.
    pub fn local_of(&self, global: NodeId) -> Option<usize> {
        self.globals.binary_search(&global.0).ok()
    }

    /// The buffered corpus (which owns the live vocabulary).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Seal the current buffer contents into a [`SegmentData`] under
    /// segment id `id`, leaving the buffer itself untouched (the caller
    /// decides whether this is a flush or a point-in-time read view).
    pub fn seal_view(&self, id: u64) -> SegmentData {
        SegmentData::seal(id, self.corpus.clone(), self.globals.clone())
    }

    /// Drain the buffer: return its contents and reset it to an empty
    /// corpus that keeps the (grown) vocabulary.
    pub fn drain(&mut self) -> (Corpus, Vec<u32>) {
        let vocab = self.corpus.interner().clone();
        let corpus = std::mem::replace(&mut self.corpus, Corpus::with_interner(vocab));
        let globals = std::mem::take(&mut self.globals);
        (corpus, globals)
    }
}

/// A [`ScoredCursor`] that steps over tombstoned entries — the
/// delete-filtering wrapper the streaming top-k evaluators put around every
/// per-segment leaf cursor, so deleted documents can neither enter the heap
/// nor displace live candidates.
///
/// `next_entry`/`seek` keep advancing the inner cursor until it lands on a
/// live node; score *bounds* are forwarded untouched (a bound over a
/// superset of the live entries is still a sound upper bound).
pub struct DeleteFilteredCursor<'a> {
    inner: Box<dyn ScoredCursor + 'a>,
    deletes: &'a DeleteSet,
}

impl<'a> DeleteFilteredCursor<'a> {
    /// Wrap `inner`, filtering by `deletes` (local node ids).
    pub fn new(inner: Box<dyn ScoredCursor + 'a>, deletes: &'a DeleteSet) -> Self {
        DeleteFilteredCursor { inner, deletes }
    }

    fn advance_to_live(&mut self, mut node: NodeId) -> Option<NodeId> {
        while self.deletes.is_deleted(node.index()) {
            node = self.inner.next_entry()?;
        }
        Some(node)
    }
}

impl ScoredCursor for DeleteFilteredCursor<'_> {
    fn node(&self) -> Option<NodeId> {
        // Invariant: after every advance the inner cursor rests on a live
        // entry, so no filtering is needed here.
        self.inner.node()
    }

    fn next_entry(&mut self) -> Option<NodeId> {
        let node = self.inner.next_entry()?;
        self.advance_to_live(node)
    }

    fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        let node = self.inner.seek(target)?;
        self.advance_to_live(node)
    }

    fn score(&mut self) -> f64 {
        self.inner.score()
    }

    fn max_score_current_block(&self) -> f64 {
        self.inner.max_score_current_block()
    }

    fn max_score_list(&self) -> f64 {
        self.inner.max_score_list()
    }

    fn max_score_at(&self, target: NodeId) -> f64 {
        self.inner.max_score_at(target)
    }

    fn skip_block(&mut self) -> Option<NodeId> {
        let node = self.inner.skip_block()?;
        self.advance_to_live(node)
    }

    fn exhausted(&self) -> bool {
        self.inner.exhausted()
    }

    fn counters(&self) -> AccessCounters {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scored::EntryScorer;
    use crate::IndexLayout;

    #[test]
    fn delete_set_marks_counts_and_iterates() {
        let mut d = DeleteSet::new(130);
        assert_eq!(d.len(), 130);
        assert_eq!(d.live_count(), 130);
        assert!(d.delete(0));
        assert!(d.delete(129));
        assert!(d.delete(64));
        assert!(!d.delete(64), "double delete is reported");
        assert!(!d.delete(500), "out of range is reported");
        assert!(d.is_deleted(129) && d.is_live(1));
        assert_eq!(d.deleted_count(), 3);
        assert_eq!(d.live_count(), 127);
        assert_eq!(d.iter_deleted().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn delete_set_roundtrips_through_parts() {
        let mut d = DeleteSet::new(70);
        d.delete(3);
        d.delete(69);
        let back = DeleteSet::from_parts(d.words().to_vec(), d.len()).unwrap();
        assert_eq!(back, d);
        // Wrong word count and stray high bits are rejected.
        assert!(DeleteSet::from_parts(vec![0], 70).is_none());
        assert!(DeleteSet::from_parts(vec![0, 1 << 63], 70).is_none());
    }

    #[test]
    fn segment_maps_locals_to_globals() {
        let corpus = Corpus::from_texts(&["a b", "b c", "c"]);
        let seg = SegmentData::seal(7, corpus, vec![10, 12, 40]);
        assert_eq!(seg.id(), 7);
        assert_eq!(seg.num_docs(), 3);
        assert_eq!(seg.global_of(1), NodeId(12));
        assert_eq!(seg.local_of(NodeId(40)), Some(2));
        assert_eq!(seg.local_of(NodeId(11)), None);
        assert_eq!(seg.global_range(), Some((10, 40)));
    }

    #[test]
    fn mem_segment_buffers_and_drains_keeping_vocabulary() {
        let mut mem = MemSegment::new(Corpus::new());
        let tok = Tokenizer::new();
        mem.add(&tok, "alpha beta", 0);
        mem.add(&tok, "beta gamma", 1);
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.local_of(NodeId(1)), Some(1));
        let view = mem.seal_view(99);
        assert_eq!(view.num_docs(), 2);
        let (corpus, globals) = mem.drain();
        assert_eq!(globals, vec![0, 1]);
        assert_eq!(corpus.len(), 2);
        assert!(mem.is_empty());
        // The drained-out buffer keeps the vocabulary it grew.
        assert!(mem.corpus().token_id("gamma").is_some());
    }

    struct One;
    impl EntryScorer for One {
        fn score(&self, _node: NodeId, tf: u32) -> f64 {
            f64::from(tf)
        }
        fn bound(&self, max_tf: u32) -> f64 {
            f64::from(max_tf)
        }
    }

    #[test]
    fn delete_filtered_cursor_steps_over_tombstones() {
        let corpus = Corpus::from_texts(&["x", "x x", "x", "x", "x x x"]);
        let index = IndexBuilder::new().build(&corpus);
        let x = corpus.token_id("x").unwrap();
        let mut deletes = DeleteSet::new(5);
        deletes.delete(1);
        deletes.delete(3);
        deletes.delete(4);
        let inner = index.scored_cursor(x, IndexLayout::Decoded, One);
        let mut cur = DeleteFilteredCursor::new(inner, &deletes);
        assert_eq!(cur.next_entry(), Some(NodeId(0)));
        assert_eq!(cur.next_entry(), Some(NodeId(2)), "skips tombstoned 1");
        assert_eq!(cur.next_entry(), None, "4 is tombstoned, list ends");
        // Seek lands past tombstones too.
        let inner = index.scored_cursor(x, IndexLayout::Blocks, One);
        let mut cur = DeleteFilteredCursor::new(inner, &deletes);
        assert_eq!(cur.seek(NodeId(1)), Some(NodeId(2)));
        assert_eq!(cur.node(), Some(NodeId(2)));
        assert_eq!(cur.score(), 1.0);
    }
}
