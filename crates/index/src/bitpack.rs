//! Scalar word-aligned bitpacking: the frame-of-reference codec behind the
//! v5 block layout.
//!
//! A packed frame holds up to [`LANES`] unsigned values, every one stored
//! at the same fixed bit width `w ∈ 0..=32`. Values are laid down
//! little-endian into a stream of `u32` words — lane `i` occupies bits
//! `[i·w, (i+1)·w)` of the stream — and the stream is cut after the last
//! occupied word, so a frame of `n` values is `ceil(n·w/32)` words
//! ([`packed_bytes`]). A full 128-lane frame at any width is a whole
//! number of words; a short frame (the tail block of a list, or a tiny
//! list's only block) pays at most three wasted bytes in its final word
//! instead of 128 padded lanes. Width 0 encodes a constant run of zeros in
//! **zero bytes**: delta-1 node ids of consecutive documents and the
//! `tf − 1` of all-single-occurrence blocks both collapse to nothing.
//!
//! There are no per-value exceptions or patches (exception-free FOR): the
//! encoder picks the width of the *largest* value in the frame
//! ([`width_for`]), trading a few bits on skewed frames for a decoder with
//! no data-dependent branches — [`unpack`] runs the same straight-line,
//! macro-unrolled kernel whatever the data looks like, which is what makes
//! block-at-a-time decoding profitable over per-entry varints (see
//! [`crate::block`]).
//!
//! Unused bits of a frame's final word are zero; [`unpack`] always fills
//! all [`LANES`] output lanes (missing lanes decode to 0), and the v5
//! validator insists the padding really is zero so every list has exactly
//! one canonical encoding.

/// Maximum values per packed frame. Matches
/// [`crate::block::BLOCK_ENTRIES`] so one frame covers one compressed
/// block.
pub const LANES: usize = 128;

/// Bytes a frame of `count` values occupies at bit width `width`:
/// `ceil(count·width/32)` little-endian `u32` words.
#[inline]
pub const fn packed_bytes(width: u8, count: usize) -> usize {
    (count * width as usize).div_ceil(32) * 4
}

/// The smallest width that can represent `max`: `ceil(log2(max + 1))`,
/// i.e. 0 for 0, 32 for anything with the top bit set.
#[inline]
pub const fn width_for(max: u32) -> u8 {
    (32 - max.leading_zeros()) as u8
}

/// Append the first `count` lanes of `values` to `out` at bit width
/// `width`. Unused bits of the final word are zero (the canonical form the
/// untrusted-bytes validator checks).
///
/// Every packed value must fit in `width` bits (callers derive the width
/// with [`width_for`] over the frame's maximum; debug builds assert it).
/// Width 0 appends nothing.
///
/// # Panics
/// Panics if `count` exceeds `values.len()` or [`LANES`].
pub fn pack(values: &[u32], count: usize, width: u8, out: &mut Vec<u8>) {
    assert!(width <= 32, "width {width} out of range");
    assert!(
        count <= values.len() && count <= LANES,
        "count {count} out of range"
    );
    if width == 0 {
        debug_assert!(values[..count].iter().all(|&v| v == 0));
        return;
    }
    out.reserve(packed_bytes(width, count));
    let mut acc: u64 = 0;
    let mut bits: u32 = 0;
    for &v in &values[..count] {
        debug_assert!(
            width == 32 || v < (1u32 << width),
            "value {v} exceeds width {width}"
        );
        acc |= (v as u64) << bits;
        bits += width as u32;
        while bits >= 32 {
            out.extend_from_slice(&(acc as u32).to_le_bytes());
            acc >>= 32;
            bits -= 32;
        }
    }
    if bits > 0 {
        // Final partial word, high bits zero.
        out.extend_from_slice(&(acc as u32).to_le_bytes());
    }
}

/// The width-`W` unpack kernel. 32 lanes consume exactly `W` words; each
/// group's words are staged into a fixed local array first (zero-filled
/// past the frame end, so short frames decode their missing lanes to 0),
/// and the lane loop is macro-unrolled so every word index and shift is a
/// compile-time constant — straight-line load/shift/mask code with no
/// bounds checks and no data-dependent branches, which is what makes
/// block-at-a-time decoding beat per-entry varints.
fn unpack_const<const W: usize>(data: &[u8], out: &mut [u32; LANES]) {
    let mask: u64 = (1u64 << W) - 1;
    let full = data.len() == LANES / 8 * W;
    for group in 0..LANES / 32 {
        // One padding slot past the W words a full group reads, so every
        // lane can read a two-word window unconditionally.
        let mut words = [0u32; 33]; // the first W slots are used
        if full {
            // Full 128-lane frame (every block but a list's tail): the
            // group's W words are present — a fixed-size copy.
            let src = &data[group * W * 4..][..W * 4];
            for (w, chunk) in words.iter_mut().zip(src.chunks_exact(4)) {
                *w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
        } else {
            // Short frame: stage whatever of this group's words exist;
            // the rest remain zero, so missing lanes decode to 0.
            let start = (group * W * 4).min(data.len());
            let end = ((group + 1) * W * 4).min(data.len());
            for (w, chunk) in words.iter_mut().zip(data[start..end].chunks_exact(4)) {
                *w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
        }
        let dst: &mut [u32; 32] = (&mut out[group * 32..group * 32 + 32])
            .try_into()
            .expect("32 lanes");
        macro_rules! lane {
            ($($i:literal)+) => {$({
                let bit = $i * W;
                let pair = u64::from(words[bit >> 5])
                    | (u64::from(words[(bit >> 5) + 1]) << 32);
                dst[$i] = ((pair >> (bit & 31)) & mask) as u32;
            })+};
        }
        lane!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15
              16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31);
    }
}

/// Generate the width dispatch: one monomorphized kernel per width.
macro_rules! unpack_dispatch {
    ($data:expr, $width:expr, $out:expr; $($w:literal)+) => {
        match $width {
            0 => $out.fill(0),
            $($w => unpack_const::<$w>($data, $out),)+
            _ => unreachable!("width checked above"),
        }
    };
}

/// Decode a frame of `count` `width`-bit values from the front of `data`,
/// returning the number of bytes consumed ([`packed_bytes`]). All
/// [`LANES`] output lanes are written; lanes at and past `count` decode
/// the frame's zero padding (the block cursor never reads them, the
/// validator checks they are zero).
///
/// # Panics
/// Panics if `width > 32` or `data` is shorter than [`packed_bytes`] —
/// callers either built the frame themselves or validated widths and
/// lengths first (the untrusted-bytes path in
/// [`crate::block::BlockList::try_to_posting`]).
#[inline]
pub fn unpack(data: &[u8], width: u8, count: usize, out: &mut [u32; LANES]) -> usize {
    assert!(width <= 32, "width {width} out of range");
    let nbytes = packed_bytes(width, count);
    let data = &data[..nbytes];
    unpack_dispatch!(data, width, out;
        1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32);
    nbytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mask(width: u8) -> u32 {
        if width == 32 {
            u32::MAX
        } else if width == 0 {
            0
        } else {
            (1u32 << width) - 1
        }
    }

    #[test]
    fn width_for_matches_bit_length() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 2);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 3);
        assert_eq!(width_for(127), 7);
        assert_eq!(width_for(128), 8);
        assert_eq!(width_for(u32::MAX), 32);
        assert_eq!(width_for(u32::MAX >> 1), 31);
    }

    #[test]
    fn packed_bytes_is_word_aligned_and_tight() {
        for width in 0..=32u8 {
            assert_eq!(packed_bytes(width, LANES), 16 * width as usize);
            assert_eq!(packed_bytes(width, LANES) % 4, 0);
        }
        assert_eq!(packed_bytes(5, 1), 4); // 5 bits → one word
        assert_eq!(packed_bytes(5, 12), 8); // 60 bits → two words
        assert_eq!(packed_bytes(0, 128), 0);
        assert_eq!(packed_bytes(32, 3), 12);
    }

    /// Exhaustive width sweep: a deterministic patterned frame (maximum,
    /// zero, and alternating values) round-trips at every width 0..=32,
    /// both full-length and short.
    #[test]
    fn roundtrip_every_width() {
        for width in 0..=32u8 {
            let m = mask(width);
            let mut values = [0u32; LANES];
            for (i, v) in values.iter_mut().enumerate() {
                *v = match i % 4 {
                    0 => m,                                       // the width's maximum
                    1 => 0,                                       // zeros interleaved
                    2 => m / 2,                                   // a middle value
                    _ => (i as u32).wrapping_mul(2654435761) & m, // scrambled
                };
            }
            for count in [1usize, 2, 31, 32, 33, 100, LANES] {
                let mut buf = Vec::new();
                pack(&values, count, width, &mut buf);
                assert_eq!(buf.len(), packed_bytes(width, count), "w={width} n={count}");
                let mut back = [u32::MAX; LANES];
                let consumed = unpack(&buf, width, count, &mut back);
                assert_eq!(consumed, buf.len());
                assert_eq!(&back[..count], &values[..count], "w={width} n={count}");
                assert!(
                    back[count..].iter().all(|&v| v == 0),
                    "w={width} n={count}: missing lanes must decode to zero"
                );
            }
        }
    }

    #[test]
    fn width_zero_is_free_and_unpacks_to_zeros() {
        let values = [0u32; LANES];
        let mut buf = Vec::new();
        pack(&values, LANES, 0, &mut buf);
        assert!(buf.is_empty());
        let mut back = [7u32; LANES];
        assert_eq!(unpack(&[], 0, LANES, &mut back), 0);
        assert_eq!(back, [0u32; LANES]);
    }

    #[test]
    fn max_values_at_full_width_roundtrip() {
        let values = [u32::MAX; LANES];
        let mut buf = Vec::new();
        pack(&values, LANES, 32, &mut buf);
        assert_eq!(buf.len(), 512);
        let mut back = [0u32; LANES];
        unpack(&buf, 32, LANES, &mut back);
        assert_eq!(back, values);
    }

    #[test]
    fn unpack_ignores_trailing_bytes() {
        // A frame followed by unrelated stream bytes (the real layout:
        // ids, then tfs, then lengths, then position payloads).
        let values: [u32; LANES] = std::array::from_fn(|i| (i as u32) & 0x1f);
        let mut buf = Vec::new();
        pack(&values, LANES, 5, &mut buf);
        let frame_len = buf.len();
        buf.extend_from_slice(&[0xab; 100]);
        let mut back = [0u32; LANES];
        assert_eq!(unpack(&buf, 5, LANES, &mut back), frame_len);
        assert_eq!(back, values);
    }

    #[test]
    fn short_frames_zero_their_final_word_padding() {
        // 3 values at width 20 = 60 bits → 2 words; the top 4 bits of the
        // second word are padding and must be zero.
        let values = [0xf_ffffu32; LANES];
        let mut buf = Vec::new();
        pack(&values, 3, 20, &mut buf);
        assert_eq!(buf.len(), 8);
        let last = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
        assert_eq!(last >> 28, 0, "final-word padding bits must be zero");
    }

    proptest! {
        /// Random frames at random widths and lengths round-trip
        /// bit-exactly, including all-zero runs (width 0) and full-range
        /// ids (width 32).
        #[test]
        fn prop_roundtrip(width in 0u8..33, count in 1usize..129, seed in any::<u64>()) {
            let m = mask(width);
            let mut state = seed | 1;
            let mut values = [0u32; LANES];
            for v in values.iter_mut().take(count) {
                // xorshift64* keeps the test independent of the rand stub.
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                *v = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as u32 & m;
            }
            let mut buf = Vec::new();
            pack(&values, count, width, &mut buf);
            prop_assert_eq!(buf.len(), packed_bytes(width, count));
            let mut back = [0u32; LANES];
            prop_assert_eq!(unpack(&buf, width, count, &mut back), buf.len());
            prop_assert_eq!(&back[..count], &values[..count]);
            prop_assert!(back[count..].iter().all(|&v| v == 0));
        }

        /// The declared width always covers the frame maximum.
        #[test]
        fn prop_width_for_is_sufficient(v in any::<u32>()) {
            let w = width_for(v);
            prop_assert!(w <= 32);
            if w < 32 {
                prop_assert!(u64::from(v) < 1u64 << w);
            }
            if w > 0 {
                prop_assert!(u64::from(v) >= 1u64 << (w - 1));
            }
        }
    }
}
