//! Manifest persistence for live, segmented indexes — format **v8**.
//!
//! A [`crate::live::LiveIndex`] is more than one inverted index: it is a
//! *segment set* (each segment an ordinary v5 index image over a local
//! corpus), the tombstone bitmaps, the global-id maps, and the shared
//! vocabulary. The manifest records all of it in one buffer so a
//! multi-segment index reloads bit-identically — same segments, same
//! tombstones, same global ids, same vocabulary prefixes.
//!
//! ## Format versioning
//!
//! The manifest continues the version line of [`crate::persist`]: same
//! `"FTSI"` magic, version **8** (v4 was the manifest built on v3 varint
//! segment images; v6 embedded the bit-packed v5 images; v8 embeds v7
//! images, whose optional-section table carries the word-pair auxiliary
//! index). The outer layout of v6 and v8 is identical — only the embedded
//! image format differs — so [`decode`] accepts **both**: old v6 manifests
//! keep loading (their v5 images decode with an empty pair index), and the
//! embedded [`crate::persist::decode`] handles each image's own version.
//! v1–v5 and v7 (bare-index formats and the retired v4 manifest) and
//! unknown versions are rejected loudly with [`PersistError::BadVersion`]
//! — and, symmetrically, the bare-index decoder rejects a v6/v8 manifest
//! the same way. Neither ever panics on foreign bytes.
//!
//! Layout of a v8 buffer (integers little-endian):
//!
//! ```text
//! magic:u32  version:u32  next_global:u32  next_segment_id:u64
//! num_segments:u32
//! per segment (ascending, disjoint global ranges):
//!   id:u64  num_docs:u32
//!   num_docs × global:u32                     (strictly ascending)
//!   num_words:u32  num_words × word:u64       (tombstone bitmap)
//!   vocab_len:u32                             (prefix of shared vocabulary)
//!   per doc: label_len:u32 label:[u8]
//!            num_tokens:u32
//!            num_tokens × (token:u32 offset:u32 sentence:u32 paragraph:u32)
//!   index_len:u32  index:[u8]                 (a v7 image, persist::decode;
//!                                              v5 inside a v6 manifest)
//! vocab_total:u32  per token: len:u32 name:[u8]   (shared vocabulary)
//! ```
//!
//! Segments store only their vocabulary *prefix length*: token ids are
//! prefix-consistent across segments (see [`crate::live`]), so one shared
//! name table at the end reconstructs every per-segment interner exactly.
//!
//! [`save`] writes atomically: the buffer goes to a sibling temp file that
//! is persisted with a single `rename`, so a crash mid-write leaves either
//! the old manifest or the new one, never a torn hybrid.

use crate::live::{LiveConfig, LiveIndex, SealedEntry};
use crate::persist::{self, PersistError};
use crate::segment::{DeleteSet, SegmentData};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftsl_model::{Corpus, Position, TokenId, TokenInterner};
use std::path::Path;
use std::sync::Arc;

const MAGIC: u32 = 0x4654_5349; // "FTSI", shared with persist
const VERSION: u32 = 8;
/// The pre-pair-section manifest version [`decode`] still accepts (same
/// outer layout, v5 segment images inside).
const LEGACY_VERSION: u32 = 6;

/// Serialize a live index to a v8 manifest buffer. The write buffer is
/// flushed first, so the image covers every document added so far.
pub fn encode(live: &LiveIndex) -> Bytes {
    let (sealed, next_global, next_segment_id) = live.sealed_parts();
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(next_global);
    buf.put_u64_le(next_segment_id);
    buf.put_u32_le(sealed.len() as u32);
    let widest = crate::live::widest_vocabulary(sealed.iter().map(|e| e.data.corpus()));
    for entry in &sealed {
        encode_segment(&mut buf, entry);
    }
    let vocab_total = widest.map_or(0, TokenInterner::len);
    buf.put_u32_le(vocab_total as u32);
    if let Some(widest) = widest {
        for (_, name) in widest.iter() {
            put_str(&mut buf, name);
        }
    }
    buf.freeze()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn encode_segment(buf: &mut BytesMut, entry: &SealedEntry) {
    let data = &entry.data;
    buf.put_u64_le(data.id());
    buf.put_u32_le(data.num_docs() as u32);
    for &g in data.globals() {
        buf.put_u32_le(g);
    }
    let words = entry.deletes.words();
    buf.put_u32_le(words.len() as u32);
    for &w in words {
        buf.put_u64_le(w);
    }
    let corpus = data.corpus();
    buf.put_u32_le(corpus.interner().len() as u32);
    for doc in corpus.documents() {
        put_str(buf, &doc.label);
        buf.put_u32_le(doc.tokens.len() as u32);
        for &(t, p) in &doc.tokens {
            buf.put_u32_le(t.0);
            buf.put_u32_le(p.offset);
            buf.put_u32_le(p.sentence);
            buf.put_u32_le(p.paragraph);
        }
    }
    let image = persist::encode(data.index());
    buf.put_u32_le(image.len() as u32);
    buf.put_slice(image.as_slice());
}

/// Deserialize a v6 or v8 manifest with default [`LiveConfig`].
pub fn decode(buf: impl Buf) -> Result<LiveIndex, PersistError> {
    decode_with(buf, LiveConfig::default())
}

/// Deserialize a v6 or v8 manifest into a live index with explicit
/// configuration. v1–v5 and v7 buffers (bare-index formats and the retired
/// v4 manifest) and unknown versions are rejected
/// with [`PersistError::BadVersion`]; structural lies (non-ascending global
/// ids, bitmap/corpus disagreements, out-of-range token ids) with
/// [`PersistError::Corrupt`]. Never panics on foreign bytes.
pub fn decode_with(mut buf: impl Buf, config: LiveConfig) -> Result<LiveIndex, PersistError> {
    let magic = get_u32(&mut buf)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic(magic));
    }
    let version = get_u32(&mut buf)?;
    if version != VERSION && version != LEGACY_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let next_global = get_u32(&mut buf)?;
    let next_segment_id = get_u64(&mut buf)?;
    let num_segments = get_u32(&mut buf)? as usize;
    let mut raw: Vec<RawSegment> = Vec::with_capacity(num_segments);
    for _ in 0..num_segments {
        raw.push(decode_segment(&mut buf)?);
    }
    let vocab_total = get_u32(&mut buf)? as usize;
    let mut names = Vec::with_capacity(vocab_total);
    for _ in 0..vocab_total {
        names.push(get_str(&mut buf)?);
    }

    let mut sealed = Vec::with_capacity(num_segments);
    let mut prev_last: Option<u32> = None;
    for seg in raw {
        let entry = seg.into_entry(&names, next_global)?;
        if let Some((first, last)) = entry.data.global_range() {
            if prev_last.is_some_and(|p| first <= p) {
                return Err(PersistError::Corrupt("segment global ranges overlap"));
            }
            prev_last = Some(last);
        }
        sealed.push(entry);
    }
    Ok(LiveIndex::from_sealed_parts(
        sealed,
        next_global,
        next_segment_id,
        config,
    ))
}

/// A segment as read off the wire, before vocabulary reconstruction.
struct RawSegment {
    id: u64,
    globals: Vec<u32>,
    delete_words: Vec<u64>,
    vocab_len: usize,
    docs: Vec<(String, Vec<(TokenId, Position)>)>,
    index_image: Vec<u8>,
}

impl RawSegment {
    fn into_entry(self, names: &[String], next_global: u32) -> Result<SealedEntry, PersistError> {
        if self.globals.windows(2).any(|w| w[0] >= w[1]) {
            return Err(PersistError::Corrupt("global ids not ascending"));
        }
        if self.globals.last().is_some_and(|&g| g >= next_global) {
            return Err(PersistError::Corrupt("global id past the high-water mark"));
        }
        if self.vocab_len > names.len() {
            return Err(PersistError::Corrupt("segment vocabulary exceeds table"));
        }
        let deletes = DeleteSet::from_parts(self.delete_words, self.globals.len())
            .ok_or(PersistError::Corrupt("tombstone bitmap malformed"))?;
        let mut corpus = Corpus::new();
        for name in &names[..self.vocab_len] {
            corpus.intern(name);
        }
        if corpus.interner().len() != self.vocab_len {
            return Err(PersistError::Corrupt("vocabulary names not distinct"));
        }
        for (label, tokens) in self.docs {
            if tokens.windows(2).any(|w| w[0].1.offset >= w[1].1.offset) {
                return Err(PersistError::Corrupt("document offsets not increasing"));
            }
            if tokens.iter().any(|&(t, _)| t.index() >= self.vocab_len) {
                return Err(PersistError::Corrupt("token id outside segment vocabulary"));
            }
            corpus.add_tokens(label, tokens);
        }
        if corpus.len() != self.globals.len() {
            return Err(PersistError::Corrupt("document count disagrees with ids"));
        }
        let index = persist::decode(&self.index_image[..])?;
        if index.any().num_entries() > corpus.len() {
            return Err(PersistError::Corrupt("segment index disagrees with corpus"));
        }
        Ok(SealedEntry {
            data: Arc::new(SegmentData::from_parts(
                self.id,
                corpus,
                self.globals,
                index,
            )),
            deletes: Arc::new(deletes),
        })
    }
}

fn decode_segment(buf: &mut impl Buf) -> Result<RawSegment, PersistError> {
    let id = get_u64(buf)?;
    let num_docs = get_u32(buf)? as usize;
    let mut globals = Vec::with_capacity(num_docs.min(1 << 20));
    for _ in 0..num_docs {
        globals.push(get_u32(buf)?);
    }
    let num_words = get_u32(buf)? as usize;
    let mut delete_words = Vec::with_capacity(num_words.min(1 << 20));
    for _ in 0..num_words {
        delete_words.push(get_u64(buf)?);
    }
    let vocab_len = get_u32(buf)? as usize;
    let mut docs = Vec::with_capacity(num_docs.min(1 << 20));
    for _ in 0..num_docs {
        let label = get_str(buf)?;
        let num_tokens = get_u32(buf)? as usize;
        let mut tokens = Vec::with_capacity(num_tokens.min(1 << 20));
        for _ in 0..num_tokens {
            let t = TokenId(get_u32(buf)?);
            let offset = get_u32(buf)?;
            let sentence = get_u32(buf)?;
            let paragraph = get_u32(buf)?;
            tokens.push((t, Position::new(offset, sentence, paragraph)));
        }
        docs.push((label, tokens));
    }
    let index_len = get_u32(buf)? as usize;
    if buf.remaining() < index_len {
        return Err(PersistError::Truncated);
    }
    let mut index_image = vec![0u8; index_len];
    copy_exact(buf, &mut index_image);
    Ok(RawSegment {
        id,
        globals,
        delete_words,
        vocab_len,
        docs,
        index_image,
    })
}

/// Write a manifest to `path` atomically: encode, write and **fsync** a
/// sibling `<path>.tmp`, `rename` into place, then fsync the parent
/// directory (best-effort on platforms where directories can't be
/// opened). Without the fsyncs the rename could reach disk before the
/// data blocks, leaving a truncated file under the final name after a
/// crash — exactly the torn state atomicity is supposed to rule out.
pub fn save(live: &LiveIndex, path: &Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let bytes = encode(live);
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes.as_slice())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load a manifest previously written by [`save`].
pub fn load(path: &Path, config: LiveConfig) -> Result<LiveIndex, LoadError> {
    let bytes = std::fs::read(path).map_err(LoadError::Io)?;
    decode_with(&bytes[..], config).map_err(LoadError::Persist)
}

/// Errors from [`load`]: the file was unreadable, or its contents were.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The bytes were not a valid manifest.
    Persist(PersistError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "manifest io: {e}"),
            LoadError::Persist(e) => write!(f, "manifest decode: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn get_u32(buf: &mut impl Buf) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, PersistError> {
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_str(buf: &mut impl Buf) -> Result<String, PersistError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(PersistError::Truncated);
    }
    let mut bytes = vec![0u8; len];
    copy_exact(buf, &mut bytes);
    String::from_utf8(bytes).map_err(|_| PersistError::Corrupt("label not utf-8"))
}

/// `Buf::copy_to_slice` without the panic-on-short contract (callers check
/// `remaining` first; this keeps the invariant local).
fn copy_exact(buf: &mut impl Buf, out: &mut [u8]) {
    let mut filled = 0;
    while filled < out.len() {
        let chunk = buf.chunk();
        let take = chunk.len().min(out.len() - filled);
        out[filled..filled + take].copy_from_slice(&chunk[..take]);
        buf.advance(take);
        filled += take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_model::NodeId;

    fn sample_live() -> LiveIndex {
        let live = LiveIndex::with_config(LiveConfig {
            background_merge: false,
            ..LiveConfig::default()
        });
        live.add_document("usability of a software measures");
        live.add_document("software testing tools");
        live.flush();
        live.add_document("task completion experiment");
        live.add_document("usability by task completion");
        live.flush();
        live.delete_node(NodeId(1));
        live.add_document("buffered document, flushed by encode");
        live
    }

    fn assert_same(live: &LiveIndex, back: &LiveIndex) {
        let a = live.snapshot();
        let b = back.snapshot();
        assert_eq!(a.num_segments(), b.num_segments());
        assert_eq!(a.live_doc_count(), b.live_doc_count());
        assert_eq!(a.tombstone_count(), b.tombstone_count());
        for (sa, sb) in a.segments().iter().zip(b.segments()) {
            assert_eq!(sa.data().id(), sb.data().id());
            assert_eq!(sa.data().globals(), sb.data().globals());
            assert_eq!(sa.deletes(), sb.deletes());
            let (ca, cb) = (sa.data().corpus(), sb.data().corpus());
            assert_eq!(ca.len(), cb.len());
            assert_eq!(ca.interner().len(), cb.interner().len());
            for (da, db) in ca.documents().iter().zip(cb.documents()) {
                assert_eq!(da.label, db.label);
                assert_eq!(da.tokens, db.tokens);
            }
            // Index images bit-identical.
            assert_eq!(
                persist::encode(sa.data().index()),
                persist::encode(sb.data().index())
            );
        }
    }

    #[test]
    fn multi_segment_roundtrip_is_bit_identical() {
        let live = sample_live();
        let bytes = encode(&live);
        let back = decode(bytes.clone()).expect("decode");
        assert_same(&live, &back);
        // Encoding the reloaded index reproduces the same bytes.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn reloaded_index_keeps_accepting_writes() {
        let live = sample_live();
        let back = decode(encode(&live)).expect("decode");
        let n = back.add_document("a brand new document");
        assert_eq!(n.0 as usize, 5, "global ids continue past the manifest");
        assert!(back.delete_node(NodeId(0)));
        // Vocabulary continuity: an old token resolves to its old id.
        let snap = back.snapshot();
        let widest = snap.widest_interner().unwrap();
        assert!(widest.get("usability").is_some());
    }

    #[test]
    fn bare_index_versions_are_rejected() {
        for v in [1u32, 2, 3, 4, 5, 7, 99] {
            let mut buf = BytesMut::new();
            buf.put_u32_le(MAGIC);
            buf.put_u32_le(v);
            assert!(
                matches!(decode(buf.freeze()), Err(PersistError::BadVersion(got)) if got == v),
                "version {v} must be rejected"
            );
        }
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xbad_f00d);
        buf.put_u32_le(VERSION);
        assert!(matches!(
            decode(buf.freeze()),
            Err(PersistError::BadMagic(_))
        ));
    }

    #[test]
    fn persist_decode_rejects_a_manifest_buffer() {
        let bytes = encode(&sample_live());
        assert!(matches!(
            persist::decode(bytes),
            Err(PersistError::BadVersion(8))
        ));
    }

    #[test]
    fn legacy_v6_manifests_still_load() {
        // The v6 → v8 bump changed only the *embedded image* format (v5
        // images have no optional-section table); the outer manifest layout
        // is unchanged. An old manifest is therefore a current buffer with
        // the version field rewound and each embedded image rewound to v5 —
        // which a pair-disabled build produces minus its empty section
        // table. Rewriting every embedded image in place is fiddly, so this
        // test checks the two layers separately: the outer field here, the
        // v5 image path in persist's `v5_images_without_sections_still_load`.
        let live = sample_live();
        let bytes = encode(&live);
        let mut raw = bytes.to_vec();
        raw[4..8].copy_from_slice(&LEGACY_VERSION.to_le_bytes());
        let back = decode(&raw[..]).expect("v6 manifest must still load");
        assert_same(&live, &back);
    }

    #[test]
    fn truncations_and_bitflips_never_panic() {
        let bytes = encode(&sample_live());
        for cut in [0, 3, 9, bytes.len() / 3, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(decode(sliced).is_err(), "cut at {cut} must error");
        }
        // Flip one byte at a time across a sample of offsets; decoding may
        // succeed (a label byte) but must never panic.
        for i in (8..bytes.len()).step_by(7) {
            let mut raw = bytes.to_vec();
            raw[i] ^= 0x5a;
            let _ = decode(&raw[..]);
        }
    }

    #[test]
    fn empty_live_index_roundtrips() {
        let live = LiveIndex::with_config(LiveConfig {
            background_merge: false,
            ..LiveConfig::default()
        });
        let back = decode(encode(&live)).expect("decode");
        assert_eq!(back.snapshot().num_segments(), 0);
        let n = back.add_document("first");
        assert_eq!(n, NodeId(0));
    }

    #[test]
    fn save_and_load_are_atomic_rename() {
        let live = sample_live();
        let dir = std::env::temp_dir().join("ftsl-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.ftsm");
        save(&live, &path).expect("save");
        assert!(!path.with_extension("tmp").exists(), "temp file renamed");
        let back = load(
            &path,
            LiveConfig {
                background_merge: false,
                ..LiveConfig::default()
            },
        )
        .expect("load");
        assert_same(&live, &back);
        std::fs::remove_dir_all(&dir).ok();
    }
}
