//! The inverted index: all `IL_tok` lists plus `IL_ANY`.

use crate::cursor::ListCursor;
use crate::postings::PostingList;
use crate::stats::IndexStats;
use ftsl_model::TokenId;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A complete inverted index over a corpus.
///
/// `lists[t]` is `IL_t` for token id `t`; [`InvertedIndex::any`] is `IL_ANY`
/// (one entry per non-empty context node containing *all* its positions).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    pub(crate) lists: Vec<PostingList>,
    pub(crate) any: PostingList,
    pub(crate) stats: IndexStats,
}

fn empty_list() -> &'static PostingList {
    static EMPTY: OnceLock<PostingList> = OnceLock::new();
    EMPTY.get_or_init(PostingList::empty)
}

impl InvertedIndex {
    /// The inverted list for `token`. Out-of-vocabulary ids map to the empty
    /// list, so queries mentioning unseen tokens simply match nothing.
    pub fn list(&self, token: TokenId) -> &PostingList {
        self.lists.get(token.index()).unwrap_or_else(|| empty_list())
    }

    /// `IL_ANY`: every non-empty node with all of its positions.
    pub fn any(&self) -> &PostingList {
        &self.any
    }

    /// Open a sequential cursor on a token list.
    pub fn cursor(&self, token: TokenId) -> ListCursor<'_> {
        ListCursor::new(self.list(token))
    }

    /// Open a sequential cursor on `IL_ANY`.
    pub fn any_cursor(&self) -> ListCursor<'_> {
        ListCursor::new(&self.any)
    }

    /// Document frequency of a token (`df(t)` in Section 3.1).
    pub fn df(&self, token: TokenId) -> usize {
        self.list(token).num_entries()
    }

    /// Number of token lists stored (vocabulary size).
    pub fn num_tokens(&self) -> usize {
        self.lists.len()
    }

    /// Size parameters of Section 5.1.2.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn out_of_vocabulary_token_yields_empty_list() {
        let corpus = Corpus::from_texts(&["hello world"]);
        let index = IndexBuilder::new().build(&corpus);
        let missing = TokenId(9999);
        assert!(index.list(missing).is_empty());
        assert_eq!(index.df(missing), 0);
        let mut cur = index.cursor(missing);
        assert_eq!(cur.next_entry(), None);
    }
}
