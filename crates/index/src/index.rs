//! The inverted index: all `IL_tok` lists plus `IL_ANY`.

use crate::block::{BlockCursor, BlockList};
use crate::cursor::ListCursor;
use crate::pair::PairIndex;
use crate::postings::PostingList;
use crate::residency::{DecodeCache, DecodeCacheStats, DecodedView, Residency};
use crate::scored::{EntryScorer, ScoredBlocks, ScoredCursor, ScoredList};
use crate::stats::IndexStats;
use ftsl_model::TokenId;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which physical list representation an evaluation reads.
///
/// Every list is resident in both forms (see [`InvertedIndex`]); engines and
/// scored evaluators choose per run. Lives in `ftsl-index` because the
/// choice is purely physical — `ftsl-exec` re-exports it for its options
/// struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexLayout {
    /// Decoded columnar [`PostingList`]s (the seed layout): random access,
    /// gallop-seeking cursors, list-level score bounds.
    #[default]
    Decoded,
    /// Block-compressed [`BlockList`]s: entries are decoded out of
    /// delta/varint blocks on demand, seeks ride the skip headers, and
    /// scored cursors get per-block impact bounds.
    Blocks,
}

/// Resident memory cost of an index, split by physical form and labelled
/// with the [`Residency`] policy that produced it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bytes held by the block-compressed lists (entry streams + skip/impact
    /// headers), including `IL_ANY`. Always resident.
    pub compressed: usize,
    /// The portion of `compressed` spent on the resident
    /// [`crate::block::BlockMeta`] header arrays (skip + impact metadata)
    /// rather than packed entry data — the cost of being able to skip.
    pub block_headers: usize,
    /// Bytes held by the decoded columnar views (node, offset, and position
    /// arrays), including `IL_ANY`. Zero under [`Residency::BlocksOnly`].
    pub decoded: usize,
    /// Bytes held by the LRU block-decode cache (hot lists decoded on
    /// demand). Zero under [`Residency::Dual`], which never needs it.
    pub cache: usize,
    /// Bytes of the reusable decoded-block scratch buffer **each open
    /// [`crate::block::BlockCursor`] holds** (the v5 batch-decode columns).
    /// Per cursor, not per index: a query touching `t` token lists keeps
    /// `t` of these alive while it runs, so serving cost scales with
    /// concurrent cursors, not with corpus size.
    pub cursor_scratch: usize,
    /// Bytes held by the word-pair auxiliary index (packed pair lists,
    /// skip headers, key array, coverage bitmap). Always resident —
    /// residency changes never drop it. Zero when pairs are disabled.
    pub pairs: usize,
    /// The residency policy the numbers were measured under.
    pub residency: Residency,
}

impl MemoryFootprint {
    /// Total resident bytes across every form. `block_headers` is already
    /// inside `compressed`; `cursor_scratch` is per-open-cursor transient
    /// state, not index residency — neither is double-counted here.
    pub fn total(&self) -> usize {
        self.compressed + self.decoded + self.cache + self.pairs
    }
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.residency {
            Residency::Dual => write!(
                f,
                "{}: compressed={}B (headers {}B) decoded={}B pairs={}B \
                 total={}B (+{}B/open cursor)",
                self.residency,
                self.compressed,
                self.block_headers,
                self.decoded,
                self.pairs,
                self.total(),
                self.cursor_scratch
            ),
            Residency::BlocksOnly => write!(
                f,
                "{}: compressed={}B (headers {}B) decode-cache={}B pairs={}B \
                 total={}B (+{}B/open cursor)",
                self.residency,
                self.compressed,
                self.block_headers,
                self.cache,
                self.pairs,
                self.total(),
                self.cursor_scratch
            ),
        }
    }
}

/// A complete inverted index over a corpus.
///
/// `lists[t]` is `IL_t` for token id `t`; [`InvertedIndex::any`] is `IL_ANY`
/// (one entry per non-empty context node containing *all* its positions).
///
/// Under the default [`Residency::Dual`] policy each list is kept in two
/// physical forms: the decoded columnar [`PostingList`] (random access,
/// slice views — what the reference evaluators consume) and the
/// block-compressed [`BlockList`] (the persisted layout, streamed through
/// skip-aware [`BlockCursor`]s). Switching to [`Residency::BlocksOnly`]
/// ([`InvertedIndex::set_residency`]) drops the decoded views: every
/// evaluation path then reads the compressed form, and the few
/// random-access consumers decode lists on demand through the LRU
/// [`DecodeCache`] ([`InvertedIndex::decoded_list`]). [`crate::persist`]
/// stores only the compressed form under either policy.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    pub(crate) lists: Vec<PostingList>,
    pub(crate) any: PostingList,
    pub(crate) blocks: Vec<BlockList>,
    pub(crate) any_blocks: BlockList,
    pub(crate) stats: IndexStats,
    pub(crate) residency: Residency,
    pub(crate) cache: DecodeCache,
    pub(crate) pairs: PairIndex,
}

fn empty_list() -> &'static PostingList {
    static EMPTY: OnceLock<PostingList> = OnceLock::new();
    EMPTY.get_or_init(PostingList::empty)
}

fn empty_blocks() -> &'static BlockList {
    static EMPTY: OnceLock<BlockList> = OnceLock::new();
    EMPTY.get_or_init(BlockList::default)
}

/// Cache slot reserved for `IL_ANY` (token lists use their token index).
const ANY_SLOT: usize = usize::MAX;

impl InvertedIndex {
    /// The inverted list for `token`. Out-of-vocabulary ids map to the empty
    /// list, so queries mentioning unseen tokens simply match nothing.
    ///
    /// # Panics
    /// Panics under [`Residency::BlocksOnly`], where the decoded views have
    /// been dropped — use [`Self::decoded_list`] (lazy, cached) or
    /// [`Self::block_list`] instead. Failing loudly beats silently serving
    /// an empty list for a token the index does contain.
    pub fn list(&self, token: TokenId) -> &PostingList {
        assert!(
            self.residency == Residency::Dual,
            "decoded views dropped (blocks-only residency); \
             use decoded_list()/block_list()"
        );
        self.lists
            .get(token.index())
            .unwrap_or_else(|| empty_list())
    }

    /// `IL_ANY`: every non-empty node with all of its positions.
    ///
    /// # Panics
    /// Panics under [`Residency::BlocksOnly`] — see [`Self::list`].
    pub fn any(&self) -> &PostingList {
        assert!(
            self.residency == Residency::Dual,
            "decoded views dropped (blocks-only residency); \
             use decoded_any()/any_block_list()"
        );
        &self.any
    }

    /// The decoded view of a token's list under *either* residency: a free
    /// borrow when the decoded views are resident, a lazily-decoded,
    /// LRU-cached handle when only the blocks are. Out-of-vocabulary ids
    /// map to the empty list.
    pub fn decoded_list(&self, token: TokenId) -> DecodedView<'_> {
        match self.residency {
            Residency::Dual => DecodedView::Resident(self.list(token)),
            Residency::BlocksOnly => match self.blocks.get(token.index()) {
                Some(blocks) => DecodedView::Cached(
                    self.cache
                        .get_or_decode(token.index(), || blocks.to_posting()),
                ),
                None => DecodedView::Resident(empty_list()),
            },
        }
    }

    /// The decoded view of `IL_ANY` under either residency (see
    /// [`Self::decoded_list`]).
    pub fn decoded_any(&self) -> DecodedView<'_> {
        match self.residency {
            Residency::Dual => DecodedView::Resident(&self.any),
            Residency::BlocksOnly => DecodedView::Cached(
                self.cache
                    .get_or_decode(ANY_SLOT, || self.any_blocks.to_posting()),
            ),
        }
    }

    /// The active [`Residency`] policy.
    pub fn residency(&self) -> Residency {
        self.residency
    }

    /// Switch residency. Moving to [`Residency::BlocksOnly`] drops the
    /// decoded views (freeing their RAM — [`Self::memory_footprint`] then
    /// reports the compressed-only number) and byte-budgets the decode
    /// cache to half the compressed size, so even a workload that keeps
    /// decoding lists (COMP, exhaustive ranking) cannot creep back toward
    /// the dual-resident footprint. Moving back to [`Residency::Dual`]
    /// rebuilds the decoded views from the compressed blocks,
    /// bit-identically (the blocks are lossless).
    pub fn set_residency(&mut self, residency: Residency) {
        if residency == self.residency {
            return;
        }
        match residency {
            Residency::BlocksOnly => {
                self.lists = Vec::new();
                self.any = PostingList::empty();
            }
            Residency::Dual => {
                self.lists = self.blocks.iter().map(BlockList::to_posting).collect();
                self.any = self.any_blocks.to_posting();
            }
        }
        self.residency = residency;
        self.cache = DecodeCache::with_byte_budget(
            crate::residency::DEFAULT_DECODE_CACHE_LISTS,
            self.decode_cache_byte_budget(),
        );
    }

    /// The decode-cache byte budget for the current residency: half the
    /// compressed size under blocks-only (keeping total RAM well below
    /// dual), unbounded under dual (the cache is never populated there).
    fn decode_cache_byte_budget(&self) -> usize {
        match self.residency {
            Residency::Dual => usize::MAX,
            Residency::BlocksOnly => self.compressed_bytes() / 2,
        }
    }

    /// Replace the block-decode cache capacity (number of decoded lists
    /// retained under blocks-only residency; the residency's byte budget
    /// is kept). Existing cached lists are dropped.
    pub fn set_decode_cache_capacity(&mut self, lists: usize) {
        self.cache = DecodeCache::with_byte_budget(lists, self.decode_cache_byte_budget());
    }

    /// Hit/miss counters and resident size of the block-decode cache.
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.cache.stats()
    }

    /// Resolve a requested physical layout against the residency policy:
    /// with the decoded views dropped, every evaluation runs on the blocks
    /// regardless of what the caller asked for.
    pub fn effective_layout(&self, requested: IndexLayout) -> IndexLayout {
        match self.residency {
            Residency::Dual => requested,
            Residency::BlocksOnly => IndexLayout::Blocks,
        }
    }

    /// Open a sequential cursor on a token list's decoded view.
    ///
    /// # Panics
    /// Panics under [`Residency::BlocksOnly`] — use [`Self::block_cursor`].
    pub fn cursor(&self, token: TokenId) -> ListCursor<'_> {
        ListCursor::new(self.list(token))
    }

    /// Open a sequential cursor on `IL_ANY`'s decoded view.
    ///
    /// # Panics
    /// Panics under [`Residency::BlocksOnly`] — use
    /// [`Self::any_block_cursor`].
    pub fn any_cursor(&self) -> ListCursor<'_> {
        ListCursor::new(self.any())
    }

    /// The block-compressed form of a token's list. Out-of-vocabulary ids
    /// map to an empty list.
    pub fn block_list(&self, token: TokenId) -> &BlockList {
        self.blocks
            .get(token.index())
            .unwrap_or_else(|| empty_blocks())
    }

    /// The block-compressed form of `IL_ANY`.
    pub fn any_block_list(&self) -> &BlockList {
        &self.any_blocks
    }

    /// Open a skip-aware cursor on the compressed form of a token's list.
    pub fn block_cursor(&self, token: TokenId) -> BlockCursor<'_> {
        self.block_list(token).cursor()
    }

    /// Open a skip-aware cursor on the compressed form of `IL_ANY`.
    pub fn any_block_cursor(&self) -> BlockCursor<'_> {
        self.any_blocks.cursor()
    }

    /// Open a scored cursor on a token's list in the given physical layout.
    /// The scorer supplies the per-entry scoring rule and its impact bound
    /// (see [`EntryScorer`]); out-of-vocabulary ids yield an empty cursor.
    pub fn scored_cursor<'a, S: EntryScorer + 'a>(
        &'a self,
        token: TokenId,
        layout: IndexLayout,
        scorer: S,
    ) -> Box<dyn ScoredCursor + 'a> {
        match self.effective_layout(layout) {
            IndexLayout::Decoded => Box::new(ScoredList::new(self.list(token), scorer)),
            IndexLayout::Blocks => Box::new(ScoredBlocks::new(self.block_list(token), scorer)),
        }
    }

    /// Total compressed bytes across all block lists (diagnostics).
    pub fn compressed_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(BlockList::compressed_bytes)
            .sum::<usize>()
            + self.any_blocks.compressed_bytes()
    }

    /// Resident bytes of the index, split by physical form and labelled
    /// with the residency policy. Under [`Residency::Dual`] both forms are
    /// hot and the *total* is what the process pays; under
    /// [`Residency::BlocksOnly`] the decoded term is zero and only the
    /// bounded decode cache adds to the compressed size. Surfaced by
    /// `ftsl-cli`'s `:stats`.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            compressed: self.compressed_bytes(),
            block_headers: self
                .blocks
                .iter()
                .map(BlockList::header_bytes)
                .sum::<usize>()
                + self.any_blocks.header_bytes(),
            decoded: self
                .lists
                .iter()
                .map(PostingList::resident_bytes)
                .sum::<usize>()
                + self.any.resident_bytes(),
            cache: self.cache.resident_bytes(),
            cursor_scratch: BlockCursor::scratch_bytes(),
            pairs: self.pairs.resident_bytes(),
            residency: self.residency,
        }
    }

    /// The word-pair auxiliary index (empty — every lookup `NotCovered` —
    /// when pairs are disabled or the index predates the pair format).
    pub fn pairs(&self) -> &PairIndex {
        &self.pairs
    }

    /// Document frequency of a token (`df(t)` in Section 3.1). Counted on
    /// the always-resident compressed form, so it works under either
    /// residency.
    pub fn df(&self, token: TokenId) -> usize {
        self.block_list(token).num_entries()
    }

    /// Number of token lists stored (vocabulary size). Counted on the
    /// always-resident compressed form.
    pub fn num_tokens(&self) -> usize {
        self.blocks.len()
    }

    /// Size parameters of Section 5.1.2.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn blocks_only_residency_drops_decoded_views_and_serves_from_cache() {
        let corpus = Corpus::from_texts(&["a b a", "b c", "a"]);
        let mut index = IndexBuilder::new().build(&corpus);
        let a = corpus.token_id("a").unwrap();
        let before = index.list(a).clone();
        let dual = index.memory_footprint();
        assert!(dual.decoded > 0);

        index.set_residency(Residency::BlocksOnly);
        let fp = index.memory_footprint();
        assert_eq!(fp.decoded, 0);
        assert_eq!(fp.residency, Residency::BlocksOnly);
        assert!(fp.total() < dual.total());
        assert_eq!(
            index.effective_layout(IndexLayout::Decoded),
            IndexLayout::Blocks
        );

        // The decoded view is rebuilt lazily, bit-identically, and cached.
        assert_eq!(&*index.decoded_list(a), &before);
        let _ = index.decoded_list(a);
        let stats = index.decode_cache_stats();
        assert!(stats.hits >= 1 && stats.misses >= 1);

        // Round-trip back to dual residency restores the resident views.
        index.set_residency(Residency::Dual);
        assert_eq!(index.list(a), &before);
        assert!(index.memory_footprint().decoded > 0);
    }

    #[test]
    #[should_panic(expected = "blocks-only residency")]
    fn decoded_accessor_panics_under_blocks_only() {
        let corpus = Corpus::from_texts(&["a b"]);
        let mut index = IndexBuilder::new().build(&corpus);
        index.set_residency(Residency::BlocksOnly);
        let _ = index.any();
    }

    #[test]
    fn footprint_reports_headers_and_cursor_scratch() {
        let corpus = Corpus::from_texts(&["a b a", "b c", "a"]);
        let index = IndexBuilder::new().build(&corpus);
        let fp = index.memory_footprint();
        assert!(fp.block_headers > 0, "header bytes must be counted");
        assert!(
            fp.block_headers < fp.compressed,
            "headers are part of compressed"
        );
        assert_eq!(
            fp.cursor_scratch,
            crate::block::BlockCursor::scratch_bytes()
        );
        assert!(fp.cursor_scratch >= 3 * 4 * crate::block::BLOCK_ENTRIES);
        let shown = format!("{fp}");
        assert!(
            shown.contains("headers"),
            "display names header bytes: {shown}"
        );
        assert!(
            shown.contains("cursor"),
            "display names cursor scratch: {shown}"
        );
    }

    #[test]
    fn df_and_vocabulary_survive_residency_changes() {
        let corpus = Corpus::from_texts(&["a b a", "b c", "a"]);
        let mut index = IndexBuilder::new().build(&corpus);
        let a = corpus.token_id("a").unwrap();
        let df = index.df(a);
        let vocab = index.num_tokens();
        index.set_residency(Residency::BlocksOnly);
        assert_eq!(index.df(a), df);
        assert_eq!(index.num_tokens(), vocab);
    }

    #[test]
    fn out_of_vocabulary_token_yields_empty_list() {
        let corpus = Corpus::from_texts(&["hello world"]);
        let index = IndexBuilder::new().build(&corpus);
        let missing = TokenId(9999);
        assert!(index.list(missing).is_empty());
        assert_eq!(index.df(missing), 0);
        let mut cur = index.cursor(missing);
        assert_eq!(cur.next_entry(), None);
    }
}
