//! The inverted index: all `IL_tok` lists plus `IL_ANY`.

use crate::block::{BlockCursor, BlockList};
use crate::cursor::ListCursor;
use crate::postings::PostingList;
use crate::scored::{EntryScorer, ScoredBlocks, ScoredCursor, ScoredList};
use crate::stats::IndexStats;
use ftsl_model::TokenId;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which physical list representation an evaluation reads.
///
/// Every list is resident in both forms (see [`InvertedIndex`]); engines and
/// scored evaluators choose per run. Lives in `ftsl-index` because the
/// choice is purely physical — `ftsl-exec` re-exports it for its options
/// struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexLayout {
    /// Decoded columnar [`PostingList`]s (the seed layout): random access,
    /// gallop-seeking cursors, list-level score bounds.
    #[default]
    Decoded,
    /// Block-compressed [`BlockList`]s: entries are decoded out of
    /// delta/varint blocks on demand, seeks ride the skip headers, and
    /// scored cursors get per-block impact bounds.
    Blocks,
}

/// Resident memory cost of an index, split by physical form — the
/// dual-resident RAM price of keeping both layouts hot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Bytes held by the block-compressed lists (entry streams + skip/impact
    /// headers), including `IL_ANY`.
    pub compressed: usize,
    /// Bytes held by the decoded columnar views (node, offset, and position
    /// arrays), including `IL_ANY`.
    pub decoded: usize,
}

impl MemoryFootprint {
    /// Total resident bytes across both forms.
    pub fn total(&self) -> usize {
        self.compressed + self.decoded
    }
}

impl std::fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compressed={}B decoded={}B total={}B",
            self.compressed,
            self.decoded,
            self.total()
        )
    }
}

/// A complete inverted index over a corpus.
///
/// `lists[t]` is `IL_t` for token id `t`; [`InvertedIndex::any`] is `IL_ANY`
/// (one entry per non-empty context node containing *all* its positions).
///
/// Each list is kept in two physical forms: the decoded columnar
/// [`PostingList`] (random access, slice views — what the reference
/// evaluators consume) and the block-compressed [`BlockList`] (the
/// persisted layout, streamed through skip-aware [`BlockCursor`]s). The
/// builder produces both; [`crate::persist`] stores only the compressed
/// form and decodes on load.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    pub(crate) lists: Vec<PostingList>,
    pub(crate) any: PostingList,
    pub(crate) blocks: Vec<BlockList>,
    pub(crate) any_blocks: BlockList,
    pub(crate) stats: IndexStats,
}

fn empty_list() -> &'static PostingList {
    static EMPTY: OnceLock<PostingList> = OnceLock::new();
    EMPTY.get_or_init(PostingList::empty)
}

fn empty_blocks() -> &'static BlockList {
    static EMPTY: OnceLock<BlockList> = OnceLock::new();
    EMPTY.get_or_init(BlockList::default)
}

impl InvertedIndex {
    /// The inverted list for `token`. Out-of-vocabulary ids map to the empty
    /// list, so queries mentioning unseen tokens simply match nothing.
    pub fn list(&self, token: TokenId) -> &PostingList {
        self.lists
            .get(token.index())
            .unwrap_or_else(|| empty_list())
    }

    /// `IL_ANY`: every non-empty node with all of its positions.
    pub fn any(&self) -> &PostingList {
        &self.any
    }

    /// Open a sequential cursor on a token list.
    pub fn cursor(&self, token: TokenId) -> ListCursor<'_> {
        ListCursor::new(self.list(token))
    }

    /// Open a sequential cursor on `IL_ANY`.
    pub fn any_cursor(&self) -> ListCursor<'_> {
        ListCursor::new(&self.any)
    }

    /// The block-compressed form of a token's list. Out-of-vocabulary ids
    /// map to an empty list.
    pub fn block_list(&self, token: TokenId) -> &BlockList {
        self.blocks
            .get(token.index())
            .unwrap_or_else(|| empty_blocks())
    }

    /// The block-compressed form of `IL_ANY`.
    pub fn any_block_list(&self) -> &BlockList {
        &self.any_blocks
    }

    /// Open a skip-aware cursor on the compressed form of a token's list.
    pub fn block_cursor(&self, token: TokenId) -> BlockCursor<'_> {
        self.block_list(token).cursor()
    }

    /// Open a skip-aware cursor on the compressed form of `IL_ANY`.
    pub fn any_block_cursor(&self) -> BlockCursor<'_> {
        self.any_blocks.cursor()
    }

    /// Open a scored cursor on a token's list in the given physical layout.
    /// The scorer supplies the per-entry scoring rule and its impact bound
    /// (see [`EntryScorer`]); out-of-vocabulary ids yield an empty cursor.
    pub fn scored_cursor<'a, S: EntryScorer + 'a>(
        &'a self,
        token: TokenId,
        layout: IndexLayout,
        scorer: S,
    ) -> Box<dyn ScoredCursor + 'a> {
        match layout {
            IndexLayout::Decoded => Box::new(ScoredList::new(self.list(token), scorer)),
            IndexLayout::Blocks => Box::new(ScoredBlocks::new(self.block_list(token), scorer)),
        }
    }

    /// Total compressed bytes across all block lists (diagnostics).
    pub fn compressed_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(BlockList::compressed_bytes)
            .sum::<usize>()
            + self.any_blocks.compressed_bytes()
    }

    /// Resident bytes of the index, split into the compressed block form
    /// and the decoded columnar views. Both are kept hot (blocks are the
    /// persisted/serving layout, decoded views feed the reference
    /// evaluators), so the *total* is what the process actually pays —
    /// the dual-residency cost surfaced by `ftsl-cli`'s `:stats`.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            compressed: self.compressed_bytes(),
            decoded: self
                .lists
                .iter()
                .map(PostingList::resident_bytes)
                .sum::<usize>()
                + self.any.resident_bytes(),
        }
    }

    /// Document frequency of a token (`df(t)` in Section 3.1).
    pub fn df(&self, token: TokenId) -> usize {
        self.list(token).num_entries()
    }

    /// Number of token lists stored (vocabulary size).
    pub fn num_tokens(&self) -> usize {
        self.lists.len()
    }

    /// Size parameters of Section 5.1.2.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn out_of_vocabulary_token_yields_empty_list() {
        let corpus = Corpus::from_texts(&["hello world"]);
        let index = IndexBuilder::new().build(&corpus);
        let missing = TokenId(9999);
        assert!(index.list(missing).is_empty());
        assert_eq!(index.df(missing), 0);
        let mut cur = index.cursor(missing);
        assert_eq!(cur.next_entry(), None);
    }
}
