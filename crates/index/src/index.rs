//! The inverted index: all `IL_tok` lists plus `IL_ANY`.

use crate::block::{BlockCursor, BlockList};
use crate::cursor::ListCursor;
use crate::postings::PostingList;
use crate::stats::IndexStats;
use ftsl_model::TokenId;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A complete inverted index over a corpus.
///
/// `lists[t]` is `IL_t` for token id `t`; [`InvertedIndex::any`] is `IL_ANY`
/// (one entry per non-empty context node containing *all* its positions).
///
/// Each list is kept in two physical forms: the decoded columnar
/// [`PostingList`] (random access, slice views — what the reference
/// evaluators consume) and the block-compressed [`BlockList`] (the
/// persisted layout, streamed through skip-aware [`BlockCursor`]s). The
/// builder produces both; [`crate::persist`] stores only the compressed
/// form and decodes on load.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    pub(crate) lists: Vec<PostingList>,
    pub(crate) any: PostingList,
    pub(crate) blocks: Vec<BlockList>,
    pub(crate) any_blocks: BlockList,
    pub(crate) stats: IndexStats,
}

fn empty_list() -> &'static PostingList {
    static EMPTY: OnceLock<PostingList> = OnceLock::new();
    EMPTY.get_or_init(PostingList::empty)
}

fn empty_blocks() -> &'static BlockList {
    static EMPTY: OnceLock<BlockList> = OnceLock::new();
    EMPTY.get_or_init(BlockList::default)
}

impl InvertedIndex {
    /// The inverted list for `token`. Out-of-vocabulary ids map to the empty
    /// list, so queries mentioning unseen tokens simply match nothing.
    pub fn list(&self, token: TokenId) -> &PostingList {
        self.lists
            .get(token.index())
            .unwrap_or_else(|| empty_list())
    }

    /// `IL_ANY`: every non-empty node with all of its positions.
    pub fn any(&self) -> &PostingList {
        &self.any
    }

    /// Open a sequential cursor on a token list.
    pub fn cursor(&self, token: TokenId) -> ListCursor<'_> {
        ListCursor::new(self.list(token))
    }

    /// Open a sequential cursor on `IL_ANY`.
    pub fn any_cursor(&self) -> ListCursor<'_> {
        ListCursor::new(&self.any)
    }

    /// The block-compressed form of a token's list. Out-of-vocabulary ids
    /// map to an empty list.
    pub fn block_list(&self, token: TokenId) -> &BlockList {
        self.blocks
            .get(token.index())
            .unwrap_or_else(|| empty_blocks())
    }

    /// The block-compressed form of `IL_ANY`.
    pub fn any_block_list(&self) -> &BlockList {
        &self.any_blocks
    }

    /// Open a skip-aware cursor on the compressed form of a token's list.
    pub fn block_cursor(&self, token: TokenId) -> BlockCursor<'_> {
        self.block_list(token).cursor()
    }

    /// Open a skip-aware cursor on the compressed form of `IL_ANY`.
    pub fn any_block_cursor(&self) -> BlockCursor<'_> {
        self.any_blocks.cursor()
    }

    /// Total compressed bytes across all block lists (diagnostics).
    pub fn compressed_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(BlockList::compressed_bytes)
            .sum::<usize>()
            + self.any_blocks.compressed_bytes()
    }

    /// Document frequency of a token (`df(t)` in Section 3.1).
    pub fn df(&self, token: TokenId) -> usize {
        self.list(token).num_entries()
    }

    /// Number of token lists stored (vocabulary size).
    pub fn num_tokens(&self) -> usize {
        self.lists.len()
    }

    /// Size parameters of Section 5.1.2.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn out_of_vocabulary_token_yields_empty_list() {
        let corpus = Corpus::from_texts(&["hello world"]);
        let index = IndexBuilder::new().build(&corpus);
        let missing = TokenId(9999);
        assert!(index.list(missing).is_empty());
        assert_eq!(index.df(missing), 0);
        let mut cur = index.cursor(missing);
        assert_eq!(cur.next_entry(), None);
    }
}
