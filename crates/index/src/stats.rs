//! Inverted-list size parameters (Section 5.1.2).

use crate::postings::PostingList;
use ftsl_model::Corpus;
use serde::{Deserialize, Serialize};

/// The four size parameters of the paper's complexity model, plus the
/// vocabulary size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexStats {
    /// `cnodes`: number of context nodes.
    pub cnodes: usize,
    /// `pos_per_cnode`: maximum positions in a context node.
    pub pos_per_cnode: usize,
    /// `entries_per_token`: maximum entries in a token inverted list.
    pub entries_per_token: usize,
    /// `pos_per_entry`: maximum positions in a token inverted-list entry.
    pub pos_per_entry: usize,
    /// `|T|`: number of distinct tokens.
    pub vocabulary: usize,
}

impl IndexStats {
    /// Compute the parameters from built lists.
    pub fn compute(corpus: &Corpus, lists: &[PostingList], any: &PostingList) -> Self {
        IndexStats {
            cnodes: corpus.len(),
            pos_per_cnode: any.max_positions_per_entry(),
            entries_per_token: lists
                .iter()
                .map(PostingList::num_entries)
                .max()
                .unwrap_or(0),
            pos_per_entry: lists
                .iter()
                .map(PostingList::max_positions_per_entry)
                .max()
                .unwrap_or(0),
            vocabulary: corpus.interner().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;

    #[test]
    fn parameters_on_uniform_corpus() {
        let corpus = Corpus::from_texts(&["t t t", "t t t"]);
        let index = IndexBuilder::new().build(&corpus);
        let s = index.stats();
        assert_eq!(s.cnodes, 2);
        assert_eq!(s.pos_per_cnode, 3);
        assert_eq!(s.entries_per_token, 2);
        assert_eq!(s.pos_per_entry, 3);
        assert_eq!(s.vocabulary, 1);
    }

    #[test]
    fn empty_corpus_yields_zeroes() {
        let corpus = Corpus::new();
        let index = IndexBuilder::new().build(&corpus);
        assert_eq!(*index.stats(), IndexStats::default());
    }
}
