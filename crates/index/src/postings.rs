//! Posting lists: the physical representation of the `R_token` relations.
//!
//! Storage is flat/columnar: one `Vec<NodeId>`, one prefix-offset array, and
//! one shared `Vec<Position>` — no per-entry allocation, following the
//! many-small-entries advice of the Rust performance guide.

use ftsl_model::{NodeId, Position};
use serde::{Deserialize, Serialize};

/// An inverted list: entries `(cn, PosList)` ordered by `cn`, positions
/// ordered by occurrence within each entry.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingList {
    nodes: Vec<NodeId>,
    /// `offsets[i]..offsets[i+1]` indexes `positions` for entry `i`;
    /// `offsets.len() == nodes.len() + 1` (or both empty).
    offsets: Vec<u32>,
    positions: Vec<Position>,
}

impl PostingList {
    /// An empty list (the inverted list of an out-of-vocabulary token).
    pub fn empty() -> Self {
        PostingList::default()
    }

    /// Build from `(node, positions)` pairs. Pairs must be supplied in
    /// strictly increasing node order with non-empty, offset-ordered
    /// position lists.
    pub fn from_entries(entries: Vec<(NodeId, Vec<Position>)>) -> Self {
        let mut list = PostingList {
            nodes: Vec::with_capacity(entries.len()),
            offsets: Vec::with_capacity(entries.len() + 1),
            positions: Vec::new(),
        };
        for (node, positions) in entries {
            list.push_entry(node, &positions);
        }
        list
    }

    /// Append one entry.
    ///
    /// # Panics
    /// Debug-asserts the ordering invariants of Section 5.1.2: entries
    /// ordered by node id, positions ordered by occurrence, entries non-empty.
    pub fn push_entry(&mut self, node: NodeId, positions: &[Position]) {
        debug_assert!(!positions.is_empty(), "inverted-list entries are non-empty");
        debug_assert!(
            self.nodes.last().is_none_or(|&last| last < node),
            "entries must be pushed in increasing node order"
        );
        debug_assert!(positions.windows(2).all(|w| w[0].offset < w[1].offset));
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.nodes.push(node);
        self.positions.extend_from_slice(positions);
        self.offsets.push(self.positions.len() as u32);
    }

    /// Number of entries (`df(t)`: nodes containing the token).
    pub fn num_entries(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of positions across all entries.
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Maximum positions in any single entry (`pos_per_entry` contribution).
    /// Computed directly from adjacent offset differences — no per-entry
    /// slice construction.
    pub fn max_positions_per_entry(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// The node id of entry `i`.
    pub fn node_of(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// The position list of entry `i`.
    pub fn positions_of(&self, i: usize) -> &[Position] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.positions[lo..hi]
    }

    /// All node ids, ordered (the doc-id view used by the BOOL engine).
    pub fn node_ids(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterate entries as `(NodeId, &[Position])`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[Position])> {
        (0..self.num_entries()).map(move |i| (self.node_of(i), self.positions_of(i)))
    }

    /// Append all entries of `other`, whose node ids must all exceed this
    /// list's last node id (the parallel builder merges per-shard lists in
    /// shard order, which guarantees this).
    pub fn append(&mut self, other: &PostingList) {
        if other.is_empty() {
            return;
        }
        debug_assert!(
            self.nodes.last().is_none_or(|&last| last < other.nodes[0]),
            "appended shards must be in increasing node order"
        );
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let base = self.positions.len() as u32;
        self.nodes.extend_from_slice(&other.nodes);
        self.positions.extend_from_slice(&other.positions);
        self.offsets
            .extend(other.offsets[1..].iter().map(|o| o + base));
    }

    /// The node-id slice of entries `lo..hi` (seek gallop window).
    pub(crate) fn nodes_in(&self, lo: usize, hi: usize) -> &[NodeId] {
        &self.nodes[lo..hi]
    }

    /// Resident heap bytes of the decoded columnar form (node array +
    /// offset array + position array).
    pub fn resident_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<NodeId>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.positions.len() * std::mem::size_of::<Position>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(o: u32) -> Position {
        Position::flat(o)
    }

    #[test]
    fn figure2_usability_list() {
        // Paper Figure 2: "usability" -> (1, [25, 29, 42]) in our 0-adjusted
        // positions the exact values differ; shape is what matters.
        let list = PostingList::from_entries(vec![
            (NodeId(1), vec![p(25), p(29), p(42)]),
            (NodeId(3), vec![p(12), p(39)]),
        ]);
        assert_eq!(list.num_entries(), 2);
        assert_eq!(list.num_positions(), 5);
        assert_eq!(list.node_of(0), NodeId(1));
        assert_eq!(list.positions_of(0).len(), 3);
        assert_eq!(list.positions_of(1), &[p(12), p(39)]);
        assert_eq!(list.max_positions_per_entry(), 3);
    }

    #[test]
    fn empty_list_behaves() {
        let list = PostingList::empty();
        assert!(list.is_empty());
        assert_eq!(list.num_entries(), 0);
        assert_eq!(list.num_positions(), 0);
        assert_eq!(list.max_positions_per_entry(), 0);
        assert_eq!(list.iter().count(), 0);
    }

    #[test]
    fn iter_yields_entries_in_node_order() {
        let list =
            PostingList::from_entries(vec![(NodeId(0), vec![p(1)]), (NodeId(2), vec![p(0), p(7)])]);
        let collected: Vec<(NodeId, usize)> = list.iter().map(|(n, ps)| (n, ps.len())).collect();
        assert_eq!(collected, vec![(NodeId(0), 1), (NodeId(2), 2)]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_order_nodes_panic_in_debug() {
        let mut list = PostingList::empty();
        list.push_entry(NodeId(5), &[p(0)]);
        list.push_entry(NodeId(2), &[p(0)]);
    }
}
