//! Index construction from a corpus.

use crate::index::InvertedIndex;
use crate::postings::PostingList;
use crate::stats::IndexStats;
use ftsl_model::{Corpus, Position, TokenId};

/// Builds an [`InvertedIndex`] from a [`Corpus`].
///
/// Documents are consumed in node order, so all inverted-list entries come
/// out ordered by node id and all positions by offset, as Section 5.1.2
/// requires — no sorting pass is needed.
#[derive(Clone, Debug, Default)]
pub struct IndexBuilder {
    _private: (),
}

impl IndexBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the index.
    pub fn build(&self, corpus: &Corpus) -> InvertedIndex {
        let vocab = corpus.interner().len();
        let mut lists: Vec<PostingList> = vec![PostingList::empty(); vocab];
        let mut any = PostingList::empty();

        // Scratch: per-token positions for the current document, reused
        // across documents to avoid reallocation (workhorse-collection idiom).
        let mut per_token: Vec<Vec<Position>> = vec![Vec::new(); vocab];
        let mut touched: Vec<TokenId> = Vec::new();

        for doc in corpus.documents() {
            if doc.is_empty() {
                continue;
            }
            let all: Vec<Position> = doc.positions().collect();
            any.push_entry(doc.node, &all);

            for &(token, pos) in &doc.tokens {
                let bucket = &mut per_token[token.index()];
                if bucket.is_empty() {
                    touched.push(token);
                }
                bucket.push(pos);
            }
            // Flush in sorted token order for determinism.
            touched.sort_unstable();
            for &token in &touched {
                let bucket = &mut per_token[token.index()];
                lists[token.index()].push_entry(doc.node, bucket);
                bucket.clear();
            }
            touched.clear();
        }

        let stats = IndexStats::compute(corpus, &lists, &any);
        InvertedIndex { lists, any, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_model::{Corpus, NodeId};

    fn index_of(texts: &[&str]) -> (Corpus, InvertedIndex) {
        let corpus = Corpus::from_texts(texts);
        let index = IndexBuilder::new().build(&corpus);
        (corpus, index)
    }

    #[test]
    fn token_lists_have_one_entry_per_containing_node() {
        let (corpus, index) = index_of(&["usability testing", "testing tools", "unrelated"]);
        let testing = corpus.token_id("testing").unwrap();
        let list = index.list(testing);
        assert_eq!(list.num_entries(), 2);
        assert_eq!(list.node_of(0), NodeId(0));
        assert_eq!(list.node_of(1), NodeId(1));
    }

    #[test]
    fn positions_match_document_occurrences() {
        let (corpus, index) = index_of(&["a b a c a"]);
        let a = corpus.token_id("a").unwrap();
        let list = index.list(a);
        let offs: Vec<u32> = list.positions_of(0).iter().map(|p| p.offset).collect();
        assert_eq!(offs, vec![0, 2, 4]);
    }

    #[test]
    fn any_list_contains_all_positions_of_every_node() {
        let (_, index) = index_of(&["x y z", "w"]);
        let any = index.any();
        assert_eq!(any.num_entries(), 2);
        assert_eq!(any.positions_of(0).len(), 3);
        assert_eq!(any.positions_of(1).len(), 1);
    }

    #[test]
    fn empty_documents_are_skipped_in_any() {
        let (_, index) = index_of(&["one", "", "two"]);
        assert_eq!(index.any().num_entries(), 2);
        assert_eq!(index.any().node_of(1), NodeId(2));
    }

    #[test]
    fn figure2_shape_from_figure1_document() {
        // The Figure 1 book element yields multi-position entries for the
        // "usability" and "software" lists, as in Figure 2.
        let corpus = Corpus::from_texts(&[ftsl_model::corpus::figure1_book_text()]);
        let index = IndexBuilder::new().build(&corpus);
        let usability = corpus.token_id("usability").unwrap();
        let software = corpus.token_id("software").unwrap();
        assert!(index.list(usability).positions_of(0).len() >= 3);
        assert!(index.list(software).positions_of(0).len() >= 4);
    }

    #[test]
    fn stats_reflect_section_5_1_2_parameters() {
        let (_, index) = index_of(&["a a a b", "b c"]);
        let s = index.stats();
        assert_eq!(s.cnodes, 2);
        assert_eq!(s.pos_per_cnode, 4);
        assert_eq!(s.entries_per_token, 2); // "b" occurs in both nodes
        assert_eq!(s.pos_per_entry, 3); // "a" has 3 positions in node 0
    }
}
