//! Index construction from a corpus — sequential or sharded-parallel.
//!
//! Documents are consumed in node order, so all inverted-list entries come
//! out ordered by node id and all positions by offset, as Section 5.1.2
//! requires — no sorting pass is needed. The parallel path preserves this
//! by sharding the *document range* into contiguous chunks: each worker
//! builds complete per-shard lists for its chunk, and the merge simply
//! concatenates shard lists in shard order (node ids across consecutive
//! shards are already increasing). The result is bit-identical to a
//! sequential build.
//!
//! After the decoded lists are assembled, their block-compressed physical
//! form ([`crate::block::BlockList`]) is encoded, also in parallel (token
//! ranges are independent).

use crate::block::BlockList;
use crate::index::InvertedIndex;
use crate::pair::{PairConfig, PairIndex};
use crate::postings::PostingList;
use crate::stats::IndexStats;
use ftsl_model::{Corpus, Document, Position, TokenId};

/// Builds an [`InvertedIndex`] from a [`Corpus`].
#[derive(Clone, Debug, Default)]
pub struct IndexBuilder {
    threads: Option<usize>,
    pairs: Option<PairConfig>,
}

/// Below this many documents a parallel build costs more in thread setup
/// and shard merging than it saves.
const PARALLEL_THRESHOLD_DOCS: usize = 512;

impl IndexBuilder {
    /// A builder with default settings (parallelism chosen automatically).
    pub fn new() -> Self {
        Self::default()
    }

    /// Force a worker-thread count (1 = sequential). The default picks
    /// `std::thread::available_parallelism` for large corpora and
    /// sequential construction for small ones.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Override the word-pair auxiliary-index configuration. The default
    /// builds pairs with [`PairConfig::default`] (window 16, df cutoff 2);
    /// pass [`PairConfig::disabled`] to skip pair construction entirely.
    pub fn pair_config(mut self, config: PairConfig) -> Self {
        self.pairs = Some(config);
        self
    }

    /// Build the index.
    pub fn build(&self, corpus: &Corpus) -> InvertedIndex {
        let vocab = corpus.interner().len();
        let docs = corpus.documents();
        let threads = self.effective_threads(docs.len());

        let (lists, any) = if threads <= 1 {
            build_shard(docs, vocab)
        } else {
            build_sharded(docs, vocab, threads)
        };

        let blocks = compress_lists(&lists, threads);
        let any_blocks = BlockList::from_posting(&any);
        let stats = IndexStats::compute(corpus, &lists, &any);
        // The pair auxiliary index needs this build's document frequencies
        // for its coverage cutoff — a second pass over the documents once
        // the token lists exist. Building it here (rather than in the live
        // layer) means every segment seal and tiered merge gets pair
        // acceleration for free.
        let dfs: Vec<u32> = lists.iter().map(|l| l.num_entries() as u32).collect();
        let pairs = PairIndex::build(docs, &dfs, self.pairs.unwrap_or_default());
        InvertedIndex {
            lists,
            any,
            blocks,
            any_blocks,
            stats,
            pairs,
            ..InvertedIndex::default()
        }
    }

    fn effective_threads(&self, num_docs: usize) -> usize {
        let requested = self.threads.unwrap_or_else(|| {
            if num_docs < PARALLEL_THRESHOLD_DOCS {
                1
            } else {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }
        });
        requested.min(num_docs.max(1))
    }
}

/// Sequentially index one contiguous run of documents.
fn build_shard(docs: &[Document], vocab: usize) -> (Vec<PostingList>, PostingList) {
    let mut lists: Vec<PostingList> = vec![PostingList::empty(); vocab];
    let mut any = PostingList::empty();

    // Scratch: per-token positions for the current document, reused across
    // documents to avoid reallocation (workhorse-collection idiom).
    let mut per_token: Vec<Vec<Position>> = vec![Vec::new(); vocab];
    let mut touched: Vec<TokenId> = Vec::new();

    for doc in docs {
        if doc.is_empty() {
            continue;
        }
        let all: Vec<Position> = doc.positions().collect();
        any.push_entry(doc.node, &all);

        for &(token, pos) in &doc.tokens {
            let bucket = &mut per_token[token.index()];
            if bucket.is_empty() {
                touched.push(token);
            }
            bucket.push(pos);
        }
        // Flush in sorted token order for determinism.
        touched.sort_unstable();
        for &token in &touched {
            let bucket = &mut per_token[token.index()];
            lists[token.index()].push_entry(doc.node, bucket);
            bucket.clear();
        }
        touched.clear();
    }
    (lists, any)
}

/// Index contiguous document chunks on worker threads, then concatenate the
/// per-shard lists in shard order.
fn build_sharded(
    docs: &[Document],
    vocab: usize,
    threads: usize,
) -> (Vec<PostingList>, PostingList) {
    let chunk = docs.len().div_ceil(threads);
    let shards: Vec<(Vec<PostingList>, PostingList)> = std::thread::scope(|scope| {
        let handles: Vec<_> = docs
            .chunks(chunk)
            .map(|slice| scope.spawn(move || build_shard(slice, vocab)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("index shard worker"))
            .collect()
    });

    let mut lists: Vec<PostingList> = vec![PostingList::empty(); vocab];
    let mut any = PostingList::empty();
    for (shard_lists, shard_any) in &shards {
        any.append(shard_any);
        for (t, shard_list) in shard_lists.iter().enumerate() {
            if !shard_list.is_empty() {
                lists[t].append(shard_list);
            }
        }
    }
    (lists, any)
}

/// Block-compress every list; token ranges are independent, so large
/// vocabularies are chunked across the same worker count.
fn compress_lists(lists: &[PostingList], threads: usize) -> Vec<BlockList> {
    if threads <= 1 || lists.len() < 1024 {
        return lists.iter().map(BlockList::from_posting).collect();
    }
    let chunk = lists.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = lists
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(BlockList::from_posting)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("compression worker"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_model::{Corpus, NodeId};

    fn index_of(texts: &[&str]) -> (Corpus, InvertedIndex) {
        let corpus = Corpus::from_texts(texts);
        let index = IndexBuilder::new().build(&corpus);
        (corpus, index)
    }

    #[test]
    fn token_lists_have_one_entry_per_containing_node() {
        let (corpus, index) = index_of(&["usability testing", "testing tools", "unrelated"]);
        let testing = corpus.token_id("testing").unwrap();
        let list = index.list(testing);
        assert_eq!(list.num_entries(), 2);
        assert_eq!(list.node_of(0), NodeId(0));
        assert_eq!(list.node_of(1), NodeId(1));
    }

    #[test]
    fn positions_match_document_occurrences() {
        let (corpus, index) = index_of(&["a b a c a"]);
        let a = corpus.token_id("a").unwrap();
        let list = index.list(a);
        let offs: Vec<u32> = list.positions_of(0).iter().map(|p| p.offset).collect();
        assert_eq!(offs, vec![0, 2, 4]);
    }

    #[test]
    fn any_list_contains_all_positions_of_every_node() {
        let (_, index) = index_of(&["x y z", "w"]);
        let any = index.any();
        assert_eq!(any.num_entries(), 2);
        assert_eq!(any.positions_of(0).len(), 3);
        assert_eq!(any.positions_of(1).len(), 1);
    }

    #[test]
    fn empty_documents_are_skipped_in_any() {
        let (_, index) = index_of(&["one", "", "two"]);
        assert_eq!(index.any().num_entries(), 2);
        assert_eq!(index.any().node_of(1), NodeId(2));
    }

    #[test]
    fn figure2_shape_from_figure1_document() {
        // The Figure 1 book element yields multi-position entries for the
        // "usability" and "software" lists, as in Figure 2.
        let corpus = Corpus::from_texts(&[ftsl_model::corpus::figure1_book_text()]);
        let index = IndexBuilder::new().build(&corpus);
        let usability = corpus.token_id("usability").unwrap();
        let software = corpus.token_id("software").unwrap();
        assert!(index.list(usability).positions_of(0).len() >= 3);
        assert!(index.list(software).positions_of(0).len() >= 4);
    }

    #[test]
    fn stats_reflect_section_5_1_2_parameters() {
        let (_, index) = index_of(&["a a a b", "b c"]);
        let s = index.stats();
        assert_eq!(s.cnodes, 2);
        assert_eq!(s.pos_per_cnode, 4);
        assert_eq!(s.entries_per_token, 2); // "b" occurs in both nodes
        assert_eq!(s.pos_per_entry, 3); // "a" has 3 positions in node 0
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        // Enough docs to span several shards, with gaps (empty docs).
        let texts: Vec<String> = (0..200)
            .map(|i| {
                if i % 17 == 0 {
                    String::new()
                } else {
                    format!("t{} t{} shared t{}", i % 7, i % 13, (i * 3) % 5)
                }
            })
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let seq = IndexBuilder::new().threads(1).build(&corpus);
        let par = IndexBuilder::new().threads(4).build(&corpus);
        assert_eq!(seq.stats(), par.stats());
        assert_eq!(seq.any(), par.any());
        for t in 0..corpus.interner().len() {
            let tok = ftsl_model::TokenId(t as u32);
            assert_eq!(seq.list(tok), par.list(tok), "token {t}");
            assert_eq!(seq.block_list(tok), par.block_list(tok), "blocks {t}");
        }
    }

    #[test]
    fn block_lists_mirror_posting_lists() {
        let (corpus, index) = index_of(&["a b a", "b c", "a c c"]);
        for t in 0..corpus.interner().len() {
            let tok = ftsl_model::TokenId(t as u32);
            assert_eq!(&index.block_list(tok).to_posting(), index.list(tok));
        }
        assert_eq!(&index.any_block_list().to_posting(), index.any());
    }
}
