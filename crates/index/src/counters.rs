//! Machine-independent access counters.
//!
//! Section 5 of the paper expresses every complexity bound in terms of the
//! number of inverted-list entries and positions touched. Every cursor in
//! this workspace counts its accesses so Figure 3's bounds can be checked
//! empirically, independent of wall-clock noise.

use std::ops::AddAssign;

/// Counts of sequential inverted-list accesses.
///
/// `entries` counts entries an evaluator *consumed* (returned by
/// `next_entry`/`seek`). On the block layout physical decode is
/// block-granular — a touched block is unpacked whole into cursor
/// scratch — but the counters keep the logical access semantics so both
/// layouts stay comparable; the unpacking itself is the constant-cost
/// machinery being measured by the `batch_decode` bench, not an access.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Entries *consumed*: returned to the evaluator by `nextEntry()` or
    /// as a `seek` landing. Entries a seek bypasses — galloped over on the
    /// decoded layout, binary-searched past inside an unpacked block on
    /// the block layout — count in [`Self::skipped`] instead.
    pub entries: u64,
    /// Positions consumed from `getPositions()` results.
    pub positions: u64,
    /// Positions whose *payload* was materialized out of the physical list.
    ///
    /// On the block layout this counts real decompression work, one
    /// position at a time: the v5 cursor decodes an entry's payload
    /// *incrementally* ([`crate::block::BlockCursor::positions`] and the
    /// single-position accessors), so a predicate that accepts or rejects
    /// on an entry's first position charges one decode, not the entry's
    /// full `tf`; entries rejected on node id alone are stepped over via
    /// the unpacked length column and never contribute at all. On the
    /// decoded layout positions are already resident, so the counter
    /// instead records the first *inspection* of each entry's position
    /// slice (its whole length) — an upper bound on what the block layout
    /// charges for the same access pattern.
    pub positions_decoded: u64,
    /// Tuples materialized by non-streaming operators (COMP joins).
    pub tuples: u64,
    /// Entries bypassed by `seek` without being *consumed* (whole-block
    /// jumps, galloped-over entries on the decoded layout, and entries a
    /// block cursor's in-block binary search steps past). Distinguishing
    /// consumed from skipped work is what makes skip-aware and sequential
    /// evaluation comparable.
    pub skipped: u64,
    /// Compressed blocks whose remaining entries a cursor bypassed in one
    /// jump — untouched blocks a `seek` stepped over via the skip headers,
    /// or blocks abandoned by score-bound pruning because their impact
    /// bound fell below the top-k threshold (only counted when at least one
    /// entry was actually bypassed). Always 0 on the decoded layout, which
    /// has no block structure.
    pub blocks_skipped: u64,
    /// Whole live-index segments a global top-k run bypassed without
    /// touching a single posting, because the segment's total impact bound
    /// fell below the shared heap's k-th score. Always 0 for single-index
    /// evaluation.
    pub segments_skipped: u64,
    /// Entries consumed from the word-pair auxiliary index
    /// ([`crate::pair::PairIndex`]). Pair entries *also* count in
    /// [`Self::entries`] — the pair list is just another physical list —
    /// so totals stay comparable across engines; this field attributes how
    /// much of the work rode the accelerated path (0 means the query fell
    /// back to, or never needed, position intersection).
    pub pair_entries: u64,
}

impl AccessCounters {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total *decode* work — a single scalar proxy. Skipped entries are
    /// deliberately excluded: a skip touches only a block header, not the
    /// compressed entry stream.
    pub fn total(&self) -> u64 {
        self.entries + self.positions + self.tuples
    }
}

impl AddAssign for AccessCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.entries += rhs.entries;
        self.positions += rhs.positions;
        self.positions_decoded += rhs.positions_decoded;
        self.tuples += rhs.tuples;
        self.skipped += rhs.skipped;
        self.blocks_skipped += rhs.blocks_skipped;
        self.segments_skipped += rhs.segments_skipped;
        self.pair_entries += rhs.pair_entries;
    }
}

impl std::ops::Add for AccessCounters {
    type Output = AccessCounters;
    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add() {
        let a = AccessCounters {
            entries: 1,
            positions: 2,
            tuples: 3,
            skipped: 4,
            blocks_skipped: 5,
            positions_decoded: 6,
            segments_skipped: 7,
            pair_entries: 8,
        };
        let b = AccessCounters {
            entries: 10,
            positions: 20,
            tuples: 30,
            skipped: 40,
            blocks_skipped: 50,
            positions_decoded: 60,
            segments_skipped: 70,
            pair_entries: 80,
        };
        let c = a + b;
        assert_eq!(
            c,
            AccessCounters {
                entries: 11,
                positions: 22,
                tuples: 33,
                skipped: 44,
                blocks_skipped: 55,
                positions_decoded: 66,
                segments_skipped: 77,
                pair_entries: 88,
            }
        );
        // Skipped entries are not decode work.
        assert_eq!(c.total(), 66);
    }
}
