//! Block-compressed posting lists with an implicit skip list — the **v5
//! bit-packed frame-of-reference layout**, decoded a whole block at a time.
//!
//! The physical layout of an inverted list ([`BlockList`]) groups entries
//! into blocks of [`BLOCK_ENTRIES`] entries. Each block's header
//! ([`BlockMeta`]) records the largest node id it contains plus its byte
//! offset, so the header array doubles as a one-level skip list: a cursor
//! seeking a node id binary-searches the headers, jumps straight to the
//! first candidate block, and only touches entries inside it.
//!
//! ## Block encoding (format v5)
//!
//! Within a block, the three per-entry scalars travel as *columns*, each a
//! fixed-width bit-packed frame ([`crate::bitpack`]) rather than a stream
//! of per-entry varints:
//!
//! ```text
//! base:u32-le  id_width:u8  tf_width:u8  len_width:u8
//! id-delta frame   (⌈n·id_width/32⌉ words): lane 0 = 0, lane i = id[i]−id[i−1]−1
//! tf frame         (⌈n·tf_width/32⌉ words): lane i = tf[i] − 1
//! pos-length frame (⌈n·len_width/32⌉ words): lane i = byte length of entry
//!                                            i's encoded positions
//! position payloads: per entry, varint-encoded (unchanged from v4)
//! ```
//!
//! where `n` is the block's entry count (128 everywhere but the tail).
//! Unused bits of a frame's final word are zero. Node ids are strictly
//! increasing, so the delta−1 trick makes consecutive ids a width-0 (free)
//! frame; `tf − 1` does the same for all-single-occurrence blocks. Widths
//! are exception-free: the largest value in a frame sets the width for
//! every lane, buying a decoder with no data-dependent branches.
//!
//! A [`BlockCursor`] holds a reusable decoded-block scratch buffer: the
//! first touch of a block unpacks all its ids, term frequencies, and
//! position-payload offsets into flat `u32` arrays, after which
//! [`BlockCursor::next_entry`] is an array walk and [`BlockCursor::seek`]
//! binary-searches the decoded ids instead of linearly decoding varints.
//! Position payloads stay varint-encoded and lazily decoded: the unpacked
//! length column gives every entry's payload range, so entries rejected on
//! node id alone never pay a position decode.
//!
//! [`AccessCounters`] keep their established meaning: `entries` counts
//! entries the evaluator *consumed* (returned by `next_entry`/`seek`),
//! `skipped` counts entries bypassed without being returned — including
//! entries a `seek` now binary-searches past inside an unpacked block —
//! and `blocks_skipped` counts whole blocks stepped over via the headers,
//! exactly as before. Physical decode work is block-granular (a touched
//! block is unpacked whole), which is what makes the per-entry walk
//! branchless.

use crate::bitpack;
use crate::counters::AccessCounters;
use crate::postings::PostingList;
use crate::varint;
use ftsl_model::{NodeId, Position};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::mem::ManuallyDrop;

/// Entries per compressed block. 128 keeps the skip granularity fine while
/// letting the per-block header amortize to under 0.1 byte/entry, and
/// matches [`bitpack::LANES`] so one bit-packed frame covers one block.
pub const BLOCK_ENTRIES: usize = 128;

const _: () = assert!(
    BLOCK_ENTRIES == bitpack::LANES,
    "one bitpack frame must cover exactly one block"
);

/// Fixed per-block stream overhead: the absolute base id (4 bytes) plus the
/// three frame widths (1 byte each).
const BLOCK_PREFIX_BYTES: usize = 7;

/// Header of one compressed block — one implicit skip-list node.
///
/// Besides the skip information (`max_node`, `byte_start`, `first_entry`),
/// the header carries per-block *impact metadata*: `max_tf`, the largest
/// term frequency (position count) of any entry in the block. A scored
/// cursor turns `max_tf` into a score upper bound for the whole block, so
/// top-k evaluation can skip blocks whose bound falls below the current
/// threshold without decoding a single entry (block-max pruning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Largest node id stored in the block (its last entry's id).
    pub max_node: NodeId,
    /// Byte offset of the block's encoding (its `base` field) in the data
    /// stream.
    pub byte_start: u32,
    /// Global index of the block's first entry.
    pub first_entry: u32,
    /// Largest position count (term frequency) of any entry in the block.
    pub max_tf: u32,
}

/// A block-compressed inverted list: the on-disk and cache-resident layout.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockList {
    blocks: Vec<BlockMeta>,
    data: Vec<u8>,
    entries: u32,
    positions: u64,
}

/// One block's column values, staged before packing.
#[derive(Default)]
struct BlockStage {
    ids: Vec<u32>,
    tfs: Vec<u32>,
    pos_lens: Vec<u32>,
    pos_bytes: Vec<u8>,
}

impl BlockStage {
    fn clear(&mut self) {
        self.ids.clear();
        self.tfs.clear();
        self.pos_lens.clear();
        self.pos_bytes.clear();
    }

    /// Pack the staged block onto `data`, returning `(max_node, max_tf)`.
    fn flush(&self, data: &mut Vec<u8>) -> (u32, u32) {
        let count = self.ids.len();
        debug_assert!(0 < count && count <= BLOCK_ENTRIES);
        let mut frame = [0u32; bitpack::LANES];

        // Column 1: id deltas (lane 0 is 0 — the base is stored absolute).
        let mut max_delta = 0u32;
        for (lane, pair) in frame[1..count].iter_mut().zip(self.ids.windows(2)) {
            let d = pair[1] - pair[0] - 1;
            *lane = d;
            max_delta = max_delta.max(d);
        }
        let id_width = bitpack::width_for(max_delta);

        data.extend_from_slice(&self.ids[0].to_le_bytes());
        let widths_at = data.len();
        data.extend_from_slice(&[id_width, 0, 0]);
        bitpack::pack(&frame, count, id_width, data);

        // Column 2: tf − 1.
        let max_tf = *self.tfs.iter().max().expect("non-empty block");
        for (lane, &tf) in frame.iter_mut().zip(&self.tfs) {
            *lane = tf - 1;
        }
        let tf_width = bitpack::width_for(max_tf - 1);
        data[widths_at + 1] = tf_width;
        bitpack::pack(&frame, count, tf_width, data);

        // Column 3: position payload byte lengths.
        let max_len = *self.pos_lens.iter().max().expect("non-empty block");
        let len_width = bitpack::width_for(max_len);
        data[widths_at + 2] = len_width;
        bitpack::pack(&self.pos_lens, count, len_width, data);

        // Position payloads, varint-encoded exactly as staged.
        data.extend_from_slice(&self.pos_bytes);
        (self.ids[count - 1], max_tf)
    }
}

impl BlockList {
    /// Compress a decoded [`PostingList`] into v5 bit-packed blocks.
    pub fn from_posting(list: &PostingList) -> Self {
        let mut out = BlockList::default();
        let mut stage = BlockStage::default();
        let mut scratch: Vec<u8> = Vec::new();
        for (i, (node, positions)) in list.iter().enumerate() {
            if i % BLOCK_ENTRIES == 0 && i > 0 {
                out.push_block(&stage);
                stage.clear();
            }
            stage.ids.push(node.0);
            stage.tfs.push(positions.len() as u32);
            scratch.clear();
            let mut prev = Position::flat(0);
            for (j, p) in positions.iter().enumerate() {
                if j == 0 {
                    varint::put_u32(&mut scratch, p.offset);
                    varint::put_u32(&mut scratch, p.sentence);
                    varint::put_u32(&mut scratch, p.paragraph);
                } else {
                    varint::put_u32(&mut scratch, p.offset - prev.offset - 1);
                    varint::put_u32(&mut scratch, p.sentence - prev.sentence);
                    varint::put_u32(&mut scratch, p.paragraph - prev.paragraph);
                }
                prev = *p;
            }
            stage.pos_lens.push(scratch.len() as u32);
            stage.pos_bytes.extend_from_slice(&scratch);
            out.entries += 1;
            out.positions += positions.len() as u64;
        }
        if !stage.ids.is_empty() {
            out.push_block(&stage);
        }
        out
    }

    fn push_block(&mut self, stage: &BlockStage) {
        let byte_start = self.data.len() as u32;
        let first_entry = (self.blocks.len() * BLOCK_ENTRIES) as u32;
        let (max_node, max_tf) = stage.flush(&mut self.data);
        self.blocks.push(BlockMeta {
            max_node: NodeId(max_node),
            byte_start,
            first_entry,
            max_tf,
        });
    }

    /// Decode back into the flat columnar layout.
    pub fn to_posting(&self) -> PostingList {
        let mut list = PostingList::empty();
        let mut cursor = self.cursor();
        let mut positions: Vec<Position> = Vec::new();
        while let Some(node) = cursor.next_entry() {
            positions.clear();
            positions.extend_from_slice(cursor.positions());
            list.push_entry(node, &positions);
        }
        list
    }

    /// Like [`Self::to_posting`], but over *untrusted* bytes (the persisted
    /// load path): every width, frame, count, and ordering invariant is
    /// checked — including that tail-block padding lanes are zero, so each
    /// list has exactly one canonical encoding — and any violation returns
    /// `Err` with a description instead of panicking the way the in-memory
    /// cursor would.
    pub fn try_to_posting(&self) -> Result<PostingList, &'static str> {
        let mut list = PostingList::empty();
        let entries = self.entries as usize;
        if self.blocks.len() != entries.div_ceil(BLOCK_ENTRIES) {
            return Err("block count disagrees with entry count");
        }
        let mut at = 0usize;
        let mut prev_node: Option<u32> = None;
        let mut total_positions = 0u64;
        let mut ids = [0u32; bitpack::LANES];
        let mut tfs = [0u32; bitpack::LANES];
        let mut lens = [0u32; bitpack::LANES];
        let mut positions: Vec<Position> = Vec::new();
        for (b, meta) in self.blocks.iter().enumerate() {
            let count = BLOCK_ENTRIES.min(entries - b * BLOCK_ENTRIES);
            if meta.byte_start as usize != at || meta.first_entry as usize != b * BLOCK_ENTRIES {
                return Err("block header disagrees with entry stream");
            }
            if self.data.len() - at < BLOCK_PREFIX_BYTES {
                return Err("truncated block prefix");
            }
            let base = u32::from_le_bytes([
                self.data[at],
                self.data[at + 1],
                self.data[at + 2],
                self.data[at + 3],
            ]);
            let id_width = self.data[at + 4];
            let tf_width = self.data[at + 5];
            let len_width = self.data[at + 6];
            at += BLOCK_PREFIX_BYTES;
            if id_width > 32 || tf_width > 32 || len_width > 32 {
                return Err("frame width exceeds 32 bits");
            }
            let frames = bitpack::packed_bytes(id_width, count)
                + bitpack::packed_bytes(tf_width, count)
                + bitpack::packed_bytes(len_width, count);
            if self.data.len() - at < frames {
                return Err("truncated block frames");
            }
            at += bitpack::unpack(&self.data[at..], id_width, count, &mut ids);
            at += bitpack::unpack(&self.data[at..], tf_width, count, &mut tfs);
            at += bitpack::unpack(&self.data[at..], len_width, count, &mut lens);
            if ids[0] != 0 {
                return Err("first id-delta lane not zero");
            }
            for lane in count..BLOCK_ENTRIES {
                if ids[lane] != 0 || tfs[lane] != 0 || lens[lane] != 0 {
                    return Err("non-zero padding lane");
                }
            }
            // Reconstruct the id column with overflow checks.
            if prev_node.is_some_and(|p| base <= p) {
                return Err("node ids not strictly increasing");
            }
            ids[0] = base;
            for i in 1..count {
                ids[i] = ids[i - 1]
                    .checked_add(ids[i])
                    .and_then(|n| n.checked_add(1))
                    .ok_or("node overflow")?;
            }
            prev_node = Some(ids[count - 1]);
            if NodeId(ids[count - 1]) != meta.max_node {
                return Err("block max node disagrees with entries");
            }
            // tf column: stored as tf − 1, so every entry has ≥1 position.
            let mut block_tf = 0u32;
            for tf in tfs.iter_mut().take(count) {
                *tf = tf.checked_add(1).ok_or("term frequency overflow")?;
                block_tf = block_tf.max(*tf);
            }
            if block_tf != meta.max_tf {
                return Err("block max_tf disagrees with entries");
            }
            // Position payloads: lengths must tile the remaining region.
            for i in 0..count {
                let end = at
                    .checked_add(lens[i] as usize)
                    .ok_or("position length overflow")?;
                if end > self.data.len() {
                    return Err("position bytes out of range");
                }
                positions.clear();
                let mut prev = Position::flat(0);
                for j in 0..tfs[i] {
                    let (offset, sentence, paragraph) = if j == 0 {
                        (
                            varint::get_u32(&self.data, &mut at).ok_or("truncated offset")?,
                            varint::get_u32(&self.data, &mut at).ok_or("truncated sentence")?,
                            varint::get_u32(&self.data, &mut at).ok_or("truncated paragraph")?,
                        )
                    } else {
                        let doff =
                            varint::get_u32(&self.data, &mut at).ok_or("truncated offset")?;
                        let dsent =
                            varint::get_u32(&self.data, &mut at).ok_or("truncated sentence")?;
                        let dpara =
                            varint::get_u32(&self.data, &mut at).ok_or("truncated paragraph")?;
                        (
                            prev.offset
                                .checked_add(doff)
                                .and_then(|o| o.checked_add(1))
                                .ok_or("offset overflow")?,
                            prev.sentence
                                .checked_add(dsent)
                                .ok_or("sentence overflow")?,
                            prev.paragraph
                                .checked_add(dpara)
                                .ok_or("paragraph overflow")?,
                        )
                    };
                    if at > end {
                        return Err("positions overrun their declared length");
                    }
                    prev = Position {
                        offset,
                        sentence,
                        paragraph,
                    };
                    positions.push(prev);
                }
                if at != end {
                    return Err("positions shorter than declared length");
                }
                total_positions += u64::from(tfs[i]);
                list.push_entry(NodeId(ids[i]), &positions);
            }
        }
        if at != self.data.len() {
            return Err("trailing bytes after last block");
        }
        if total_positions != self.positions {
            return Err("position count disagrees with payload");
        }
        Ok(list)
    }

    /// Number of entries (`df(t)`).
    pub fn num_entries(&self) -> usize {
        self.entries as usize
    }

    /// Total positions across all entries.
    pub fn num_positions(&self) -> usize {
        self.positions as usize
    }

    /// True iff the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of compressed blocks (skip-list length).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Largest term frequency (positions per entry) across the whole list —
    /// the list-level impact bound, folded from the per-block headers.
    pub fn max_tf(&self) -> u32 {
        self.blocks.iter().map(|b| b.max_tf).max().unwrap_or(0)
    }

    /// Bytes of the packed entry stream alone (frames + position payloads),
    /// excluding the [`BlockMeta`] skip/impact headers.
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes of the resident [`BlockMeta`] header array — skip-list and
    /// impact metadata the index pays for on top of the entry stream.
    pub fn header_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Compressed payload size in bytes (entry stream + skip headers).
    pub fn compressed_bytes(&self) -> usize {
        self.data_bytes() + self.header_bytes()
    }

    /// Open a seeking, block-at-a-time cursor over the compressed stream.
    ///
    /// The cursor's decoded-block buffer is leased from the calling
    /// thread's scratch pool and returned on drop, so steady-state query
    /// work reuses warm buffers instead of heap-allocating per cursor
    /// (see [`scratch_pool_stats`]).
    pub fn cursor(&self) -> BlockCursor<'_> {
        BlockCursor {
            list: self,
            idx: usize::MAX,
            run_start: 0,
            count: 0,
            first: 0,
            block: usize::MAX,
            started: false,
            done: false,
            pos_valid_for: u64::MAX,
            pos_idx: 0,
            pos_at: 0,
            pos_end: 0,
            pos_prev: Position::flat(0),
            scratch: ManuallyDrop::new(take_scratch()),
            counters: AccessCounters::new(),
        }
    }

    /// Skip headers (exposed for persistence and diagnostics).
    pub(crate) fn parts(&self) -> (&[BlockMeta], &[u8], u32, u64) {
        (&self.blocks, &self.data, self.entries, self.positions)
    }

    /// Reassemble from persisted parts, validating counts.
    pub(crate) fn from_parts(
        blocks: Vec<BlockMeta>,
        data: Vec<u8>,
        entries: u32,
        positions: u64,
    ) -> Self {
        BlockList {
            blocks,
            data,
            entries,
            positions,
        }
    }
}

/// The reusable decoded-block buffer a [`BlockCursor`] unpacks into.
///
/// The three per-entry columns decode independently, each on first demand:
/// touching a block unpacks its **id** column (every consumer needs node
/// ids); the **tf** column is unpacked the first time a scored consumer
/// asks for a term frequency; the **payload-offset** column the first time
/// positions are requested. A BOOL scan therefore pays for exactly one
/// frame per block, a top-k union for two, a positional query for all
/// three. Sized by [`BlockCursor::scratch_bytes`] for footprint
/// accounting.
#[derive(Clone, Debug)]
struct BlockScratch {
    /// Decoded node ids of the resident block.
    ids: [u32; BLOCK_ENTRIES],
    /// Decoded term frequencies (valid when `tf_block` matches).
    tfs: [u32; BLOCK_ENTRIES],
    /// Exclusive prefix sums of position-payload byte lengths, relative to
    /// `pos_base`: entry `i`'s payload is `pos_base + ends[i-1] .. pos_base
    /// + ends[i]` (with `ends[-1] = 0`). Valid when `len_block` matches.
    pos_ends: [u32; BLOCK_ENTRIES],
    /// Byte offset of the resident block's tf frame.
    tf_at: usize,
    /// Byte offset of the resident block's payload-length frame.
    len_at: usize,
    /// Absolute byte offset of the resident block's position region.
    pos_base: usize,
    /// Frame widths of the resident block's tf and length columns.
    tf_width: u8,
    len_width: u8,
    /// Block whose tf column is decoded; `usize::MAX` when stale.
    tf_block: usize,
    /// Block whose payload offsets are decoded; `usize::MAX` when stale.
    len_block: usize,
    /// Positions of the current entry decoded so far (a prefix of the
    /// payload — the cursor's sub-decoder materializes them on demand).
    /// Lives in the scratch so a pooled buffer keeps its capacity across
    /// cursors: positional queries stop allocating once warm.
    decoded: Vec<Position>,
}

impl Default for BlockScratch {
    fn default() -> Self {
        BlockScratch {
            ids: [0; BLOCK_ENTRIES],
            tfs: [0; BLOCK_ENTRIES],
            pos_ends: [0; BLOCK_ENTRIES],
            tf_at: 0,
            len_at: 0,
            pos_base: 0,
            tf_width: 0,
            len_width: 0,
            tf_block: usize::MAX,
            len_block: usize::MAX,
            decoded: Vec::new(),
        }
    }
}

impl BlockScratch {
    /// Make a recycled buffer indistinguishable from a fresh one: stale
    /// the column tags and empty (but keep the capacity of) the decoded
    /// positions. The id/tf/offset columns need no clearing — a fresh
    /// cursor holds no resident block, so their lanes are unreachable
    /// until `unpack_block` overwrites them.
    fn reset(&mut self) {
        self.tf_block = usize::MAX;
        self.len_block = usize::MAX;
        self.decoded.clear();
    }
}

/// Pooled buffers per thread. Bounds the memory a thread parks between
/// queries: enough for the widest realistic cursor fan-out (one cursor
/// per distinct query token), small enough that an idle worker holds
/// under ~100 KiB of scratch.
const SCRATCH_POOL_CAP: usize = 64;

struct ScratchPool {
    // Boxes on purpose: cursors hold `ManuallyDrop<Box<BlockScratch>>`,
    // so pooling the box itself makes take/return a pointer move — the
    // unboxed form clippy suggests would re-box (allocate) on every take.
    #[allow(clippy::vec_box)]
    free: Vec<Box<BlockScratch>>,
    reused: u64,
    allocated: u64,
}

thread_local! {
    static SCRATCH_POOL: RefCell<ScratchPool> = const {
        RefCell::new(ScratchPool {
            free: Vec::new(),
            reused: 0,
            allocated: 0,
        })
    };
}

/// Lease a scratch buffer from the calling thread's pool, falling back to
/// a heap allocation when the pool is empty (or the thread is tearing
/// down its locals).
fn take_scratch() -> Box<BlockScratch> {
    SCRATCH_POOL
        .try_with(|pool| {
            let mut pool = pool.borrow_mut();
            match pool.free.pop() {
                Some(mut scratch) => {
                    pool.reused += 1;
                    scratch.reset();
                    Some(scratch)
                }
                None => {
                    pool.allocated += 1;
                    None
                }
            }
        })
        .ok()
        .flatten()
        .unwrap_or_default()
}

/// Park a scratch buffer back in the calling thread's pool; buffers over
/// the cap (or arriving during thread teardown) are simply freed.
fn return_scratch(scratch: Box<BlockScratch>) {
    let _ = SCRATCH_POOL.try_with(move |pool| {
        let mut pool = pool.borrow_mut();
        if pool.free.len() < SCRATCH_POOL_CAP {
            pool.free.push(scratch);
        }
    });
}

/// Cumulative scratch-pool statistics for the **calling thread** — the
/// pool is thread-local, so a serving worker reads its own counters.
///
/// `allocated` counts cursors that had to heap-allocate a fresh buffer;
/// `reused` counts cursors served from the pool. A steady-state worker
/// (same query shapes, warm pool) should see `reused` grow while
/// `allocated` stays flat — the "queries allocate nothing on the hot
/// path" invariant the serve-layer allocation tests pin down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchPoolStats {
    /// Cursors served by recycling a pooled buffer.
    pub reused: u64,
    /// Cursors that heap-allocated a fresh buffer.
    pub allocated: u64,
    /// Buffers currently parked in the pool.
    pub pooled: usize,
}

/// Read the calling thread's [`ScratchPoolStats`].
pub fn scratch_pool_stats() -> ScratchPoolStats {
    SCRATCH_POOL
        .try_with(|pool| {
            let pool = pool.borrow();
            ScratchPoolStats {
                reused: pool.reused,
                allocated: pool.allocated,
                pooled: pool.free.len(),
            }
        })
        .unwrap_or_default()
}

/// A forward-only, skip-aware cursor over a [`BlockList`], decoding one
/// whole block at a time.
///
/// Implements the paper's sequential contract (`next_entry` /
/// `positions`) plus the [`BlockCursor::seek`] extension: jump to the first
/// entry with node id ≥ a target, skipping whole blocks via the header
/// array and binary-searching the decoded ids inside the landing block.
/// Skipped entries are counted separately from consumed ones in
/// [`AccessCounters`], so evaluation strategies can be compared on exact
/// access work.
///
/// ```
/// use ftsl_index::block::BlockList;
/// use ftsl_index::PostingList;
/// use ftsl_model::{NodeId, Position};
///
/// // 1000 entries at even node ids 0, 2, 4, ...
/// let list = PostingList::from_entries(
///     (0..1000).map(|i| (NodeId(2 * i), vec![Position::flat(i)])).collect(),
/// );
/// let blocks = BlockList::from_posting(&list);
/// let mut cur = blocks.cursor();
///
/// // Seek lands on the first entry with node id >= 1501.
/// assert_eq!(cur.seek(NodeId(1501)), Some(NodeId(1502)));
/// // Only the landing entry was consumed; everything before it was either
/// // stepped over through the header array or binary-searched past inside
/// // the landing block.
/// assert!(cur.counters().entries < 2 * ftsl_index::block::BLOCK_ENTRIES as u64);
/// assert!(cur.counters().skipped >= 600);
/// ```
#[derive(Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    /// Index of the current entry within the resident block; `usize::MAX`
    /// when the cursor is not positioned inside it (fresh or exhausted).
    idx: usize,
    /// Index at which the current *counted run* began: entries consumed
    /// since the last landing. `AccessCounters::entries` is updated once
    /// per run (at block transitions and in [`BlockCursor::counters`]),
    /// not once per entry — the hot walk stays store-minimal and the
    /// counting is exactly branch-free.
    run_start: usize,
    /// Entries in the resident block (0 when none is decoded), copied out
    /// of the scratch so the hot walk tests it without a pointer chase.
    count: usize,
    /// Global index of the resident block's first entry.
    first: u32,
    /// Index of the resident block; `usize::MAX` when none is decoded.
    block: usize,
    started: bool,
    /// True once every entry has been consumed or skipped.
    done: bool,
    /// Global entry index the position sub-decoder is staged for;
    /// `u64::MAX` when stale (tag-based invalidation keeps it off the
    /// entry walk).
    pos_valid_for: u64,
    pos_idx: usize,
    /// Read offset of the next undecoded position varint.
    pos_at: usize,
    /// End of the current entry's payload — the decode bound.
    pos_end: usize,
    /// Delta base: the last position decoded.
    pos_prev: Position,
    /// Leased from the thread's scratch pool; `ManuallyDrop` lets `Drop`
    /// hand the box back to the pool instead of freeing it.
    scratch: ManuallyDrop<Box<BlockScratch>>,
    counters: AccessCounters,
}

impl Drop for BlockCursor<'_> {
    fn drop(&mut self) {
        // SAFETY: `scratch` is taken exactly once — drop runs once, and
        // nothing reads the field afterwards.
        return_scratch(unsafe { ManuallyDrop::take(&mut self.scratch) });
    }
}

impl Clone for BlockCursor<'_> {
    fn clone(&self) -> Self {
        // The clone leases its own buffer (pool-first, like `cursor()`)
        // and copies the resident decode state into it, so both cursors
        // keep the no-repeat-decode guarantee from their shared position.
        let mut scratch = take_scratch();
        scratch.clone_from(&*self.scratch);
        BlockCursor {
            list: self.list,
            idx: self.idx,
            run_start: self.run_start,
            count: self.count,
            first: self.first,
            block: self.block,
            started: self.started,
            done: self.done,
            pos_valid_for: self.pos_valid_for,
            pos_idx: self.pos_idx,
            pos_at: self.pos_at,
            pos_end: self.pos_end,
            pos_prev: self.pos_prev,
            scratch: ManuallyDrop::new(scratch),
            counters: self.counters,
        }
    }
}

impl<'a> BlockCursor<'a> {
    /// Bytes of the reusable decoded-block buffer every open cursor holds
    /// (three `u32` columns of [`BLOCK_ENTRIES`] lanes plus bookkeeping) —
    /// the per-cursor cost [`crate::index::MemoryFootprint`] reports.
    pub const fn scratch_bytes() -> usize {
        std::mem::size_of::<BlockScratch>()
    }

    /// Global index of the next entry to consume: 0 on a fresh cursor,
    /// one past the current entry when positioned, `entries` when done.
    fn global_next(&self) -> u32 {
        if self.done {
            self.list.entries
        } else if self.idx < self.count {
            self.first + self.idx as u32 + 1
        } else {
            0
        }
    }

    /// Batch-decode `block`'s id column into the scratch buffer: unpack
    /// the bit-packed delta frame, run the prefix transform, and record
    /// where the block's other frames and its position region start. The
    /// tf and payload-offset columns are left stale — they unpack on first
    /// demand ([`Self::ensure_tfs`] / [`Self::ensure_lens`]).
    ///
    /// Trusted-bytes path: lists built in memory are well-formed by
    /// construction, so this decodes without validation (the persisted
    /// load path re-validates through [`BlockList::try_to_posting`]).
    #[cold]
    fn unpack_block(&mut self, block: usize) {
        let s = &mut *self.scratch;
        let meta = &self.list.blocks[block];
        let count = BLOCK_ENTRIES.min(self.list.entries as usize - meta.first_entry as usize);
        let data = &self.list.data;
        let mut at = meta.byte_start as usize;
        let base = u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]]);
        let (id_width, tf_width, len_width) = (data[at + 4], data[at + 5], data[at + 6]);
        at += BLOCK_PREFIX_BYTES;
        at += bitpack::unpack(&data[at..], id_width, count, &mut s.ids);
        // Prefix transform over all 128 lanes (fixed trip count; padding
        // lanes produce garbage ids that `count` guards from being read,
        // so the arithmetic wraps instead of checking). Running four
        // independent 32-lane chains and then propagating the chunk
        // offsets cuts the serial-dependency latency to roughly a quarter
        // of a straight 128-add chain.
        s.ids[0] = base;
        for c in 1..BLOCK_ENTRIES / 32 {
            s.ids[32 * c] = s.ids[32 * c].wrapping_add(1);
        }
        for c in 0..BLOCK_ENTRIES / 32 {
            let start = 32 * c;
            for i in start + 1..start + 32 {
                s.ids[i] = s.ids[i].wrapping_add(1).wrapping_add(s.ids[i - 1]);
            }
        }
        for c in 1..BLOCK_ENTRIES / 32 {
            let off = s.ids[32 * c - 1];
            for v in &mut s.ids[32 * c..32 * (c + 1)] {
                *v = v.wrapping_add(off);
            }
        }
        s.tf_at = at;
        s.len_at = at + bitpack::packed_bytes(tf_width, count);
        s.pos_base = s.len_at + bitpack::packed_bytes(len_width, count);
        s.tf_width = tf_width;
        s.len_width = len_width;
        s.tf_block = usize::MAX;
        s.len_block = usize::MAX;
        self.block = block;
        self.count = count;
        self.first = meta.first_entry;
    }

    /// Make `block` the resident block. The hit path is one comparison;
    /// the miss is kept out of line so the entry walk stays inlineable.
    #[inline(always)]
    fn ensure_decoded(&mut self, block: usize) {
        if self.block != block {
            self.unpack_block(block);
        }
    }

    /// Unpack the resident block's tf column on first demand.
    #[inline]
    fn ensure_tfs(&mut self) {
        if self.scratch.tf_block != self.block {
            let s = &mut *self.scratch;
            bitpack::unpack(
                &self.list.data[s.tf_at..],
                s.tf_width,
                self.count,
                &mut s.tfs,
            );
            for tf in s.tfs.iter_mut() {
                *tf = tf.wrapping_add(1); // stored as tf − 1; padding lanes unread
            }
            s.tf_block = self.block;
        }
    }

    /// Unpack the resident block's payload-length column on first demand
    /// and turn it into exclusive prefix ends.
    #[inline]
    fn ensure_lens(&mut self) {
        if self.scratch.len_block != self.block {
            let s = &mut *self.scratch;
            bitpack::unpack(
                &self.list.data[s.len_at..],
                s.len_width,
                self.count,
                &mut s.pos_ends,
            );
            let mut run = 0u32;
            for end in s.pos_ends.iter_mut() {
                run = run.wrapping_add(*end);
                *end = run;
            }
            s.len_block = self.block;
        }
    }

    /// Fold the current counted run (entries consumed since the last
    /// landing) into `counters.entries`. Called on every reposition —
    /// once per block on a sequential walk, never per entry. Idempotent:
    /// the run is emptied, so flushing twice (e.g. once before a seek
    /// swaps the resident block and again inside its landing) adds
    /// nothing the second time.
    fn flush_entry_run(&mut self) {
        if self.idx < self.count {
            self.counters.entries += (self.idx + 1 - self.run_start) as u64;
            self.run_start = self.idx + 1;
        }
    }

    /// Position the cursor on global entry `global` (callers guarantee it
    /// exists) and return its node id. The landing entry starts a new
    /// counted run.
    fn land(&mut self, global: u32) -> NodeId {
        self.flush_entry_run();
        self.ensure_decoded(global as usize / BLOCK_ENTRIES);
        let i = global as usize % BLOCK_ENTRIES;
        self.idx = i;
        self.run_start = i;
        self.started = true;
        NodeId(self.scratch.ids[i])
    }

    /// Transition to the exhausted state, folding the in-flight entry run
    /// but no skip accounting (callers charge whatever applies first).
    fn mark_done(&mut self) {
        self.flush_entry_run();
        self.done = true;
        self.started = true;
        self.idx = usize::MAX;
        self.count = 0;
    }

    /// Cold half of [`Self::next_entry`]: first call, block crossings, and
    /// end of list.
    #[cold]
    fn advance_cold(&mut self) -> Option<NodeId> {
        let global = self.global_next();
        if global >= self.list.entries {
            if !self.done {
                self.mark_done();
            }
            return None;
        }
        Some(self.land(global))
    }

    /// `nextEntry()`: consume the next entry and return its node id, or
    /// `None` at end of list. Inside a block this is a branch-predictable
    /// array walk — one bound test, one index store, one array read; the
    /// entry count accrues per *run* (see `run_start`), so counting adds
    /// no per-entry work at all. Block crossings take the cold path.
    #[inline]
    pub fn next_entry(&mut self) -> Option<NodeId> {
        let i = self.idx.wrapping_add(1);
        if i < self.count {
            self.idx = i;
            return Some(NodeId(self.scratch.ids[i]));
        }
        self.advance_cold()
    }

    /// Bench support: the [`Self::next_entry`] walk with ALL access
    /// counting removed, including the per-run folds on block
    /// transitions. `micro_cursors` compares the two to assert that
    /// counting costs under 5% of a scan. Leaves the run bookkeeping
    /// stale, so a cursor driven through here reports meaningless
    /// counters — never mix with counted use.
    #[doc(hidden)]
    #[inline]
    pub fn next_entry_uncounted(&mut self) -> Option<NodeId> {
        let i = self.idx.wrapping_add(1);
        if i < self.count {
            self.idx = i;
            return Some(NodeId(self.scratch.ids[i]));
        }
        // Cold path minus counting: land on the next block or exhaust.
        let global = self.global_next();
        if global >= self.list.entries {
            self.done = true;
            self.started = true;
            self.idx = usize::MAX;
            self.count = 0;
            return None;
        }
        self.ensure_decoded(global as usize / BLOCK_ENTRIES);
        let i = global as usize % BLOCK_ENTRIES;
        self.idx = i;
        self.run_start = i;
        self.started = true;
        Some(NodeId(self.scratch.ids[i]))
    }

    /// `seek(node)`: advance to the first entry with node id ≥ `target`,
    /// skipping whole blocks via the header array and binary-searching the
    /// decoded ids of the landing block. Stays put if the current entry
    /// already satisfies the bound. Returns the landing node id, or `None`
    /// when the list has no such entry.
    pub fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        if let Some(cur) = self.node() {
            if cur >= target {
                return Some(cur);
            }
        }
        let from = self.global_next();
        if from >= self.list.entries {
            if !self.done {
                self.mark_done();
            }
            return None;
        }
        // Fast path for the leapfrog-common short hop: the target is still
        // inside the already-decoded resident block — no header search.
        let cur_block = from as usize / BLOCK_ENTRIES;
        let target_block =
            if cur_block == self.block && self.list.blocks[cur_block].max_node >= target {
                cur_block
            } else {
                // First candidate block whose max node reaches the target, at
                // or after the block holding the next entry.
                let rel = self.list.blocks[cur_block..].partition_point(|b| b.max_node < target);
                let target_block = cur_block + rel;
                if target_block >= self.list.blocks.len() {
                    // No block can contain the target: exhaust, counting the
                    // rest of the list as skipped (never consumed).
                    self.counters.skipped += u64::from(self.list.entries - from);
                    self.counters.blocks_skipped += (self.list.blocks.len())
                        .saturating_sub((from as usize).div_ceil(BLOCK_ENTRIES))
                        as u64;
                    self.mark_done();
                    return None;
                }
                target_block
            };
        let meta = self.list.blocks[target_block];
        let mut from = from;
        if meta.first_entry > from {
            self.counters.skipped += u64::from(meta.first_entry - from);
            self.counters.blocks_skipped +=
                (target_block - (from as usize).div_ceil(BLOCK_ENTRIES)) as u64;
            from = meta.first_entry;
        }
        // Search the decoded ids (the block's max_node reaches the target,
        // so a landing entry exists): scan a handful of lanes linearly —
        // leapfrog hops are usually short — then binary-search the rest.
        // Fold the in-flight entry run first: decoding the landing block
        // replaces the resident block the run is counted against.
        self.flush_entry_run();
        self.ensure_decoded(target_block);
        let lo = (from - meta.first_entry) as usize;
        let lanes = &self.scratch.ids[lo..self.count];
        const LINEAR: usize = 8;
        let mut within = 0usize;
        while within < lanes.len().min(LINEAR) && lanes[within] < target.0 {
            within += 1;
        }
        if within == LINEAR {
            within += lanes[LINEAR..].partition_point(|&id| id < target.0);
        }
        self.counters.skipped += within as u64;
        Some(self.land(meta.first_entry + (lo + within) as u32))
    }

    /// The node id of the current entry, read from the decoded id column
    /// (the cursor is positioned exactly when `idx` is inside the resident
    /// block, so no separate field needs updating on the entry walk).
    #[inline]
    pub fn node(&self) -> Option<NodeId> {
        if self.idx < self.count {
            Some(NodeId(self.scratch.ids[self.idx]))
        } else {
            None
        }
    }

    /// Term frequency of the current entry, read from the unpacked tf
    /// column (decoded for the whole block on the first request).
    ///
    /// # Panics
    /// Panics if called before the first successful [`Self::next_entry`].
    #[inline]
    pub fn tf(&mut self) -> u32 {
        assert!(self.idx < self.count, "cursor not positioned on an entry");
        self.ensure_tfs();
        self.scratch.tfs[self.idx]
    }

    /// Index of the block the cursor is parked in: the current entry's
    /// block, or the next block to decode when the cursor has not started.
    /// `None` once the list is exhausted (or empty).
    fn current_block(&self) -> Option<usize> {
        if self.idx < self.count {
            Some(self.block)
        } else if !self.started && !self.list.blocks.is_empty() {
            Some(0)
        } else {
            None
        }
    }

    /// Largest term frequency in the current block — the current entry's
    /// block, or the first block when the cursor has not started; 0 when
    /// exhausted.
    pub fn block_max_tf(&self) -> u32 {
        self.current_block()
            .map_or(0, |b| self.list.blocks[b].max_tf)
    }

    /// Largest node id in the current block — the last node a scored
    /// evaluator gives up on when it prunes the block. `None` when
    /// exhausted.
    pub fn block_last_node(&self) -> Option<NodeId> {
        self.current_block().map(|b| self.list.blocks[b].max_node)
    }

    /// Largest term frequency of the block that would contain the first
    /// remaining entry with node id ≥ `target`, found by binary search over
    /// the skip headers — a pure bound probe that decodes nothing. `None`
    /// when no remaining entry can reach `target`.
    pub fn peek_max_tf_at(&self, target: NodeId) -> Option<u32> {
        if let Some(cur) = self.node() {
            if cur >= target {
                return self.current_block().map(|b| self.list.blocks[b].max_tf);
            }
        }
        let from = self.current_block()?;
        let rel = self.list.blocks[from..].partition_point(|b| b.max_node < target);
        self.list.blocks.get(from + rel).map(|b| b.max_tf)
    }

    /// Jump past the current block without consuming its remaining entries
    /// (they are counted as skipped; the block counts in
    /// [`AccessCounters::blocks_skipped`] only if at least one entry was
    /// actually bypassed) and land on the first entry of the next block,
    /// returning its node id — or `None` when the pruned block was the
    /// last one.
    pub fn skip_block(&mut self) -> Option<NodeId> {
        let block = self.current_block()?;
        let next = block + 1;
        let from = self.global_next();
        if next >= self.list.blocks.len() {
            let remaining = u64::from(self.list.entries - from);
            self.counters.skipped += remaining;
            self.counters.blocks_skipped += u64::from(remaining > 0);
            self.mark_done();
            return None;
        }
        let meta = self.list.blocks[next];
        let remaining = u64::from(meta.first_entry - from);
        self.counters.skipped += remaining;
        self.counters.blocks_skipped += u64::from(remaining > 0);
        Some(self.land(meta.first_entry))
    }

    /// Stage the current entry's payload for decoding and materialize its
    /// first position: resolve the byte range from the unpacked length
    /// column and reset the incremental sub-decoder. Tag-based: staging
    /// happens at most once per entry, however the accessors interleave;
    /// the hit path is a single comparison.
    #[inline(always)]
    fn ensure_positions(&mut self) {
        assert!(self.idx < self.count, "cursor not positioned on an entry");
        let global = u64::from(self.first) + self.idx as u64;
        if self.pos_valid_for != global {
            self.stage_positions(global);
        }
    }

    /// Cold half of [`Self::ensure_positions`]: resolve the payload range
    /// and decode the entry's first position (every accessor that stages an
    /// entry immediately needs at least one). Only the length column is
    /// consulted — the payload's byte range bounds the decode, so the tf
    /// column stays packed unless a scorer asks for it.
    fn stage_positions(&mut self, global: u64) {
        self.ensure_lens();
        let idx = self.idx;
        let s = &*self.scratch;
        self.pos_at = s.pos_base
            + if idx == 0 {
                0
            } else {
                s.pos_ends[idx - 1] as usize
            };
        self.pos_end = s.pos_base + s.pos_ends[idx] as usize;
        self.scratch.decoded.clear();
        self.pos_idx = 0;
        self.pos_valid_for = global;
        self.decode_next_position();
    }

    /// Materialize one more position of the current entry, if any remain.
    /// Each position is decoded at most once and counted in
    /// [`AccessCounters::positions_decoded`] when it is — an entry whose
    /// predicate accepts or rejects on its first position pays exactly one
    /// position decode, not `tf`.
    fn decode_next_position(&mut self) -> Option<Position> {
        if self.pos_at >= self.pos_end {
            return None;
        }
        let data: &[u8] = &self.list.data;
        let mut at = self.pos_at;
        let a = varint::get_u32(data, &mut at).expect("well-formed positions");
        let b = varint::get_u32(data, &mut at).expect("well-formed positions");
        let c = varint::get_u32(data, &mut at).expect("well-formed positions");
        let p = if self.scratch.decoded.is_empty() {
            Position {
                offset: a,
                sentence: b,
                paragraph: c,
            }
        } else {
            Position {
                offset: self.pos_prev.offset + a + 1,
                sentence: self.pos_prev.sentence + b,
                paragraph: self.pos_prev.paragraph + c,
            }
        };
        debug_assert!(at <= self.pos_end, "positions overran their payload");
        self.pos_at = at;
        self.pos_prev = p;
        self.scratch.decoded.push(p);
        self.counters.positions_decoded += 1;
        Some(p)
    }

    /// `getPositions()`: decode (once) and return the current entry's full
    /// position list.
    ///
    /// Decoding is *lazy* at three levels: block unpacking materializes
    /// only the payload byte ranges (the length column, itself unpacked on
    /// the block's first position request); the varint payload is staged on
    /// first demand per entry; and the incremental accessors below decode
    /// single positions — only this whole-slice accessor pays for the full
    /// payload. Work is recorded per materialized position in
    /// [`AccessCounters::positions_decoded`].
    ///
    /// # Panics
    /// Panics if called before the first successful [`Self::next_entry`].
    pub fn positions(&mut self) -> &[Position] {
        self.ensure_positions();
        while self.decode_next_position().is_some() {}
        &self.scratch.decoded
    }

    /// The current position within the current entry, if any remain —
    /// materializing only as much of the payload as the index requires.
    pub fn position(&mut self) -> Option<Position> {
        self.ensure_positions();
        while self.scratch.decoded.len() <= self.pos_idx {
            self.decode_next_position()?;
        }
        Some(self.scratch.decoded[self.pos_idx])
    }

    /// Advance the position sub-cursor to the first position with
    /// `offset >= min_offset`, counting consumed positions — and decoding
    /// only as far as the search actually looks.
    pub fn advance_position(&mut self, min_offset: u32) -> Option<Position> {
        self.ensure_positions();
        let start = self.pos_idx;
        let mut i = start;
        let hit = loop {
            let p = if i < self.scratch.decoded.len() {
                self.scratch.decoded[i]
            } else if let Some(p) = self.decode_next_position() {
                p
            } else {
                break None;
            };
            if p.offset >= min_offset {
                break Some(p);
            }
            i += 1;
        };
        self.pos_idx = i;
        self.counters.positions += (i - start) as u64;
        hit
    }

    /// Reset the position sub-cursor to the start of the current entry.
    pub fn rewind_positions(&mut self) {
        self.pos_idx = 0;
    }

    /// Access counters accumulated by this cursor, including the entry
    /// run currently in flight.
    pub fn counters(&self) -> AccessCounters {
        let mut c = self.counters;
        if self.idx < self.count {
            c.entries += (self.idx + 1 - self.run_start) as u64;
        }
        c
    }

    /// True if all entries have been consumed.
    pub fn exhausted(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(o: u32) -> Position {
        Position::flat(o)
    }

    fn sample(n: u32, stride: u32) -> PostingList {
        PostingList::from_entries(
            (0..n)
                .map(|i| {
                    (
                        NodeId(i * stride),
                        vec![
                            Position::new(i, i / 7, i / 31),
                            Position::new(i + 5, i / 7 + 1, i / 31),
                        ],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_entries_and_positions() {
        for n in [0u32, 1, 2, 127, 128, 129, 1000] {
            let list = sample(n, 3);
            let blocks = BlockList::from_posting(&list);
            assert_eq!(blocks.num_entries(), list.num_entries());
            assert_eq!(blocks.num_positions(), list.num_positions());
            assert_eq!(blocks.to_posting(), list, "n = {n}");
        }
    }

    #[test]
    fn untrusted_roundtrip_agrees_with_trusted() {
        for n in [0u32, 1, 127, 128, 129, 513] {
            let list = sample(n, 5);
            let blocks = BlockList::from_posting(&list);
            assert_eq!(blocks.try_to_posting().expect("valid"), list, "n = {n}");
        }
    }

    #[test]
    fn block_structure_has_expected_shape() {
        let blocks = BlockList::from_posting(&sample(300, 2));
        assert_eq!(blocks.num_blocks(), 3); // 128 + 128 + 44
        assert!(blocks.compressed_bytes() < 300 * 12); // beats raw u32 triples
        assert_eq!(
            blocks.compressed_bytes(),
            blocks.data_bytes() + blocks.header_bytes()
        );
        assert_eq!(blocks.header_bytes(), 3 * std::mem::size_of::<BlockMeta>());
    }

    #[test]
    fn constant_runs_pack_at_width_zero() {
        // Consecutive ids (delta-1 = 0) and uniform tf = 1: both columns
        // collapse to width 0, so a block costs its prefix, the length
        // frame, and the payloads — nothing for ids or tfs.
        let list = PostingList::from_entries(
            (0..BLOCK_ENTRIES as u32)
                .map(|i| (NodeId(i), vec![p(3)]))
                .collect(),
        );
        let blocks = BlockList::from_posting(&list);
        let (metas, data, _, _) = blocks.parts();
        assert_eq!(metas.len(), 1);
        assert_eq!(data[4], 0, "id width");
        assert_eq!(data[5], 0, "tf width");
        // Uniform 1-byte payloads also pack at width 1 (all lengths = 3).
        let len_width = data[6];
        assert!(len_width <= 2, "len width {len_width}");
    }

    #[test]
    fn cursor_walk_matches_posting_list() {
        let list = sample(200, 5);
        let blocks = BlockList::from_posting(&list);
        let mut cur = blocks.cursor();
        for i in 0..list.num_entries() {
            assert_eq!(cur.next_entry(), Some(list.node_of(i)));
            assert_eq!(cur.positions(), list.positions_of(i));
        }
        assert_eq!(cur.next_entry(), None);
        assert!(cur.exhausted());
        assert_eq!(cur.counters().entries, 200);
        assert_eq!(cur.counters().skipped, 0);
    }

    #[test]
    fn seek_skips_blocks_without_consuming() {
        let blocks = BlockList::from_posting(&sample(1000, 2));
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(1501)), Some(NodeId(1502)));
        let c = cur.counters();
        // Binary search inside the landing block: only the landing entry is
        // consumed, everything before it is skipped.
        assert_eq!(c.entries, 1, "consumed {}", c.entries);
        assert_eq!(c.skipped, 751, "skipped {}", c.skipped);
        assert_eq!(c.entries + c.skipped, 752); // landed on entry index 751
        assert_eq!(c.blocks_skipped, 5); // blocks 0..5 never touched
    }

    #[test]
    fn seek_is_stable_and_monotone() {
        let blocks = BlockList::from_posting(&sample(500, 3));
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(0)), Some(NodeId(0)));
        assert_eq!(cur.seek(NodeId(0)), Some(NodeId(0))); // stays put
        assert_eq!(cur.seek(NodeId(301)), Some(NodeId(303)));
        assert_eq!(cur.seek(NodeId(302)), Some(NodeId(303))); // current suffices
        assert_eq!(cur.seek(NodeId(10_000)), None);
        assert!(cur.exhausted());
        assert_eq!(cur.seek(NodeId(0)), None); // stays exhausted
    }

    #[test]
    fn seek_within_current_block_counts_bypassed_entries_as_skipped() {
        let blocks = BlockList::from_posting(&sample(100, 2)); // one block
        let mut cur = blocks.cursor();
        cur.next_entry(); // node 0
        assert_eq!(cur.seek(NodeId(100)), Some(NodeId(100))); // entry 50
        let c = cur.counters();
        assert_eq!(c.entries, 2); // first + landing
        assert_eq!(c.skipped, 49); // entries 1..=49 binary-searched past
        assert_eq!(c.blocks_skipped, 0);
    }

    #[test]
    fn seek_positions_are_fresh_at_landing_entry() {
        let list = PostingList::from_entries(vec![
            (NodeId(1), vec![p(3), p(12)]),
            (NodeId(9), vec![p(51), p(56)]),
        ]);
        let blocks = BlockList::from_posting(&list);
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(5)), Some(NodeId(9)));
        assert_eq!(cur.position(), Some(p(51)));
        assert_eq!(cur.advance_position(52), Some(p(56)));
    }

    #[test]
    fn position_payloads_decode_lazily_and_are_counted() {
        let list = sample(300, 3); // 2 positions per entry
        let blocks = BlockList::from_posting(&list);
        let mut cur = blocks.cursor();
        // Walking entries alone decodes no position payloads.
        for _ in 0..10 {
            cur.next_entry();
        }
        assert_eq!(cur.counters().positions_decoded, 0);
        let _ = cur.positions();
        let _ = cur.positions(); // cached, not re-decoded
        assert_eq!(cur.counters().positions_decoded, 2);
        // Seeking over entries decodes none of their payloads either.
        cur.seek(NodeId(600));
        assert_eq!(cur.counters().positions_decoded, 2);
    }

    #[test]
    fn empty_list_cursor_behaves() {
        let blocks = BlockList::from_posting(&PostingList::empty());
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(0)), None);
        let mut cur = blocks.cursor();
        assert_eq!(cur.next_entry(), None);
        assert!(cur.exhausted());
    }

    #[test]
    fn wide_ids_and_tfs_roundtrip() {
        // Sparse ids up to u32::MAX and a tf spike force wide frames.
        let list = PostingList::from_entries(vec![
            (NodeId(0), vec![p(1)]),
            (NodeId(1 << 20), vec![p(2), p(9), p(100)]),
            (NodeId(u32::MAX - 1), (0..40).map(p).collect()),
            (NodeId(u32::MAX), vec![p(0)]),
        ]);
        let blocks = BlockList::from_posting(&list);
        assert_eq!(blocks.to_posting(), list);
        assert_eq!(blocks.try_to_posting().expect("valid"), list);
        assert_eq!(blocks.max_tf(), 40);
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(u32::MAX - 5)), Some(NodeId(u32::MAX - 1)));
        assert_eq!(cur.tf(), 40);
    }

    #[test]
    fn compression_beats_flat_encoding_on_dense_lists() {
        // Dense ids and short gaps: the regime block compression targets.
        let list = PostingList::from_entries(
            (0..10_000)
                .map(|i| (NodeId(i), vec![p(i % 97), p(i % 97 + 3)]))
                .collect(),
        );
        let blocks = BlockList::from_posting(&list);
        let flat_bytes = 10_000 * (4 + 4 + 2 * 12); // node + offset count + positions
        assert!(
            blocks.compressed_bytes() * 3 < flat_bytes,
            "compressed {} vs flat {flat_bytes}",
            blocks.compressed_bytes()
        );
    }

    #[test]
    fn corrupt_padding_or_headers_are_errors_not_panics() {
        let list = sample(200, 3);
        let blocks = BlockList::from_posting(&list);
        let (metas, data, entries, positions) = blocks.parts();
        // Flip bytes one at a time; decoding may fail or (for position
        // payload bytes) succeed with different positions, but never panic.
        for i in 0..data.len() {
            let mut raw = data.to_vec();
            raw[i] ^= 0x40;
            let candidate = BlockList::from_parts(metas.to_vec(), raw, entries, positions);
            let _ = candidate.try_to_posting();
        }
        // A lying header is always an error.
        let mut bad = metas.to_vec();
        bad[1].byte_start += 1;
        let candidate = BlockList::from_parts(bad, data.to_vec(), entries, positions);
        assert!(candidate.try_to_posting().is_err());
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        // Each test runs on its own thread, so the thread-local pool
        // counters start at zero and deltas are exact.
        let list = sample(1000, 2);
        let blocks = BlockList::from_posting(&list);
        let base = scratch_pool_stats();
        assert_eq!((base.reused, base.pooled), (0, 0));
        {
            let mut cur = blocks.cursor();
            while cur.next_entry().is_some() {}
        }
        let after_first = scratch_pool_stats();
        assert_eq!(after_first.allocated, 1, "cold pool allocates once");
        assert_eq!(after_first.pooled, 1, "dropped cursor parks its buffer");
        {
            let mut cur = blocks.cursor();
            while cur.next_entry().is_some() {}
        }
        let after_second = scratch_pool_stats();
        assert_eq!(after_second.allocated, 1, "warm pool never re-allocates");
        assert_eq!(after_second.reused, 1);
        assert_eq!(after_second.pooled, 1);
    }

    #[test]
    fn recycled_scratch_decodes_identically() {
        // Drive a positional walk, return the buffer, and re-walk a
        // *different* list through the recycled buffer: results must match
        // fresh decodes exactly (stale tags may not leak across leases).
        let a = sample(300, 2);
        let b = sample(170, 5);
        let blocks_a = BlockList::from_posting(&a);
        let blocks_b = BlockList::from_posting(&b);
        let walk = |list: &BlockList| {
            let mut out = Vec::new();
            let mut cur = list.cursor();
            while let Some(node) = cur.next_entry() {
                out.push((node, cur.tf(), cur.positions().to_vec()));
            }
            out
        };
        let fresh_a = walk(&blocks_a);
        let fresh_b = walk(&blocks_b);
        for _ in 0..4 {
            assert_eq!(walk(&blocks_b), fresh_b);
            assert_eq!(walk(&blocks_a), fresh_a);
        }
        let stats = scratch_pool_stats();
        assert_eq!(stats.allocated, 1);
        assert_eq!(stats.reused, 9);
    }

    #[test]
    fn cloned_cursor_leases_its_own_scratch() {
        let list = sample(400, 3);
        let blocks = BlockList::from_posting(&list);
        let mut cur = blocks.cursor();
        for _ in 0..200 {
            cur.next_entry();
        }
        let tf_here = cur.tf();
        let mut twin = cur.clone();
        // The twin continues independently from the shared position…
        assert_eq!(twin.tf(), tf_here);
        assert_eq!(twin.next_entry(), cur.next_entry());
        // …and advancing one does not disturb the other.
        twin.next_entry();
        assert_eq!(cur.node().map(|n| n.0 + 3), twin.node().map(|n| n.0));
        drop(twin);
        drop(cur);
        assert_eq!(scratch_pool_stats().pooled, 2);
    }
}
