//! Block-compressed posting lists with an implicit skip list.
//!
//! The physical layout of an inverted list ([`BlockList`]) groups entries
//! into blocks of [`BLOCK_ENTRIES`] entries. Within a block, node ids and
//! position offsets are delta-encoded as LEB128 varints ([`crate::varint`]);
//! each block's header ([`BlockMeta`]) records the largest node id it
//! contains plus its byte offset, so the header array doubles as a one-level
//! skip list: a cursor seeking a node id binary-searches the headers, jumps
//! straight to the first candidate block, and only decodes entries inside
//! it.
//!
//! ## Entry encoding
//!
//! Per entry, in order:
//!
//! 1. node id — absolute varint for the first entry of a block, else
//!    `delta − 1` from the previous entry's node id (ids are strictly
//!    increasing);
//! 2. position count `n` (≥ 1);
//! 3. byte length of the encoded positions (lets a cursor step over an
//!    entry without decoding its positions);
//! 4. `n` positions: the first as absolute `(offset, sentence, paragraph)`
//!    varints, the rest as `(offset delta − 1, sentence delta, paragraph
//!    delta)` — offsets strictly increase, ordinals never decrease.

use crate::counters::AccessCounters;
use crate::postings::PostingList;
use crate::varint;
use ftsl_model::{NodeId, Position};
use serde::{Deserialize, Serialize};

/// Entries per compressed block. 128 keeps the skip granularity fine while
/// letting the per-block header amortize to under 0.1 byte/entry.
pub const BLOCK_ENTRIES: usize = 128;

/// Header of one compressed block — one implicit skip-list node.
///
/// Besides the skip information (`max_node`, `byte_start`, `first_entry`),
/// the header carries per-block *impact metadata*: `max_tf`, the largest
/// term frequency (position count) of any entry in the block. A scored
/// cursor turns `max_tf` into a score upper bound for the whole block, so
/// top-k evaluation can skip blocks whose bound falls below the current
/// threshold without decoding a single entry (block-max pruning).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Largest node id stored in the block (its last entry's id).
    pub max_node: NodeId,
    /// Byte offset of the block's first entry in the data stream.
    pub byte_start: u32,
    /// Global index of the block's first entry.
    pub first_entry: u32,
    /// Largest position count (term frequency) of any entry in the block.
    pub max_tf: u32,
}

/// A block-compressed inverted list: the on-disk and cache-resident layout.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockList {
    blocks: Vec<BlockMeta>,
    data: Vec<u8>,
    entries: u32,
    positions: u64,
}

impl BlockList {
    /// Compress a decoded [`PostingList`].
    pub fn from_posting(list: &PostingList) -> Self {
        let mut out = BlockList::default();
        let mut prev_node = 0u32;
        let mut scratch: Vec<u8> = Vec::new();
        for (i, (node, positions)) in list.iter().enumerate() {
            if i % BLOCK_ENTRIES == 0 {
                out.blocks.push(BlockMeta {
                    max_node: node, // fixed up as entries are appended
                    byte_start: out.data.len() as u32,
                    first_entry: i as u32,
                    max_tf: 0, // fixed up as entries are appended
                });
                varint::put_u32(&mut out.data, node.0);
            } else {
                varint::put_u32(&mut out.data, node.0 - prev_node - 1);
            }
            prev_node = node.0;
            let meta = out.blocks.last_mut().expect("block header exists");
            meta.max_node = node;
            meta.max_tf = meta.max_tf.max(positions.len() as u32);

            varint::put_u32(&mut out.data, positions.len() as u32);
            scratch.clear();
            let mut prev = Position::flat(0);
            for (j, p) in positions.iter().enumerate() {
                if j == 0 {
                    varint::put_u32(&mut scratch, p.offset);
                    varint::put_u32(&mut scratch, p.sentence);
                    varint::put_u32(&mut scratch, p.paragraph);
                } else {
                    varint::put_u32(&mut scratch, p.offset - prev.offset - 1);
                    varint::put_u32(&mut scratch, p.sentence - prev.sentence);
                    varint::put_u32(&mut scratch, p.paragraph - prev.paragraph);
                }
                prev = *p;
            }
            varint::put_u32(&mut out.data, scratch.len() as u32);
            out.data.extend_from_slice(&scratch);
            out.entries += 1;
            out.positions += positions.len() as u64;
        }
        out
    }

    /// Decode back into the flat columnar layout.
    pub fn to_posting(&self) -> PostingList {
        let mut list = PostingList::empty();
        let mut cursor = self.cursor();
        let mut positions: Vec<Position> = Vec::new();
        while let Some(node) = cursor.next_entry() {
            positions.clear();
            positions.extend_from_slice(cursor.positions());
            list.push_entry(node, &positions);
        }
        list
    }

    /// Like [`Self::to_posting`], but over *untrusted* bytes (the persisted
    /// load path): every varint read, count, and ordering invariant is
    /// checked, and any violation returns `Err` with a description instead
    /// of panicking the way the in-memory cursor's `expect`s would.
    pub fn try_to_posting(&self) -> Result<PostingList, &'static str> {
        let mut list = PostingList::empty();
        let mut at = 0usize;
        let mut prev_node = 0u32;
        let mut total_positions = 0u64;
        let mut block_tf = 0u32;
        let mut positions: Vec<Position> = Vec::new();
        for i in 0..self.entries as usize {
            let block = i / BLOCK_ENTRIES;
            if i % BLOCK_ENTRIES == 0 {
                if i > 0 && block_tf != self.blocks[block - 1].max_tf {
                    return Err("block max_tf disagrees with entries");
                }
                block_tf = 0;
                let meta = self.blocks.get(block).ok_or("missing block header")?;
                if meta.byte_start as usize != at || meta.first_entry as usize != i {
                    return Err("block header disagrees with entry stream");
                }
            }
            let raw = varint::get_u32(&self.data, &mut at).ok_or("truncated node id")?;
            let node = if i % BLOCK_ENTRIES == 0 {
                raw
            } else {
                prev_node
                    .checked_add(raw)
                    .and_then(|n| n.checked_add(1))
                    .ok_or("node overflow")?
            };
            if i > 0 && node <= prev_node {
                return Err("node ids not strictly increasing");
            }
            prev_node = node;
            if NodeId(node) > self.blocks[block].max_node {
                return Err("node id exceeds block max");
            }
            let npos = varint::get_u32(&self.data, &mut at).ok_or("truncated position count")?;
            if npos == 0 {
                return Err("empty entry");
            }
            if npos > self.blocks[block].max_tf {
                return Err("entry term frequency exceeds block max_tf");
            }
            block_tf = block_tf.max(npos);
            let nbytes = varint::get_u32(&self.data, &mut at).ok_or("truncated position length")?;
            let end = at
                .checked_add(nbytes as usize)
                .ok_or("position length overflow")?;
            if end > self.data.len() {
                return Err("position bytes out of range");
            }
            positions.clear();
            let mut prev = Position::flat(0);
            for j in 0..npos {
                let (offset, sentence, paragraph) = if j == 0 {
                    (
                        varint::get_u32(&self.data, &mut at).ok_or("truncated offset")?,
                        varint::get_u32(&self.data, &mut at).ok_or("truncated sentence")?,
                        varint::get_u32(&self.data, &mut at).ok_or("truncated paragraph")?,
                    )
                } else {
                    let doff = varint::get_u32(&self.data, &mut at).ok_or("truncated offset")?;
                    let dsent = varint::get_u32(&self.data, &mut at).ok_or("truncated sentence")?;
                    let dpara =
                        varint::get_u32(&self.data, &mut at).ok_or("truncated paragraph")?;
                    (
                        prev.offset
                            .checked_add(doff)
                            .and_then(|o| o.checked_add(1))
                            .ok_or("offset overflow")?,
                        prev.sentence
                            .checked_add(dsent)
                            .ok_or("sentence overflow")?,
                        prev.paragraph
                            .checked_add(dpara)
                            .ok_or("paragraph overflow")?,
                    )
                };
                if at > end {
                    return Err("positions overrun their declared length");
                }
                prev = Position {
                    offset,
                    sentence,
                    paragraph,
                };
                positions.push(prev);
            }
            if at != end {
                return Err("positions shorter than declared length");
            }
            total_positions += npos as u64;
            list.push_entry(NodeId(node), &positions);
        }
        if at != self.data.len() {
            return Err("trailing bytes after last entry");
        }
        if let Some(last) = self.blocks.last() {
            if block_tf != last.max_tf {
                return Err("block max_tf disagrees with entries");
            }
        }
        if total_positions != self.positions {
            return Err("position count disagrees with payload");
        }
        Ok(list)
    }

    /// Number of entries (`df(t)`).
    pub fn num_entries(&self) -> usize {
        self.entries as usize
    }

    /// Total positions across all entries.
    pub fn num_positions(&self) -> usize {
        self.positions as usize
    }

    /// True iff the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of compressed blocks (skip-list length).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Largest term frequency (positions per entry) across the whole list —
    /// the list-level impact bound, folded from the per-block headers.
    pub fn max_tf(&self) -> u32 {
        self.blocks.iter().map(|b| b.max_tf).max().unwrap_or(0)
    }

    /// Compressed payload size in bytes (entry stream + skip headers).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len() + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Open a seeking cursor over the compressed stream.
    pub fn cursor(&self) -> BlockCursor<'_> {
        BlockCursor {
            list: self,
            next_entry: 0,
            in_block: 0,
            byte: 0,
            prev_node: 0,
            node: None,
            started: false,
            pos_count: 0,
            pos_bytes: 0..0,
            decoded: Vec::new(),
            decoded_valid: false,
            pos_idx: 0,
            counters: AccessCounters::new(),
        }
    }

    /// Skip headers (exposed for persistence and diagnostics).
    pub(crate) fn parts(&self) -> (&[BlockMeta], &[u8], u32, u64) {
        (&self.blocks, &self.data, self.entries, self.positions)
    }

    /// Reassemble from persisted parts, validating counts.
    pub(crate) fn from_parts(
        blocks: Vec<BlockMeta>,
        data: Vec<u8>,
        entries: u32,
        positions: u64,
    ) -> Self {
        BlockList {
            blocks,
            data,
            entries,
            positions,
        }
    }
}

/// A forward-only, skip-aware cursor over a [`BlockList`].
///
/// Implements the paper's sequential contract (`next_entry` /
/// `positions`) plus the [`BlockCursor::seek`] extension: jump to the first
/// entry with node id ≥ a target, skipping whole blocks via the header
/// array. Skipped entries are counted separately from decoded ones in
/// [`AccessCounters`], so evaluation strategies can be compared on exact
/// decode work.
///
/// ```
/// use ftsl_index::block::BlockList;
/// use ftsl_index::PostingList;
/// use ftsl_model::{NodeId, Position};
///
/// // 1000 entries at even node ids 0, 2, 4, ...
/// let list = PostingList::from_entries(
///     (0..1000).map(|i| (NodeId(2 * i), vec![Position::flat(i)])).collect(),
/// );
/// let blocks = BlockList::from_posting(&list);
/// let mut cur = blocks.cursor();
///
/// // Seek lands on the first entry with node id >= 1501.
/// assert_eq!(cur.seek(NodeId(1501)), Some(NodeId(1502)));
/// // Only one block of entries was decoded to get there; the preceding
/// // blocks were skipped through the header array.
/// assert!(cur.counters().entries < 2 * ftsl_index::block::BLOCK_ENTRIES as u64);
/// assert!(cur.counters().skipped >= 600);
/// ```
#[derive(Clone, Debug)]
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    /// Global index of the *next* entry to decode.
    next_entry: u32,
    /// Entries already decoded in the current block.
    in_block: usize,
    /// Read offset into `list.data` (start of the next entry).
    byte: usize,
    prev_node: u32,
    node: Option<NodeId>,
    started: bool,
    pos_count: u32,
    /// Byte range of the current entry's encoded positions.
    pos_bytes: std::ops::Range<usize>,
    decoded: Vec<Position>,
    decoded_valid: bool,
    pos_idx: usize,
    counters: AccessCounters,
}

impl<'a> BlockCursor<'a> {
    /// `nextEntry()`: decode the next entry header and return its node id,
    /// or `None` at end of list.
    pub fn next_entry(&mut self) -> Option<NodeId> {
        if self.next_entry >= self.list.entries {
            self.node = None;
            self.started = true;
            return None;
        }
        if self.in_block == BLOCK_ENTRIES {
            // Crossing into the next block: node ids restart absolute.
            self.in_block = 0;
        }
        let data = &self.list.data;
        let raw = varint::get_u32(data, &mut self.byte).expect("well-formed block stream");
        let node = if self.in_block == 0 {
            raw
        } else {
            self.prev_node + raw + 1
        };
        let npos = varint::get_u32(data, &mut self.byte).expect("well-formed block stream");
        let nbytes = varint::get_u32(data, &mut self.byte).expect("well-formed block stream");
        self.pos_bytes = self.byte..self.byte + nbytes as usize;
        self.byte += nbytes as usize;
        self.prev_node = node;
        self.node = Some(NodeId(node));
        self.started = true;
        self.pos_count = npos;
        self.decoded_valid = false;
        self.pos_idx = 0;
        self.in_block += 1;
        self.next_entry += 1;
        self.counters.entries += 1;
        Some(NodeId(node))
    }

    /// `seek(node)`: advance to the first entry with node id ≥ `target`,
    /// skipping whole blocks via the header array. Stays put if the current
    /// entry already satisfies the bound. Returns the landing node id, or
    /// `None` when the list has no such entry.
    pub fn seek(&mut self, target: NodeId) -> Option<NodeId> {
        if let Some(cur) = self.node {
            if cur >= target {
                return Some(cur);
            }
        }
        // First candidate block whose max node reaches the target, at or
        // after the block the cursor is currently parked in.
        let cur_block = self.next_entry as usize / BLOCK_ENTRIES;
        let rel = self.list.blocks[cur_block.min(self.list.blocks.len().saturating_sub(1))..]
            .partition_point(|b| b.max_node < target);
        let target_block = cur_block + rel;
        if target_block >= self.list.blocks.len() {
            // No block can contain the target: exhaust, counting the rest
            // of the list as skipped (never decoded).
            self.counters.skipped += (self.list.entries - self.next_entry) as u64;
            self.counters.blocks_skipped += (self.list.blocks.len())
                .saturating_sub((self.next_entry as usize).div_ceil(BLOCK_ENTRIES))
                as u64;
            self.next_entry = self.list.entries;
            self.node = None;
            self.started = true;
            return None;
        }
        let meta = self.list.blocks[target_block];
        if meta.first_entry > self.next_entry {
            self.counters.skipped += (meta.first_entry - self.next_entry) as u64;
            self.counters.blocks_skipped +=
                (target_block - (self.next_entry as usize).div_ceil(BLOCK_ENTRIES)) as u64;
            self.next_entry = meta.first_entry;
            self.byte = meta.byte_start as usize;
            self.in_block = 0;
        }
        // Scan within the block (≤ BLOCK_ENTRIES decodes).
        while let Some(node) = self.next_entry() {
            if node >= target {
                return Some(node);
            }
        }
        None
    }

    /// The node id of the current entry.
    pub fn node(&self) -> Option<NodeId> {
        self.node
    }

    /// Term frequency of the current entry: its position count, already
    /// decoded by [`Self::next_entry`] — reading it costs nothing.
    ///
    /// # Panics
    /// Panics if called before the first successful [`Self::next_entry`].
    pub fn tf(&self) -> u32 {
        assert!(self.node.is_some(), "cursor not positioned on an entry");
        self.pos_count
    }

    /// Index of the block the cursor is parked in: the current entry's
    /// block, or the next block to decode when the cursor has not started.
    /// `None` once the list is exhausted (or empty).
    fn current_block(&self) -> Option<usize> {
        if self.node.is_some() {
            Some((self.next_entry as usize - 1) / BLOCK_ENTRIES)
        } else if !self.started && !self.list.blocks.is_empty() {
            Some(0)
        } else {
            None
        }
    }

    /// Largest term frequency in the current block — the current entry's
    /// block, or the first block when the cursor has not started; 0 when
    /// exhausted.
    pub fn block_max_tf(&self) -> u32 {
        self.current_block()
            .map_or(0, |b| self.list.blocks[b].max_tf)
    }

    /// Largest node id in the current block — the last node a scored
    /// evaluator gives up on when it prunes the block. `None` when
    /// exhausted.
    pub fn block_last_node(&self) -> Option<NodeId> {
        self.current_block().map(|b| self.list.blocks[b].max_node)
    }

    /// Largest term frequency of the block that would contain the first
    /// remaining entry with node id ≥ `target`, found by binary search over
    /// the skip headers — a pure bound probe that decodes nothing. `None`
    /// when no remaining entry can reach `target`.
    pub fn peek_max_tf_at(&self, target: NodeId) -> Option<u32> {
        if let Some(cur) = self.node {
            if cur >= target {
                return self.current_block().map(|b| self.list.blocks[b].max_tf);
            }
        }
        let from = self.current_block()?;
        let rel = self.list.blocks[from..].partition_point(|b| b.max_node < target);
        self.list.blocks.get(from + rel).map(|b| b.max_tf)
    }

    /// Jump past the current block without decoding its remaining entries
    /// (they are counted as skipped; the block counts in
    /// [`AccessCounters::blocks_skipped`] only if at least one entry was
    /// actually bypassed) and land on the first entry of the next block,
    /// returning its node id — or `None` when the pruned block was the
    /// last one.
    pub fn skip_block(&mut self) -> Option<NodeId> {
        let block = self.current_block()?;
        let next = block + 1;
        if next >= self.list.blocks.len() {
            let remaining = (self.list.entries - self.next_entry) as u64;
            self.counters.skipped += remaining;
            self.counters.blocks_skipped += u64::from(remaining > 0);
            self.next_entry = self.list.entries;
            self.node = None;
            self.started = true;
            return None;
        }
        let meta = self.list.blocks[next];
        let remaining = (meta.first_entry - self.next_entry) as u64;
        self.counters.skipped += remaining;
        self.counters.blocks_skipped += u64::from(remaining > 0);
        self.next_entry = meta.first_entry;
        self.byte = meta.byte_start as usize;
        self.in_block = 0;
        self.next_entry()
    }

    /// `getPositions()`: decode (once) and return the current entry's
    /// positions.
    ///
    /// Decoding is *lazy*: [`Self::next_entry`] only parses the entry header
    /// (node id, position count, payload byte length) and steps over the
    /// position varints. The payload is decompressed here, on first demand,
    /// and the work is recorded in [`AccessCounters::positions_decoded`] —
    /// entries whose positions are never inspected cost no position decodes.
    ///
    /// # Panics
    /// Panics if called before the first successful [`Self::next_entry`].
    pub fn positions(&mut self) -> &[Position] {
        assert!(self.node.is_some(), "cursor not positioned on an entry");
        if !self.decoded_valid {
            self.counters.positions_decoded += u64::from(self.pos_count);
            self.decoded.clear();
            let data = &self.list.data;
            let mut at = self.pos_bytes.start;
            let mut prev = Position::flat(0);
            for j in 0..self.pos_count {
                let p = if j == 0 {
                    let offset = varint::get_u32(data, &mut at).expect("well-formed positions");
                    let sentence = varint::get_u32(data, &mut at).expect("well-formed positions");
                    let paragraph = varint::get_u32(data, &mut at).expect("well-formed positions");
                    Position {
                        offset,
                        sentence,
                        paragraph,
                    }
                } else {
                    let doff = varint::get_u32(data, &mut at).expect("well-formed positions");
                    let dsent = varint::get_u32(data, &mut at).expect("well-formed positions");
                    let dpara = varint::get_u32(data, &mut at).expect("well-formed positions");
                    Position {
                        offset: prev.offset + doff + 1,
                        sentence: prev.sentence + dsent,
                        paragraph: prev.paragraph + dpara,
                    }
                };
                self.decoded.push(p);
                prev = p;
            }
            debug_assert_eq!(at, self.pos_bytes.end);
            self.decoded_valid = true;
        }
        &self.decoded
    }

    /// The current position within the current entry, if any remain.
    pub fn position(&mut self) -> Option<Position> {
        let idx = self.pos_idx;
        self.positions().get(idx).copied()
    }

    /// Advance the position sub-cursor to the first position with
    /// `offset >= min_offset`, counting consumed positions.
    pub fn advance_position(&mut self, min_offset: u32) -> Option<Position> {
        let idx = self.pos_idx;
        let ps = self.positions();
        let mut i = idx;
        while let Some(p) = ps.get(i) {
            if p.offset >= min_offset {
                let hit = *p;
                let consumed = (i - idx) as u64;
                self.pos_idx = i;
                self.counters.positions += consumed;
                return Some(hit);
            }
            i += 1;
        }
        let consumed = (i - idx) as u64;
        self.pos_idx = i;
        self.counters.positions += consumed;
        None
    }

    /// Reset the position sub-cursor to the start of the current entry.
    pub fn rewind_positions(&mut self) {
        self.pos_idx = 0;
    }

    /// Access counters accumulated by this cursor.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    /// True if all entries have been consumed.
    pub fn exhausted(&self) -> bool {
        self.started && self.node.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(o: u32) -> Position {
        Position::flat(o)
    }

    fn sample(n: u32, stride: u32) -> PostingList {
        PostingList::from_entries(
            (0..n)
                .map(|i| {
                    (
                        NodeId(i * stride),
                        vec![
                            Position::new(i, i / 7, i / 31),
                            Position::new(i + 5, i / 7 + 1, i / 31),
                        ],
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn roundtrip_preserves_entries_and_positions() {
        for n in [0u32, 1, 2, 127, 128, 129, 1000] {
            let list = sample(n, 3);
            let blocks = BlockList::from_posting(&list);
            assert_eq!(blocks.num_entries(), list.num_entries());
            assert_eq!(blocks.num_positions(), list.num_positions());
            assert_eq!(blocks.to_posting(), list, "n = {n}");
        }
    }

    #[test]
    fn block_structure_has_expected_shape() {
        let blocks = BlockList::from_posting(&sample(300, 2));
        assert_eq!(blocks.num_blocks(), 3); // 128 + 128 + 44
        assert!(blocks.compressed_bytes() < 300 * 12); // beats raw u32 triples
    }

    #[test]
    fn cursor_walk_matches_posting_list() {
        let list = sample(200, 5);
        let blocks = BlockList::from_posting(&list);
        let mut cur = blocks.cursor();
        for i in 0..list.num_entries() {
            assert_eq!(cur.next_entry(), Some(list.node_of(i)));
            assert_eq!(cur.positions(), list.positions_of(i));
        }
        assert_eq!(cur.next_entry(), None);
        assert!(cur.exhausted());
        assert_eq!(cur.counters().entries, 200);
        assert_eq!(cur.counters().skipped, 0);
    }

    #[test]
    fn seek_skips_blocks_without_decoding() {
        let blocks = BlockList::from_posting(&sample(1000, 2));
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(1501)), Some(NodeId(1502)));
        let c = cur.counters();
        assert!(c.entries <= BLOCK_ENTRIES as u64, "decoded {}", c.entries);
        assert!(c.skipped >= 512, "skipped {}", c.skipped);
        assert_eq!(c.entries + c.skipped, 752); // landed on entry index 751
    }

    #[test]
    fn seek_is_stable_and_monotone() {
        let blocks = BlockList::from_posting(&sample(500, 3));
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(0)), Some(NodeId(0)));
        assert_eq!(cur.seek(NodeId(0)), Some(NodeId(0))); // stays put
        assert_eq!(cur.seek(NodeId(301)), Some(NodeId(303)));
        assert_eq!(cur.seek(NodeId(302)), Some(NodeId(303))); // current suffices
        assert_eq!(cur.seek(NodeId(10_000)), None);
        assert!(cur.exhausted());
    }

    #[test]
    fn seek_positions_are_fresh_at_landing_entry() {
        let list = PostingList::from_entries(vec![
            (NodeId(1), vec![p(3), p(12)]),
            (NodeId(9), vec![p(51), p(56)]),
        ]);
        let blocks = BlockList::from_posting(&list);
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(5)), Some(NodeId(9)));
        assert_eq!(cur.position(), Some(p(51)));
        assert_eq!(cur.advance_position(52), Some(p(56)));
    }

    #[test]
    fn position_payloads_decode_lazily_and_are_counted() {
        let list = sample(300, 3); // 2 positions per entry
        let blocks = BlockList::from_posting(&list);
        let mut cur = blocks.cursor();
        // Walking entries alone decodes no position payloads.
        for _ in 0..10 {
            cur.next_entry();
        }
        assert_eq!(cur.counters().positions_decoded, 0);
        let _ = cur.positions();
        let _ = cur.positions(); // cached, not re-decoded
        assert_eq!(cur.counters().positions_decoded, 2);
        // Seeking over entries decodes none of their payloads either.
        cur.seek(NodeId(600));
        assert_eq!(cur.counters().positions_decoded, 2);
    }

    #[test]
    fn empty_list_cursor_behaves() {
        let blocks = BlockList::from_posting(&PostingList::empty());
        let mut cur = blocks.cursor();
        assert_eq!(cur.seek(NodeId(0)), None);
        let mut cur = blocks.cursor();
        assert_eq!(cur.next_entry(), None);
        assert!(cur.exhausted());
    }

    #[test]
    fn compression_beats_flat_encoding_on_dense_lists() {
        // Dense ids and short gaps: the regime block compression targets.
        let list = PostingList::from_entries(
            (0..10_000)
                .map(|i| (NodeId(i), vec![p(i % 97), p(i % 97 + 3)]))
                .collect(),
        );
        let blocks = BlockList::from_posting(&list);
        let flat_bytes = 10_000 * (4 + 4 + 2 * 12); // node + offset count + positions
        assert!(
            blocks.compressed_bytes() * 3 < flat_bytes,
            "compressed {} vs flat {flat_bytes}",
            blocks.compressed_bytes()
        );
    }
}
