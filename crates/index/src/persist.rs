//! Binary persistence for inverted indexes.
//!
//! A small hand-rolled little-endian codec over `bytes::{Buf, BufMut}` (no
//! serde *format* crate is available offline; the serde derives on the data
//! types remain useful for other tooling). The format is versioned so stored
//! indexes fail loudly rather than silently misparse.

use crate::index::InvertedIndex;
use crate::postings::PostingList;
use crate::stats::IndexStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftsl_model::{NodeId, Position};

const MAGIC: u32 = 0x4654_5349; // "FTSI"
const VERSION: u32 = 1;

/// Errors produced when decoding a persisted index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with the expected magic number.
    BadMagic(u32),
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended before decoding completed.
    Truncated,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic(m) => write!(f, "bad index magic 0x{m:08x}"),
            PersistError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            PersistError::Truncated => write!(f, "truncated index buffer"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize an index to a byte buffer.
pub fn encode(index: &InvertedIndex) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    let s = index.stats();
    for v in [s.cnodes, s.pos_per_cnode, s.entries_per_token, s.pos_per_entry, s.vocabulary] {
        buf.put_u64_le(v as u64);
    }
    buf.put_u32_le(index.lists.len() as u32);
    for list in &index.lists {
        encode_list(&mut buf, list);
    }
    encode_list(&mut buf, &index.any);
    buf.freeze()
}

fn encode_list(buf: &mut BytesMut, list: &PostingList) {
    buf.put_u32_le(list.num_entries() as u32);
    for (node, positions) in list.iter() {
        buf.put_u32_le(node.0);
        buf.put_u32_le(positions.len() as u32);
        for p in positions {
            buf.put_u32_le(p.offset);
            buf.put_u32_le(p.sentence);
            buf.put_u32_le(p.paragraph);
        }
    }
}

/// Deserialize an index previously produced by [`encode`].
pub fn decode(mut buf: impl Buf) -> Result<InvertedIndex, PersistError> {
    let magic = get_u32(&mut buf)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic(magic));
    }
    let version = get_u32(&mut buf)?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let mut fields = [0usize; 5];
    for f in &mut fields {
        if buf.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        *f = buf.get_u64_le() as usize;
    }
    let stats = IndexStats {
        cnodes: fields[0],
        pos_per_cnode: fields[1],
        entries_per_token: fields[2],
        pos_per_entry: fields[3],
        vocabulary: fields[4],
    };
    let num_lists = get_u32(&mut buf)? as usize;
    let mut lists = Vec::with_capacity(num_lists);
    for _ in 0..num_lists {
        lists.push(decode_list(&mut buf)?);
    }
    let any = decode_list(&mut buf)?;
    Ok(InvertedIndex { lists, any, stats })
}

fn decode_list(buf: &mut impl Buf) -> Result<PostingList, PersistError> {
    let entries = get_u32(buf)? as usize;
    let mut list = PostingList::empty();
    let mut positions: Vec<Position> = Vec::new();
    for _ in 0..entries {
        let node = NodeId(get_u32(buf)?);
        let n = get_u32(buf)? as usize;
        positions.clear();
        positions.reserve(n);
        for _ in 0..n {
            let offset = get_u32(buf)?;
            let sentence = get_u32(buf)?;
            let paragraph = get_u32(buf)?;
            positions.push(Position { offset, sentence, paragraph });
        }
        list.push_entry(node, &positions);
    }
    Ok(list)
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn roundtrip_preserves_index() {
        let corpus = Corpus::from_texts(&["usability of a software", "software testing. done"]);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        let decoded = decode(bytes).expect("decode");
        assert_eq!(decoded.stats(), index.stats());
        assert_eq!(decoded.lists.len(), index.lists.len());
        for (a, b) in decoded.lists.iter().zip(&index.lists) {
            assert_eq!(a, b);
        }
        assert_eq!(&decoded.any, &index.any);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u32_le(VERSION);
        assert!(matches!(decode(buf.freeze()), Err(PersistError::BadMagic(_))));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let corpus = Corpus::from_texts(&["a b c"]);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(matches!(decode(cut), Err(PersistError::Truncated)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(99);
        assert!(matches!(decode(buf.freeze()), Err(PersistError::BadVersion(99))));
    }
}
