//! Binary persistence for inverted indexes.
//!
//! A small hand-rolled little-endian codec over `bytes::{Buf, BufMut}` (no
//! serde *format* crate is available offline; the serde derives on the data
//! types remain useful for other tooling).
//!
//! ## Format versioning
//!
//! Every buffer starts with the magic number `"FTSI"` and a format version;
//! decoding rejects unknown magics and versions loudly
//! ([`PersistError::BadMagic`] / [`PersistError::BadVersion`]) rather than
//! silently misparsing.
//!
//! * **v1** (retired): decoded posting lists as raw `(node, positions[])`
//!   u32 triples — roughly 12 bytes per position.
//! * **v2** (retired): the block-compressed layout with plain skip headers
//!   (`max_node`, `byte_start`, `first_entry`).
//! * **v3** (retired): v2's layout with per-block *impact metadata*
//!   (`max_tf` in each block header).
//! * **v4** (retired): the live-index *manifest* built on v3 segment
//!   images — see [`crate::manifest`], whose current format is **v6**.
//! * **v5** (current): v3's outer structure, but each list's data stream
//!   holds the **bit-packed frame-of-reference block encoding** of
//!   [`crate::block`]: per block, an absolute base id, three frame widths,
//!   and three fixed-width [`crate::bitpack`] frames (id deltas, `tf − 1`,
//!   position-payload byte lengths) followed by the varint position
//!   payloads. The on-disk image *is* the physical in-memory layout; on
//!   load the decoded [`crate::PostingList`] views are reconstructed by
//!   decompression, re-validating every structural invariant
//!   ([`crate::block::BlockList::try_to_posting`]). v1–v4 buffers are
//!   rejected with `BadVersion(..)`; there is no migration path because
//!   older images can be regenerated from their corpora.
//!
//! Layout of a v5 buffer (all integers little-endian):
//!
//! ```text
//! magic:u32  version:u32  stats:5×u64  num_token_lists:u32
//! then per list (token lists in id order, IL_ANY last):
//!   entries:u32  positions:u64  num_blocks:u32
//!   num_blocks × (max_node:u32 byte_start:u32 first_entry:u32 max_tf:u32)
//!   data_len:u32  data:[u8]          (v5 block encoding, see docs/FORMAT.md)
//! ```

use crate::block::{BlockList, BlockMeta};
use crate::index::InvertedIndex;
use crate::stats::IndexStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftsl_model::NodeId;

const MAGIC: u32 = 0x4654_5349; // "FTSI"
const VERSION: u32 = 5;

/// Errors produced when decoding a persisted index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with the expected magic number.
    BadMagic(u32),
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended before decoding completed.
    Truncated,
    /// Structurally invalid contents (counts that contradict the payload).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic(m) => write!(f, "bad index magic 0x{m:08x}"),
            PersistError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            PersistError::Truncated => write!(f, "truncated index buffer"),
            PersistError::Corrupt(what) => write!(f, "corrupt index buffer: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize an index to a byte buffer (format v5: bit-packed
/// frame-of-reference blocks with per-block skip/impact headers).
pub fn encode(index: &InvertedIndex) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    let s = index.stats();
    for v in [
        s.cnodes,
        s.pos_per_cnode,
        s.entries_per_token,
        s.pos_per_entry,
        s.vocabulary,
    ] {
        buf.put_u64_le(v as u64);
    }
    buf.put_u32_le(index.blocks.len() as u32);
    for list in &index.blocks {
        encode_list(&mut buf, list);
    }
    encode_list(&mut buf, &index.any_blocks);
    buf.freeze()
}

fn encode_list(buf: &mut BytesMut, list: &BlockList) {
    let (blocks, data, entries, positions) = list.parts();
    buf.put_u32_le(entries);
    buf.put_u64_le(positions);
    buf.put_u32_le(blocks.len() as u32);
    for b in blocks {
        buf.put_u32_le(b.max_node.0);
        buf.put_u32_le(b.byte_start);
        buf.put_u32_le(b.first_entry);
        buf.put_u32_le(b.max_tf);
    }
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

/// Deserialize an index previously produced by [`encode`].
pub fn decode(mut buf: impl Buf) -> Result<InvertedIndex, PersistError> {
    let magic = get_u32(&mut buf)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic(magic));
    }
    let version = get_u32(&mut buf)?;
    if version != VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let mut fields = [0usize; 5];
    for f in &mut fields {
        if buf.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        *f = buf.get_u64_le() as usize;
    }
    let stats = IndexStats {
        cnodes: fields[0],
        pos_per_cnode: fields[1],
        entries_per_token: fields[2],
        pos_per_entry: fields[3],
        vocabulary: fields[4],
    };
    let num_lists = get_u32(&mut buf)? as usize;
    let mut blocks = Vec::with_capacity(num_lists);
    let mut lists = Vec::with_capacity(num_lists);
    for _ in 0..num_lists {
        let block_list = decode_list(&mut buf)?;
        lists.push(block_list.try_to_posting().map_err(PersistError::Corrupt)?);
        blocks.push(block_list);
    }
    let any_blocks = decode_list(&mut buf)?;
    let any = any_blocks.try_to_posting().map_err(PersistError::Corrupt)?;
    Ok(InvertedIndex {
        lists,
        any,
        blocks,
        any_blocks,
        stats,
        ..InvertedIndex::default()
    })
}

fn decode_list(buf: &mut impl Buf) -> Result<BlockList, PersistError> {
    let entries = get_u32(buf)?;
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let positions = buf.get_u64_le();
    let num_blocks = get_u32(buf)? as usize;
    if num_blocks != (entries as usize).div_ceil(crate::block::BLOCK_ENTRIES) {
        return Err(PersistError::Corrupt(
            "block count disagrees with entry count",
        ));
    }
    let mut metas = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let max_node = NodeId(get_u32(buf)?);
        let byte_start = get_u32(buf)?;
        let first_entry = get_u32(buf)?;
        let max_tf = get_u32(buf)?;
        metas.push(BlockMeta {
            max_node,
            byte_start,
            first_entry,
            max_tf,
        });
    }
    let data_len = get_u32(buf)? as usize;
    if buf.remaining() < data_len {
        return Err(PersistError::Truncated);
    }
    let mut data = vec![0u8; data_len];
    let mut filled = 0usize;
    while filled < data_len {
        let chunk = buf.chunk();
        let take = chunk.len().min(data_len - filled);
        data[filled..filled + take].copy_from_slice(&chunk[..take]);
        buf.advance(take);
        filled += take;
    }
    for meta in &metas {
        if meta.byte_start as usize > data_len || meta.first_entry > entries {
            return Err(PersistError::Corrupt("block header out of range"));
        }
    }
    Ok(BlockList::from_parts(metas, data, entries, positions))
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn roundtrip_preserves_index() {
        let corpus = Corpus::from_texts(&["usability of a software", "software testing. done"]);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        let decoded = decode(bytes).expect("decode");
        assert_eq!(decoded.stats(), index.stats());
        assert_eq!(decoded.lists.len(), index.lists.len());
        for (a, b) in decoded.lists.iter().zip(&index.lists) {
            assert_eq!(a, b);
        }
        assert_eq!(&decoded.any, &index.any);
        for (a, b) in decoded.blocks.iter().zip(&index.blocks) {
            assert_eq!(a, b);
        }
        assert_eq!(&decoded.any_blocks, &index.any_blocks);
    }

    #[test]
    fn retired_versions_v1_through_v4_are_rejected() {
        for v in 1u32..=4 {
            let mut buf = BytesMut::new();
            buf.put_u32_le(MAGIC);
            buf.put_u32_le(v);
            assert!(
                matches!(decode(buf.freeze()), Err(PersistError::BadVersion(got)) if got == v),
                "version {v} must be rejected"
            );
        }
    }

    #[test]
    fn encode_decode_encode_is_a_fixpoint() {
        let texts: Vec<String> = (0..120)
            .map(|i| {
                format!(
                    "alpha beta{} gamma{} {}",
                    i % 11,
                    i % 5,
                    "hot ".repeat(1 + i % 4)
                )
            })
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let first = encode(&index);
        let back = decode(first.clone()).expect("decode");
        let second = encode(&back);
        assert_eq!(first, second, "encode∘decode∘encode must be the identity");
    }

    #[test]
    fn roundtrip_preserves_block_impact_metadata() {
        // Documents with very different token repetition so max_tf varies.
        let texts: Vec<String> = (0..50)
            .map(|i| format!("{} filler", "hot ".repeat(1 + i % 7)))
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let decoded = decode(encode(&index)).expect("decode");
        for (a, b) in decoded.blocks.iter().zip(&index.blocks) {
            assert_eq!(a, b); // BlockMeta::max_tf participates in PartialEq
            assert!(a.max_tf() > 0 || a.is_empty());
        }
    }

    #[test]
    fn compressed_format_is_smaller_than_v1_layout() {
        let texts: Vec<String> = (0..300)
            .map(|i| format!("common tokens everywhere plus t{} t{}", i % 9, i % 4))
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let v5_len = encode(&index).len();
        // The retired v1 layout spent 12 bytes per position plus 8 per entry.
        let v1_estimate: usize = index
            .lists
            .iter()
            .chain(std::iter::once(&index.any))
            .map(|l| 4 + l.num_entries() * 8 + l.num_positions() * 12)
            .sum();
        assert!(
            v5_len * 2 < v1_estimate,
            "v5 {v5_len} bytes vs v1-equivalent {v1_estimate}"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u32_le(VERSION);
        assert!(matches!(
            decode(buf.freeze()),
            Err(PersistError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let corpus = Corpus::from_texts(&["a b c"]);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(matches!(decode(cut), Err(PersistError::Truncated)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(99);
        assert!(matches!(
            decode(buf.freeze()),
            Err(PersistError::BadVersion(99))
        ));
    }

    #[test]
    fn corrupt_entry_stream_is_an_error_not_a_panic() {
        let texts: Vec<String> = (0..40).map(|i| format!("alpha beta t{i}")).collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        // Set the varint continuation bit on a byte near the end of the last
        // list's data stream: the entry stream no longer matches its declared
        // counts and must decode to Err, never panic.
        let mut raw = bytes.as_slice().to_vec();
        let target = raw.len() - 2;
        raw[target] |= 0x80;
        assert!(matches!(
            decode(&raw[..]),
            Err(PersistError::Corrupt(_) | PersistError::Truncated)
        ));
    }
}
