//! Binary persistence for inverted indexes.
//!
//! A small hand-rolled little-endian codec over `bytes::{Buf, BufMut}` (no
//! serde *format* crate is available offline; the serde derives on the data
//! types remain useful for other tooling).
//!
//! ## Format versioning
//!
//! Every buffer starts with the magic number `"FTSI"` and a format version;
//! decoding rejects unknown magics and versions loudly
//! ([`PersistError::BadMagic`] / [`PersistError::BadVersion`]) rather than
//! silently misparsing.
//!
//! * **v1** (retired): decoded posting lists as raw `(node, positions[])`
//!   u32 triples — roughly 12 bytes per position.
//! * **v2** (retired): the block-compressed layout with plain skip headers
//!   (`max_node`, `byte_start`, `first_entry`).
//! * **v3** (retired): v2's layout with per-block *impact metadata*
//!   (`max_tf` in each block header).
//! * **v4** (retired): the live-index *manifest* built on v3 segment
//!   images — see [`crate::manifest`], whose current format is **v8**
//!   (with **v6** still readable). Version numbers are shared across the
//!   bare-index and manifest lineages precisely so that a buffer's version
//!   field identifies its format unambiguously; [`decode`] therefore
//!   rejects 6 and 8 (manifest formats) with `BadVersion`, never
//!   misparsing.
//! * **v5** (readable): v3's outer structure, but each list's data stream
//!   holds the **bit-packed frame-of-reference block encoding** of
//!   [`crate::block`]: per block, an absolute base id, three frame widths,
//!   and three fixed-width [`crate::bitpack`] frames (id deltas, `tf − 1`,
//!   position-payload byte lengths) followed by the varint position
//!   payloads. The on-disk image *is* the physical in-memory layout; on
//!   load the decoded [`crate::PostingList`] views are reconstructed by
//!   decompression, re-validating every structural invariant
//!   ([`crate::block::BlockList::try_to_posting`]). v1–v4 buffers are
//!   rejected with `BadVersion(..)`; there is no migration path because
//!   older images can be regenerated from their corpora.
//! * **v7** (current): v5 followed by a table of **optional sections** —
//!   each a `(section_id, byte_len)` header plus payload. Section id 1 is
//!   the word-pair auxiliary index ([`crate::pair::PairIndex`]); readers
//!   reject *unknown* section ids loudly with `Corrupt(..)` rather than
//!   skipping data they cannot audit. v5 buffers (no section table) still
//!   load, with an empty pair index. (v6 is the manifest's number, skipped
//!   here — see the v4 note.)
//!
//! Layout of a v7 buffer (all integers little-endian):
//!
//! ```text
//! magic:u32  version:u32  stats:5×u64  num_token_lists:u32
//! then per list (token lists in id order, IL_ANY last):
//!   entries:u32  positions:u64  num_blocks:u32
//!   num_blocks × (max_node:u32 byte_start:u32 first_entry:u32 max_tf:u32)
//!   data_len:u32  data:[u8]          (v5 block encoding, see docs/FORMAT.md)
//! num_sections:u32                   (absent entirely in v5 buffers)
//! per section: section_id:u32  byte_len:u32  payload:[u8]
//! ```
//!
//! The pair-index section payload (section id 1):
//!
//! ```text
//! window:u32  df_cutoff:u32
//! vocab:u32  coverage bitmap: ⌈vocab/8⌉ bytes (bit t ⇔ df(t) ≥ cutoff)
//! num_keys:u32
//! per key (keys strictly increasing lexicographically):
//!   token_a:u32  token_b:u32  entries:u32  num_blocks:u32
//!   num_blocks × (max_node:u32 byte_start:u32 first_entry:u32 min_gap:u32)
//!   data_len:u32  data:[u8]          (pair block encoding, see FORMAT.md)
//! ```

use crate::block::{BlockList, BlockMeta};
use crate::index::InvertedIndex;
use crate::pair::{PairBlockMeta, PairConfig, PairIndex, PairList};
use crate::stats::IndexStats;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ftsl_model::NodeId;

const MAGIC: u32 = 0x4654_5349; // "FTSI"
const VERSION: u32 = 7;
/// The pre-section bare-index version [`decode`] still accepts.
const LEGACY_VERSION: u32 = 5;
/// Optional-section id of the word-pair auxiliary index.
const SECTION_PAIRS: u32 = 1;

/// Errors produced when decoding a persisted index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with the expected magic number.
    BadMagic(u32),
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended before decoding completed.
    Truncated,
    /// Structurally invalid contents (counts that contradict the payload).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadMagic(m) => write!(f, "bad index magic 0x{m:08x}"),
            PersistError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            PersistError::Truncated => write!(f, "truncated index buffer"),
            PersistError::Corrupt(what) => write!(f, "corrupt index buffer: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize an index to a byte buffer (format v7: bit-packed
/// frame-of-reference blocks with per-block skip/impact headers, followed
/// by the optional-section table).
pub fn encode(index: &InvertedIndex) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    let s = index.stats();
    for v in [
        s.cnodes,
        s.pos_per_cnode,
        s.entries_per_token,
        s.pos_per_entry,
        s.vocabulary,
    ] {
        buf.put_u64_le(v as u64);
    }
    buf.put_u32_le(index.blocks.len() as u32);
    for list in &index.blocks {
        encode_list(&mut buf, list);
    }
    encode_list(&mut buf, &index.any_blocks);
    encode_sections(&mut buf, index);
    buf.freeze()
}

/// Write the optional-section table. A disabled pair index writes an empty
/// table rather than an empty section, so encode∘decode∘encode stays a
/// fixpoint (a v5 load yields a disabled pair index).
fn encode_sections(buf: &mut BytesMut, index: &InvertedIndex) {
    let pairs = index.pairs();
    if pairs.config().window == 0 {
        buf.put_u32_le(0);
        return;
    }
    buf.put_u32_le(1);
    buf.put_u32_le(SECTION_PAIRS);
    let payload = encode_pair_section(pairs).freeze();
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload.as_slice());
}

fn encode_pair_section(pairs: &PairIndex) -> BytesMut {
    let (keys, lists, frequent) = pairs.parts();
    let config = pairs.config();
    let mut buf = BytesMut::new();
    buf.put_u32_le(config.window);
    buf.put_u32_le(config.df_cutoff);
    buf.put_u32_le(frequent.len() as u32);
    let mut byte = 0u8;
    for (i, &covered) in frequent.iter().enumerate() {
        if covered {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.put_u8(byte);
            byte = 0;
        }
    }
    if frequent.len() % 8 != 0 {
        buf.put_u8(byte);
    }
    buf.put_u32_le(keys.len() as u32);
    for (&(a, b), list) in keys.iter().zip(lists) {
        let (metas, data, entries) = list.parts();
        buf.put_u32_le(a);
        buf.put_u32_le(b);
        buf.put_u32_le(entries);
        buf.put_u32_le(metas.len() as u32);
        for m in metas {
            buf.put_u32_le(m.max_node.0);
            buf.put_u32_le(m.byte_start);
            buf.put_u32_le(m.first_entry);
            buf.put_u32_le(m.min_gap);
        }
        buf.put_u32_le(data.len() as u32);
        buf.put_slice(data);
    }
    buf
}

fn encode_list(buf: &mut BytesMut, list: &BlockList) {
    let (blocks, data, entries, positions) = list.parts();
    buf.put_u32_le(entries);
    buf.put_u64_le(positions);
    buf.put_u32_le(blocks.len() as u32);
    for b in blocks {
        buf.put_u32_le(b.max_node.0);
        buf.put_u32_le(b.byte_start);
        buf.put_u32_le(b.first_entry);
        buf.put_u32_le(b.max_tf);
    }
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
}

/// Deserialize an index previously produced by [`encode`].
pub fn decode(mut buf: impl Buf) -> Result<InvertedIndex, PersistError> {
    let magic = get_u32(&mut buf)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic(magic));
    }
    let version = get_u32(&mut buf)?;
    if version != VERSION && version != LEGACY_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let mut fields = [0usize; 5];
    for f in &mut fields {
        if buf.remaining() < 8 {
            return Err(PersistError::Truncated);
        }
        *f = buf.get_u64_le() as usize;
    }
    let stats = IndexStats {
        cnodes: fields[0],
        pos_per_cnode: fields[1],
        entries_per_token: fields[2],
        pos_per_entry: fields[3],
        vocabulary: fields[4],
    };
    let num_lists = get_u32(&mut buf)? as usize;
    let mut blocks = Vec::with_capacity(num_lists);
    let mut lists = Vec::with_capacity(num_lists);
    for _ in 0..num_lists {
        let block_list = decode_list(&mut buf)?;
        lists.push(block_list.try_to_posting().map_err(PersistError::Corrupt)?);
        blocks.push(block_list);
    }
    let any_blocks = decode_list(&mut buf)?;
    let any = any_blocks.try_to_posting().map_err(PersistError::Corrupt)?;
    // v5 buffers end here; the pair index defaults to disabled, so every
    // lookup reports NotCovered and queries take the intersection path.
    let pairs = if version == LEGACY_VERSION {
        PairIndex::default()
    } else {
        decode_sections(&mut buf)?
    };
    Ok(InvertedIndex {
        lists,
        any,
        blocks,
        any_blocks,
        stats,
        pairs,
        ..InvertedIndex::default()
    })
}

/// Read the optional-section table. Unknown section ids are rejected
/// loudly: a section this reader cannot validate is a section it must not
/// silently drop (the writer considered it part of the index).
fn decode_sections(buf: &mut impl Buf) -> Result<PairIndex, PersistError> {
    let num_sections = get_u32(buf)?;
    let mut pairs: Option<PairIndex> = None;
    for _ in 0..num_sections {
        let id = get_u32(buf)?;
        let byte_len = get_u32(buf)? as usize;
        let payload = get_bytes(buf, byte_len)?;
        match id {
            SECTION_PAIRS => {
                if pairs.is_some() {
                    return Err(PersistError::Corrupt("duplicate pair section"));
                }
                pairs = Some(decode_pair_section(&payload[..])?);
            }
            _ => return Err(PersistError::Corrupt("unknown optional section")),
        }
    }
    Ok(pairs.unwrap_or_default())
}

fn decode_pair_section(mut buf: &[u8]) -> Result<PairIndex, PersistError> {
    let buf = &mut buf;
    let window = get_u32(buf)?;
    let df_cutoff = get_u32(buf)?;
    if window == 0 {
        // Disabled pair indexes are expressed as an *absent* section.
        return Err(PersistError::Corrupt("pair section with zero window"));
    }
    let vocab = get_u32(buf)? as usize;
    let bitmap = get_bytes(buf, vocab.div_ceil(8))?;
    if !vocab.is_multiple_of(8) {
        // Canonical encoding: bits past `vocab` in the last byte are zero,
        // keeping the byte image of a given index unique.
        let last = bitmap[vocab / 8];
        if last >> (vocab % 8) != 0 {
            return Err(PersistError::Corrupt("stray bits in pair coverage bitmap"));
        }
    }
    let frequent: Vec<bool> = (0..vocab)
        .map(|i| bitmap[i / 8] >> (i % 8) & 1 == 1)
        .collect();
    let num_keys = get_u32(buf)? as usize;
    let mut keys = Vec::with_capacity(num_keys);
    let mut lists = Vec::with_capacity(num_keys);
    for _ in 0..num_keys {
        let a = get_u32(buf)?;
        let b = get_u32(buf)?;
        let entries = get_u32(buf)?;
        let num_blocks = get_u32(buf)? as usize;
        let mut metas = Vec::with_capacity(num_blocks);
        for _ in 0..num_blocks {
            let max_node = NodeId(get_u32(buf)?);
            let byte_start = get_u32(buf)?;
            let first_entry = get_u32(buf)?;
            let min_gap = get_u32(buf)?;
            metas.push(PairBlockMeta {
                max_node,
                byte_start,
                first_entry,
                min_gap,
            });
        }
        let data_len = get_u32(buf)? as usize;
        let data = get_bytes(buf, data_len)?;
        let list = PairList::from_parts(metas, data, entries);
        list.try_to_entries(window).map_err(PersistError::Corrupt)?;
        keys.push((a, b));
        lists.push(list);
    }
    if buf.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes in pair section"));
    }
    PairIndex::from_parts(PairConfig { window, df_cutoff }, keys, lists, frequent)
        .map_err(PersistError::Corrupt)
}

fn decode_list(buf: &mut impl Buf) -> Result<BlockList, PersistError> {
    let entries = get_u32(buf)?;
    if buf.remaining() < 8 {
        return Err(PersistError::Truncated);
    }
    let positions = buf.get_u64_le();
    let num_blocks = get_u32(buf)? as usize;
    if num_blocks != (entries as usize).div_ceil(crate::block::BLOCK_ENTRIES) {
        return Err(PersistError::Corrupt(
            "block count disagrees with entry count",
        ));
    }
    let mut metas = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let max_node = NodeId(get_u32(buf)?);
        let byte_start = get_u32(buf)?;
        let first_entry = get_u32(buf)?;
        let max_tf = get_u32(buf)?;
        metas.push(BlockMeta {
            max_node,
            byte_start,
            first_entry,
            max_tf,
        });
    }
    let data_len = get_u32(buf)? as usize;
    let data = get_bytes(buf, data_len)?;
    for meta in &metas {
        if meta.byte_start as usize > data_len || meta.first_entry > entries {
            return Err(PersistError::Corrupt("block header out of range"));
        }
    }
    Ok(BlockList::from_parts(metas, data, entries, positions))
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, PersistError> {
    if buf.remaining() < 4 {
        return Err(PersistError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_bytes(buf: &mut impl Buf, len: usize) -> Result<Vec<u8>, PersistError> {
    if buf.remaining() < len {
        return Err(PersistError::Truncated);
    }
    let mut data = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        let chunk = buf.chunk();
        let take = chunk.len().min(len - filled);
        data[filled..filled + take].copy_from_slice(&chunk[..take]);
        buf.advance(take);
        filled += take;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn roundtrip_preserves_index() {
        let corpus = Corpus::from_texts(&["usability of a software", "software testing. done"]);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        let decoded = decode(bytes).expect("decode");
        assert_eq!(decoded.stats(), index.stats());
        assert_eq!(decoded.lists.len(), index.lists.len());
        for (a, b) in decoded.lists.iter().zip(&index.lists) {
            assert_eq!(a, b);
        }
        assert_eq!(&decoded.any, &index.any);
        for (a, b) in decoded.blocks.iter().zip(&index.blocks) {
            assert_eq!(a, b);
        }
        assert_eq!(&decoded.any_blocks, &index.any_blocks);
    }

    #[test]
    fn retired_versions_v1_through_v4_are_rejected() {
        for v in 1u32..=4 {
            let mut buf = BytesMut::new();
            buf.put_u32_le(MAGIC);
            buf.put_u32_le(v);
            assert!(
                matches!(decode(buf.freeze()), Err(PersistError::BadVersion(got)) if got == v),
                "version {v} must be rejected"
            );
        }
    }

    #[test]
    fn manifest_versions_are_not_bare_indexes() {
        // 6 and 8 belong to the manifest lineage (crate::manifest); a bare
        // index decoder must refuse them rather than misparse.
        for v in [6u32, 8] {
            let mut buf = BytesMut::new();
            buf.put_u32_le(MAGIC);
            buf.put_u32_le(v);
            assert!(
                matches!(decode(buf.freeze()), Err(PersistError::BadVersion(got)) if got == v),
                "manifest version {v} must be rejected"
            );
        }
    }

    #[test]
    fn v5_images_without_sections_still_load() {
        let texts: Vec<String> = (0..30)
            .map(|i| format!("alpha beta t{} alpha", i % 6))
            .collect();
        let corpus = Corpus::from_texts(&texts);
        // A disabled pair index writes an empty section table, so a legacy
        // v5 image is exactly that buffer minus the trailing `num_sections`
        // word, with the version field rewound.
        let index = IndexBuilder::new()
            .pair_config(crate::pair::PairConfig::disabled())
            .build(&corpus);
        let bytes = encode(&index);
        let mut raw = bytes.as_slice()[..bytes.len() - 4].to_vec();
        raw[4..8].copy_from_slice(&5u32.to_le_bytes());
        let decoded = decode(&raw[..]).expect("v5 image must still load");
        assert_eq!(decoded.stats(), index.stats());
        assert_eq!(decoded.lists, index.lists);
        assert!(decoded.pairs().is_empty());
        assert_eq!(decoded.pairs().config().window, 0);
    }

    #[test]
    fn pair_section_roundtrips() {
        let texts: Vec<String> = (0..40)
            .map(|i| format!("alpha beta gamma{} alpha beta", i % 3))
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        assert!(
            !index.pairs().is_empty(),
            "test needs a populated pair index"
        );
        let decoded = decode(encode(&index)).expect("decode");
        let (got, want) = (decoded.pairs(), index.pairs());
        assert_eq!(got.config(), want.config());
        assert_eq!(got.num_keys(), want.num_keys());
        assert_eq!(got.num_entries(), want.num_entries());
        let window = want.config().window;
        for ((ga, gb, gl), (wa, wb, wl)) in got.iter().zip(want.iter()) {
            assert_eq!((ga, gb), (wa, wb));
            assert_eq!(
                gl.try_to_entries(window).unwrap(),
                wl.try_to_entries(window).unwrap()
            );
        }
        for t in 0..corpus.interner().len() {
            let tok = ftsl_model::TokenId(t as u32);
            assert_eq!(got.covers(tok), want.covers(tok), "coverage of token {t}");
        }
    }

    #[test]
    fn unknown_sections_are_rejected_loudly() {
        let corpus = Corpus::from_texts(&["a b c"]);
        let index = IndexBuilder::new()
            .pair_config(crate::pair::PairConfig::disabled())
            .build(&corpus);
        let bytes = encode(&index);
        // Rewrite the empty section table into one section of unknown id.
        let mut raw = bytes.as_slice()[..bytes.len() - 4].to_vec();
        raw.extend_from_slice(&1u32.to_le_bytes()); // num_sections
        raw.extend_from_slice(&99u32.to_le_bytes()); // unknown id
        raw.extend_from_slice(&0u32.to_le_bytes()); // empty payload
        assert!(matches!(
            decode(&raw[..]),
            Err(PersistError::Corrupt("unknown optional section"))
        ));
    }

    #[test]
    fn corrupt_pair_sections_are_errors_not_panics() {
        let texts: Vec<String> = (0..40)
            .map(|i| format!("alpha beta gamma{} alpha beta", i % 3))
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        assert!(!index.pairs().is_empty());
        // Truncations anywhere in the buffer (section table included) and
        // bit flips across the trailing pair section must never panic.
        for cut in (bytes.len().saturating_sub(64)..bytes.len()).rev() {
            let _ = decode(&bytes.as_slice()[..cut]);
        }
        let section_start = bytes.len().saturating_sub(96);
        for at in section_start..bytes.len() {
            for bit in 0..8 {
                let mut raw = bytes.as_slice().to_vec();
                raw[at] ^= 1 << bit;
                let _ = decode(&raw[..]); // must not panic
            }
        }
    }

    #[test]
    fn encode_decode_encode_is_a_fixpoint() {
        let texts: Vec<String> = (0..120)
            .map(|i| {
                format!(
                    "alpha beta{} gamma{} {}",
                    i % 11,
                    i % 5,
                    "hot ".repeat(1 + i % 4)
                )
            })
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let first = encode(&index);
        let back = decode(first.clone()).expect("decode");
        let second = encode(&back);
        assert_eq!(first, second, "encode∘decode∘encode must be the identity");
    }

    #[test]
    fn roundtrip_preserves_block_impact_metadata() {
        // Documents with very different token repetition so max_tf varies.
        let texts: Vec<String> = (0..50)
            .map(|i| format!("{} filler", "hot ".repeat(1 + i % 7)))
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let decoded = decode(encode(&index)).expect("decode");
        for (a, b) in decoded.blocks.iter().zip(&index.blocks) {
            assert_eq!(a, b); // BlockMeta::max_tf participates in PartialEq
            assert!(a.max_tf() > 0 || a.is_empty());
        }
    }

    #[test]
    fn compressed_format_is_smaller_than_v1_layout() {
        let texts: Vec<String> = (0..300)
            .map(|i| format!("common tokens everywhere plus t{} t{}", i % 9, i % 4))
            .collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let v5_len = encode(&index).len();
        // The retired v1 layout spent 12 bytes per position plus 8 per entry.
        let v1_estimate: usize = index
            .lists
            .iter()
            .chain(std::iter::once(&index.any))
            .map(|l| 4 + l.num_entries() * 8 + l.num_positions() * 12)
            .sum();
        assert!(
            v5_len * 2 < v1_estimate,
            "v5 {v5_len} bytes vs v1-equivalent {v1_estimate}"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u32_le(VERSION);
        assert!(matches!(
            decode(buf.freeze()),
            Err(PersistError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let corpus = Corpus::from_texts(&["a b c"]);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        let cut = bytes.slice(0..bytes.len() - 3);
        assert!(matches!(decode(cut), Err(PersistError::Truncated)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(99);
        assert!(matches!(
            decode(buf.freeze()),
            Err(PersistError::BadVersion(99))
        ));
    }

    #[test]
    fn corrupt_entry_stream_is_an_error_not_a_panic() {
        let texts: Vec<String> = (0..40).map(|i| format!("alpha beta t{i}")).collect();
        let corpus = Corpus::from_texts(&texts);
        let index = IndexBuilder::new().build(&corpus);
        let bytes = encode(&index);
        // Set the varint continuation bit on a byte near the end of the last
        // list's data stream: the entry stream no longer matches its declared
        // counts and must decode to Err, never panic.
        let mut raw = bytes.as_slice().to_vec();
        let target = raw.len() - 2;
        raw[target] |= 0x80;
        assert!(matches!(
            decode(&raw[..]),
            Err(PersistError::Corrupt(_) | PersistError::Truncated)
        ));
    }
}
