//! `ftsl-cli` — a small command-line search shell over the library.
//!
//! ```text
//! ftsl-cli [--analyzed] [--blocks-only] <file>...   index each file as one context node
//! ```
//!
//! `--blocks-only` serves from the compressed blocks alone (single
//! residency): the decoded list views are dropped after indexing, shrinking
//! RAM to the compressed footprint plus a small LRU decode cache.
//!
//! Then type queries (BOOL/DIST/COMP syntax) on stdin, one per line.
//! Commands: `:explain <query>`, `:rank <query>`, `:top <k> <query>`,
//! `:stats`, `:quit`.

use ftsl_core::{Ftsl, RankModel, Residency};
use ftsl_index::AccessCounters;
use ftsl_model::analysis::AnalysisConfig;
use std::io::{BufRead, Write};

fn main() {
    let mut analyzed = false;
    let mut blocks_only = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--analyzed" => analyzed = true,
            "--blocks-only" => blocks_only = true,
            "--help" | "-h" => {
                eprintln!("usage: ftsl-cli [--analyzed] [--blocks-only] <file>...");
                return;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: ftsl-cli [--analyzed] [--blocks-only] <file>...");
        std::process::exit(2);
    }

    let mut texts = Vec::new();
    let mut names = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                texts.push(text);
                names.push(path.clone());
            }
            Err(e) => {
                eprintln!("skipping {path}: {e}");
            }
        }
    }
    let mut engine = if analyzed {
        Ftsl::from_texts_analyzed(&texts, AnalysisConfig::english())
    } else {
        Ftsl::from_texts(&texts)
    };
    if blocks_only {
        engine.set_residency(Residency::BlocksOnly);
    }
    let stats = engine.index().stats();
    eprintln!(
        "indexed {} documents ({} terms, {} max positions/node, {})",
        engine.corpus().len(),
        stats.vocabulary,
        stats.pos_per_cnode,
        engine.index().residency()
    );
    eprintln!("enter queries (:help for commands)");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut line = String::new();
    // Counters of the most recent query, reported by `:stats`.
    let mut last_counters: Option<AccessCounters> = None;
    loop {
        eprint!("ftsl> ");
        line.clear();
        let Ok(n) = stdin.lock().read_line(&mut line) else {
            break;
        };
        if n == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        let result = dispatch(&engine, input, &names, &mut stdout, &mut last_counters);
        if let Err(e) = result {
            eprintln!("error: {e}");
        }
        if input == ":quit" {
            break;
        }
    }
}

fn dispatch(
    engine: &Ftsl,
    input: &str,
    names: &[String],
    out: &mut impl Write,
    last_counters: &mut Option<AccessCounters>,
) -> Result<(), Box<dyn std::error::Error>> {
    if input == ":quit" {
        return Ok(());
    }
    if input == ":help" {
        writeln!(
            out,
            ":explain <q> | :rank <q> | :top <k> <q> | :stats | :quit"
        )?;
        return Ok(());
    }
    if input == ":stats" {
        let s = engine.index().stats();
        writeln!(
            out,
            "cnodes={} vocabulary={} pos_per_cnode={} entries_per_token={} pos_per_entry={}",
            s.cnodes, s.vocabulary, s.pos_per_cnode, s.entries_per_token, s.pos_per_entry
        )?;
        writeln!(out, "residency: {}", engine.index().residency())?;
        // The footprint Display labels the numbers by residency: dual shows
        // compressed + decoded, blocks-only shows compressed + decode-cache.
        writeln!(out, "memory: {}", engine.index().memory_footprint())?;
        let c = engine.index().decode_cache_stats();
        writeln!(
            out,
            "decode cache: {} lists, {} hits / {} misses, {}B",
            c.lists, c.hits, c.misses, c.resident_bytes
        )?;
        match last_counters {
            Some(c) => writeln!(
                out,
                "last query: {} entries decoded, {} positions decoded, \
                 {} positions consumed, {} entries / {} blocks skipped",
                c.entries, c.positions_decoded, c.positions, c.skipped, c.blocks_skipped
            )?,
            None => writeln!(out, "last query: none yet")?,
        }
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":explain ") {
        writeln!(out, "{}", engine.explain(q)?)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":rank ") {
        let ranked = engine.search_ranked(q, RankModel::TfIdf)?;
        // Exhaustive ranking reports no counters; clear the stale ones so
        // `:stats` never misattributes an older query's numbers.
        *last_counters = None;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", names[node.index()])?;
        }
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":top ") {
        let (k, q) = rest.split_once(' ').ok_or(":top needs <k> <query>")?;
        let k: usize = k.parse()?;
        let ranked = engine.search_top_k(q, RankModel::TfIdf, k)?;
        // None on the exhaustive fallback path — recorded either way so
        // `:stats` reflects *this* query, not an older one.
        *last_counters = ranked.counters;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", names[node.index()])?;
        }
        if let Some(c) = ranked.counters {
            writeln!(
                out,
                "[streamed: {} entries decoded, {} entries / {} blocks pruned]",
                c.entries, c.skipped, c.blocks_skipped
            )?;
        }
        return Ok(());
    }
    let results = engine.search(input)?;
    *last_counters = Some(results.counters);
    writeln!(
        out,
        "{} hit(s) [{} engine, {} class, {} entries read, {} positions decoded]",
        results.len(),
        results.engine,
        results.class,
        results.counters.entries,
        results.counters.positions_decoded
    )?;
    for node in &results.nodes {
        writeln!(out, "  {}", names[node.index()])?;
    }
    Ok(())
}
