//! `ftsl-cli` — a small command-line search shell over the library.
//!
//! ```text
//! ftsl-cli [--analyzed] <file>...      index each file as one context node
//! ```
//!
//! Then type queries (BOOL/DIST/COMP syntax) on stdin, one per line.
//! Commands: `:explain <query>`, `:rank <query>`, `:top <k> <query>`,
//! `:stats`, `:quit`.

use ftsl_core::{Ftsl, RankModel};
use ftsl_model::analysis::AnalysisConfig;
use std::io::{BufRead, Write};

fn main() {
    let mut analyzed = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--analyzed" => analyzed = true,
            "--help" | "-h" => {
                eprintln!("usage: ftsl-cli [--analyzed] <file>...");
                return;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: ftsl-cli [--analyzed] <file>...");
        std::process::exit(2);
    }

    let mut texts = Vec::new();
    let mut names = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                texts.push(text);
                names.push(path.clone());
            }
            Err(e) => {
                eprintln!("skipping {path}: {e}");
            }
        }
    }
    let engine = if analyzed {
        Ftsl::from_texts_analyzed(&texts, AnalysisConfig::english())
    } else {
        Ftsl::from_texts(&texts)
    };
    let stats = engine.index().stats();
    eprintln!(
        "indexed {} documents ({} terms, {} max positions/node)",
        engine.corpus().len(),
        stats.vocabulary,
        stats.pos_per_cnode
    );
    eprintln!("enter queries (:help for commands)");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut line = String::new();
    loop {
        eprint!("ftsl> ");
        line.clear();
        let Ok(n) = stdin.lock().read_line(&mut line) else {
            break;
        };
        if n == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        let result = dispatch(&engine, input, &names, &mut stdout);
        if let Err(e) = result {
            eprintln!("error: {e}");
        }
        if input == ":quit" {
            break;
        }
    }
}

fn dispatch(
    engine: &Ftsl,
    input: &str,
    names: &[String],
    out: &mut impl Write,
) -> Result<(), Box<dyn std::error::Error>> {
    if input == ":quit" {
        return Ok(());
    }
    if input == ":help" {
        writeln!(
            out,
            ":explain <q> | :rank <q> | :top <k> <q> | :stats | :quit"
        )?;
        return Ok(());
    }
    if input == ":stats" {
        let s = engine.index().stats();
        writeln!(
            out,
            "cnodes={} vocabulary={} pos_per_cnode={} entries_per_token={} pos_per_entry={}",
            s.cnodes, s.vocabulary, s.pos_per_cnode, s.entries_per_token, s.pos_per_entry
        )?;
        // Both physical list forms stay resident (compressed blocks serve
        // seeks and persistence, decoded views the reference evaluators) —
        // surface the dual-residency RAM price.
        writeln!(out, "memory: {}", engine.index().memory_footprint())?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":explain ") {
        writeln!(out, "{}", engine.explain(q)?)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":rank ") {
        let ranked = engine.search_ranked(q, RankModel::TfIdf)?;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", names[node.index()])?;
        }
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":top ") {
        let (k, q) = rest.split_once(' ').ok_or(":top needs <k> <query>")?;
        let k: usize = k.parse()?;
        let ranked = engine.search_top_k(q, RankModel::TfIdf, k)?;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", names[node.index()])?;
        }
        if let Some(c) = ranked.counters {
            writeln!(
                out,
                "[streamed: {} entries decoded, {} entries / {} blocks pruned]",
                c.entries, c.skipped, c.blocks_skipped
            )?;
        }
        return Ok(());
    }
    let results = engine.search(input)?;
    writeln!(
        out,
        "{} hit(s) [{} engine, {} class, {} entries / {} positions read]",
        results.len(),
        results.engine,
        results.class,
        results.counters.entries,
        results.counters.positions
    )?;
    for node in &results.nodes {
        writeln!(out, "  {}", names[node.index()])?;
    }
    Ok(())
}
