//! `ftsl-cli` — a small command-line search shell over the library.
//!
//! ```text
//! ftsl-cli [--analyzed] [--blocks-only] [--live] [<file>...]
//! ```
//!
//! Each file is indexed as one context node. `--blocks-only` serves from
//! the compressed blocks alone (single residency). `--live` starts the
//! **live engine** instead of a frozen index: documents can be added and
//! deleted at any time (`:add`, `:delete`), the write buffer can be sealed
//! (`:flush`), segments compacted (`:merge`), and `:stats` reports the
//! per-segment footprint, live-document ratio, and tombstone counts.
//!
//! Then type queries (BOOL/DIST/COMP syntax) on stdin, one per line.
//! Commands: `:explain <query>` (frozen mode), `:rank <query>`,
//! `:top <k> <query>`, `:stats`, `:quit`, and in live mode `:add <text>`,
//! `:delete <node>`, `:flush`, `:merge`.

use ftsl_core::{Ftsl, LiveConfig, LiveFtsl, RankModel, Residency};
use ftsl_index::AccessCounters;
use ftsl_model::analysis::AnalysisConfig;
use ftsl_model::NodeId;
use std::io::{BufRead, Write};

fn main() {
    let mut analyzed = false;
    let mut blocks_only = false;
    let mut live = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--analyzed" => analyzed = true,
            "--blocks-only" => blocks_only = true,
            "--live" => live = true,
            "--help" | "-h" => {
                eprintln!("usage: ftsl-cli [--analyzed] [--blocks-only] [--live] [<file>...]");
                return;
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() && !live {
        eprintln!("usage: ftsl-cli [--analyzed] [--blocks-only] [--live] [<file>...]");
        eprintln!("(a frozen index needs at least one file; --live may start empty)");
        std::process::exit(2);
    }
    if live && blocks_only {
        // Refuse rather than silently ignore: live segments are served
        // dual-resident today, so the flag would not do what it promises.
        eprintln!(
            "--blocks-only applies to the frozen index only (live segments are dual-resident)"
        );
        std::process::exit(2);
    }

    let mut texts = Vec::new();
    let mut names = Vec::new();
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                texts.push(text);
                names.push(path.clone());
            }
            Err(e) => {
                eprintln!("skipping {path}: {e}");
            }
        }
    }

    if live {
        run_live(&texts, names, analyzed);
    } else {
        run_frozen(&texts, names, analyzed, blocks_only);
    }
}

/// Read stdin lines and hand them to `handle` until EOF or `:quit`.
fn repl(mut handle: impl FnMut(&str) -> Result<(), Box<dyn std::error::Error>>) {
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        eprint!("ftsl> ");
        line.clear();
        let Ok(n) = stdin.lock().read_line(&mut line) else {
            break;
        };
        if n == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if let Err(e) = handle(input) {
            eprintln!("error: {e}");
        }
        if input == ":quit" {
            break;
        }
    }
}

fn run_frozen(texts: &[String], names: Vec<String>, analyzed: bool, blocks_only: bool) {
    let mut engine = if analyzed {
        Ftsl::from_texts_analyzed(texts, AnalysisConfig::english())
    } else {
        Ftsl::from_texts(texts)
    };
    if blocks_only {
        engine.set_residency(Residency::BlocksOnly);
    }
    let stats = engine.index().stats();
    eprintln!(
        "indexed {} documents ({} terms, {} max positions/node, {})",
        engine.corpus().len(),
        stats.vocabulary,
        stats.pos_per_cnode,
        engine.index().residency()
    );
    eprintln!("enter queries (:help for commands)");
    let mut stdout = std::io::stdout();
    let mut last_counters: Option<AccessCounters> = None;
    repl(|input| dispatch(&engine, input, &names, &mut stdout, &mut last_counters));
}

fn run_live(texts: &[String], names: Vec<String>, analyzed: bool) {
    let engine = if analyzed {
        LiveFtsl::from_texts_analyzed(texts, AnalysisConfig::english(), LiveConfig::default())
    } else {
        LiveFtsl::from_texts_with(texts, LiveConfig::default())
    };
    eprintln!(
        "live engine: {} seeded documents, background merge on (:help for commands)",
        texts.len()
    );
    let mut stdout = std::io::stdout();
    let mut last_counters: Option<AccessCounters> = None;
    repl(|input| dispatch_live(&engine, input, &names, &mut stdout, &mut last_counters));
}

/// Display handle for a global node id: the seeding file name while the id
/// falls in the seeded range, `node N` for documents added live.
fn node_name(names: &[String], node: NodeId) -> String {
    names
        .get(node.index())
        .cloned()
        .unwrap_or_else(|| format!("node {}", node.0))
}

fn print_last_counters(
    out: &mut impl Write,
    last_counters: &Option<AccessCounters>,
) -> std::io::Result<()> {
    match last_counters {
        Some(c) => writeln!(
            out,
            "last query: {} entries decoded, {} positions decoded, \
             {} positions consumed, {} entries / {} blocks / {} segments skipped",
            c.entries,
            c.positions_decoded,
            c.positions,
            c.skipped,
            c.blocks_skipped,
            c.segments_skipped
        ),
        None => writeln!(out, "last query: none yet"),
    }
}

fn dispatch(
    engine: &Ftsl,
    input: &str,
    names: &[String],
    out: &mut impl Write,
    last_counters: &mut Option<AccessCounters>,
) -> Result<(), Box<dyn std::error::Error>> {
    if input == ":quit" {
        return Ok(());
    }
    if input == ":help" {
        writeln!(
            out,
            ":explain <q> | :rank <q> | :top <k> <q> | :stats | :quit"
        )?;
        return Ok(());
    }
    if input == ":stats" {
        let s = engine.index().stats();
        writeln!(
            out,
            "cnodes={} vocabulary={} pos_per_cnode={} entries_per_token={} pos_per_entry={}",
            s.cnodes, s.vocabulary, s.pos_per_cnode, s.entries_per_token, s.pos_per_entry
        )?;
        writeln!(out, "residency: {}", engine.index().residency())?;
        // The footprint Display labels the numbers by residency: dual shows
        // compressed + decoded, blocks-only shows compressed + decode-cache.
        writeln!(out, "memory: {}", engine.index().memory_footprint())?;
        let c = engine.index().decode_cache_stats();
        writeln!(
            out,
            "decode cache: {} lists, {} hits / {} misses, {}B",
            c.lists, c.hits, c.misses, c.resident_bytes
        )?;
        print_last_counters(out, last_counters)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":explain ") {
        writeln!(out, "{}", engine.explain(q)?)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":rank ") {
        let ranked = engine.search_ranked(q, RankModel::TfIdf)?;
        // Exhaustive ranking reports no counters; clear the stale ones so
        // `:stats` never misattributes an older query's numbers.
        *last_counters = None;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":top ") {
        let (k, q) = rest.split_once(' ').ok_or(":top needs <k> <query>")?;
        let k: usize = k.parse()?;
        let ranked = engine.search_top_k(q, RankModel::TfIdf, k)?;
        // None on the exhaustive fallback path — recorded either way so
        // `:stats` reflects *this* query, not an older one.
        *last_counters = ranked.counters;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        if let Some(c) = ranked.counters {
            writeln!(
                out,
                "[streamed: {} entries decoded, {} entries / {} blocks pruned, \
                 {} segments skipped]",
                c.entries, c.skipped, c.blocks_skipped, c.segments_skipped
            )?;
        }
        return Ok(());
    }
    let results = engine.search(input)?;
    *last_counters = Some(results.counters);
    writeln!(
        out,
        "{} hit(s) [{} engine, {} class, {} entries read, {} positions decoded]",
        results.len(),
        results.engine,
        results.class,
        results.counters.entries,
        results.counters.positions_decoded
    )?;
    for node in &results.nodes {
        writeln!(out, "  {}", node_name(names, *node))?;
    }
    Ok(())
}

fn dispatch_live(
    engine: &LiveFtsl,
    input: &str,
    names: &[String],
    out: &mut impl Write,
    last_counters: &mut Option<AccessCounters>,
) -> Result<(), Box<dyn std::error::Error>> {
    if input == ":quit" {
        return Ok(());
    }
    if input == ":help" {
        writeln!(
            out,
            ":add <text> | :delete <node> | :flush | :merge | :rank <q> | \
             :top <k> <q> | :stats | :quit"
        )?;
        return Ok(());
    }
    if let Some(text) = input.strip_prefix(":add ") {
        let node = engine.add(text);
        writeln!(out, "added node {}", node.0)?;
        return Ok(());
    }
    if let Some(id) = input.strip_prefix(":delete ") {
        let node = NodeId(id.trim().parse()?);
        if engine.delete(node) {
            writeln!(out, "deleted node {}", node.0)?;
        } else {
            writeln!(out, "node {} not found (or already deleted)", node.0)?;
        }
        return Ok(());
    }
    if input == ":flush" {
        let sealed = engine.flush();
        writeln!(
            out,
            "{}",
            if sealed {
                "write buffer sealed into a new segment"
            } else {
                "write buffer empty, nothing to flush"
            }
        )?;
        return Ok(());
    }
    if input == ":merge" {
        let merged = engine.merge();
        writeln!(
            out,
            "{}",
            if merged {
                "segments compacted"
            } else {
                "nothing to compact"
            }
        )?;
        return Ok(());
    }
    if input == ":stats" {
        let snapshot = engine.snapshot();
        let reports = snapshot.segment_reports();
        writeln!(
            out,
            "{} live docs, {} tombstones, {} segment(s), version {}",
            snapshot.live_doc_count(),
            snapshot.tombstone_count(),
            reports.len(),
            snapshot.version()
        )?;
        let mut total_bytes = 0usize;
        for r in &reports {
            total_bytes += r.resident_bytes;
            writeln!(
                out,
                "  segment {:>3}: {:>6} docs, {:>5} tombstones, live ratio {:.2}, {:>9}B",
                r.id,
                r.docs,
                r.tombstones,
                r.live_ratio(),
                r.resident_bytes
            )?;
        }
        writeln!(
            out,
            "  buffer: {} docs; total resident {}B",
            engine.live_index().buffered_docs(),
            total_bytes
        )?;
        print_last_counters(out, last_counters)?;
        return Ok(());
    }
    if let Some(q) = input.strip_prefix(":rank ") {
        let ranked = engine.search_ranked(q, RankModel::TfIdf)?;
        *last_counters = None;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        return Ok(());
    }
    if let Some(rest) = input.strip_prefix(":top ") {
        let (k, q) = rest.split_once(' ').ok_or(":top needs <k> <query>")?;
        let k: usize = k.parse()?;
        let ranked = engine.search_top_k(q, RankModel::TfIdf, k)?;
        *last_counters = ranked.counters;
        for (node, score) in &ranked.hits {
            writeln!(out, "{score:.5}  {}", node_name(names, *node))?;
        }
        if let Some(c) = ranked.counters {
            writeln!(
                out,
                "[streamed: {} entries decoded, {} entries / {} blocks pruned, \
                 {} segments skipped]",
                c.entries, c.skipped, c.blocks_skipped, c.segments_skipped
            )?;
        }
        return Ok(());
    }
    let results = engine.search(input)?;
    *last_counters = Some(results.counters);
    writeln!(
        out,
        "{} hit(s) [{} engine, {} class, {} entries read across {} segment(s)]",
        results.len(),
        results.engine,
        results.class,
        results.counters.entries,
        engine.snapshot().num_segments()
    )?;
    for node in &results.nodes {
        writeln!(out, "  {}", node_name(names, *node))?;
    }
    Ok(())
}
