//! # ftsl-core — the high-level engine facade
//!
//! One type, [`Ftsl`], ties the whole reproduction together: index a corpus,
//! parse a query in any of the paper's languages (BOOL / DIST / COMP),
//! classify it in the Figure 3 hierarchy, evaluate it with the cheapest
//! sound engine, and optionally rank results with the Section 3 scoring
//! framework.
//!
//! ```
//! use ftsl_core::Ftsl;
//!
//! let engine = Ftsl::from_texts(&[
//!     "usability of a software measures how well the software supports users",
//!     "an efficient algorithm for task completion",
//! ]);
//! let hits = engine.search("'software' AND NOT 'efficient'").unwrap();
//! assert_eq!(hits.nodes.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod live;
pub mod results;

pub use error::FtslError;
pub use ftsl_exec::snapshot::ExecScratch;
pub use ftsl_exec::{PairQuery, ScoredOutput, ScoredPath};
pub use ftsl_index::{LiveConfig, Residency};
pub use live::LiveFtsl;
pub use results::{Ranked, SearchResults};

use ftsl_calculus::CalcQuery;
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_index::{IndexBuilder, InvertedIndex};
use ftsl_lang::rewrite::{map_tokens, Thesaurus};
use ftsl_lang::{classify, lower, parse, LanguageClass, Mode, SurfaceQuery};
use ftsl_model::analysis::AnalysisConfig;
use ftsl_model::{Corpus, Tokenizer, TokenizerConfig};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::{PraModel, ScoreStats, ScoredEvaluator, TfIdfModel};

/// Which scoring model ranks results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankModel {
    /// Section 3.1: TF-IDF with score conservation.
    TfIdf,
    /// Section 3.2: probabilistic relational algebra.
    Pra,
}

/// The full-text search engine facade.
pub struct Ftsl {
    corpus: Corpus,
    index: InvertedIndex,
    registry: PredicateRegistry,
    stats: ScoreStats,
    options: ExecOptions,
    analysis: AnalysisConfig,
    thesaurus: Thesaurus,
}

impl Ftsl {
    /// Build an engine over raw document texts.
    pub fn from_texts<S: AsRef<str>>(texts: &[S]) -> Self {
        Self::from_corpus(Corpus::from_texts(texts))
    }

    /// Build an engine over raw texts with stemming/stop-word analysis (the
    /// paper's announced extensions). The same analysis is applied to query
    /// tokens so documents and queries agree on index terms.
    pub fn from_texts_analyzed<S: AsRef<str>>(texts: &[S], analysis: AnalysisConfig) -> Self {
        let tokenizer = Tokenizer::with_config(TokenizerConfig {
            analysis: analysis.clone(),
            ..Default::default()
        });
        let mut corpus = Corpus::new();
        for text in texts {
            corpus.add_text_with(&tokenizer, text.as_ref());
        }
        let mut engine = Self::from_corpus(corpus);
        engine.analysis = analysis;
        engine
    }

    /// Build an engine over an existing corpus.
    pub fn from_corpus(corpus: Corpus) -> Self {
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        Ftsl {
            corpus,
            index,
            registry: PredicateRegistry::with_builtins(),
            stats,
            options: ExecOptions::default(),
            analysis: AnalysisConfig::none(),
            thesaurus: Thesaurus::new(),
        }
    }

    /// Install a thesaurus: query tokens are expanded into the disjunction
    /// of their synonyms before evaluation.
    pub fn set_thesaurus(&mut self, thesaurus: Thesaurus) {
        self.thesaurus = thesaurus;
    }

    /// Apply query-side rewrites: thesaurus expansion, then the index's
    /// token analysis on every literal (including expansion results).
    fn rewrite_query(&self, surface: &SurfaceQuery) -> SurfaceQuery {
        let expanded = self.thesaurus.expand(surface);
        map_tokens(&expanded, &|t| self.analysis.analyze(t))
    }

    /// Replace execution options (advance mode, NPRED strategy).
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Switch the index residency policy. [`Residency::BlocksOnly`] drops
    /// the decoded list views — RAM shrinks to the compressed blocks plus a
    /// small LRU decode cache — and every engine (BOOL, PPRED, NPRED, COMP,
    /// scored top-k) transparently evaluates on the compressed layout;
    /// results are bit-identical to dual residency. [`Residency::Dual`]
    /// rebuilds the decoded views from the blocks and moves evaluation back
    /// onto them.
    pub fn set_residency(&mut self, residency: Residency) {
        if residency == self.index.residency() {
            // No-op call: in particular, don't clobber an explicitly
            // configured `ExecOptions::layout`.
            return;
        }
        self.index.set_residency(residency);
        // Keep the options in step with the residency (the engines would
        // resolve a stale layout correctly via `effective_layout`, but a
        // Dual round-trip must not stay parked on the slower Blocks scans
        // while paying decoded-view RAM).
        self.options.layout = match residency {
            Residency::BlocksOnly => ftsl_exec::build::IndexLayout::Blocks,
            Residency::Dual => ftsl_exec::build::IndexLayout::Decoded,
        };
    }

    /// Builder-style [`Self::set_residency`].
    pub fn with_residency(mut self, residency: Residency) -> Self {
        self.set_residency(residency);
        self
    }

    /// The indexed corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The predicate registry (extensible: register your own predicates
    /// before issuing queries).
    pub fn registry(&self) -> &PredicateRegistry {
        &self.registry
    }

    /// Mutable access to the predicate registry.
    pub fn registry_mut(&mut self) -> &mut PredicateRegistry {
        &mut self.registry
    }

    /// Corpus scoring statistics.
    pub fn score_stats(&self) -> &ScoreStats {
        &self.stats
    }

    /// Run a query (COMP syntax, which subsumes BOOL and DIST) with
    /// automatic engine dispatch.
    pub fn search(&self, query: &str) -> Result<SearchResults, FtslError> {
        self.search_with(query, Mode::Comp, EngineKind::Auto)
    }

    /// Run a query in an explicit language mode with an explicit engine.
    pub fn search_with(
        &self,
        query: &str,
        mode: Mode,
        engine: EngineKind,
    ) -> Result<SearchResults, FtslError> {
        let surface = self.rewrite_query(&parse(query, mode)?);
        let executor =
            Executor::with_options(&self.corpus, &self.index, &self.registry, self.options);
        let output = executor.run_surface(&surface, engine)?;
        Ok(SearchResults {
            nodes: output.nodes,
            counters: output.counters,
            engine: output.engine,
            class: output.class,
            trace: output.trace,
        })
    }

    /// Run a query and rank the results with the Section 3 scoring
    /// framework (materialized scored-algebra evaluation).
    pub fn search_ranked(&self, query: &str, model: RankModel) -> Result<Ranked, FtslError> {
        let surface = self.rewrite_query(&parse(query, Mode::Comp)?);
        self.ranked_surface(&surface, model)
    }

    /// Exhaustive scored-algebra ranking of an already-rewritten surface
    /// query.
    fn ranked_surface(
        &self,
        surface: &SurfaceQuery,
        model: RankModel,
    ) -> Result<Ranked, FtslError> {
        let expr = lower(surface, &self.registry)?;
        let calc = CalcQuery::new(expr);
        let alg = ftsl_algebra::from_calculus::query_to_algebra(&calc, &self.registry)
            .map_err(|e| FtslError::Internal(e.to_string()))?;
        let scored = match model {
            RankModel::TfIdf => {
                let tokens = query_tokens(surface);
                let m = TfIdfModel::for_query(&tokens, &self.corpus, &self.stats);
                ScoredEvaluator::new(&self.corpus, &self.index, &self.registry, &self.stats, m)
                    .rank(&alg)
            }
            RankModel::Pra => {
                let m = PraModel::new(&self.corpus, &self.stats);
                ScoredEvaluator::new(&self.corpus, &self.index, &self.registry, &self.stats, m)
                    .rank(&alg)
            }
        }
        .map_err(|e| FtslError::Internal(e.to_string()))?;
        Ok(Ranked {
            hits: scored,
            model,
            counters: None,
            trace: None,
        })
    }

    /// Ranked search truncated to the `k` best hits — the conclusion's
    /// "top-k techniques", now implemented for real: BOOL-shaped queries
    /// stream posting entries through a bounded heap with MaxScore/block-max
    /// pruning (flat disjunctions under either model, arbitrary
    /// `AND`/`OR`/`NOT` trees under PRA's Section 5.3 operator scoring),
    /// decoding only the fraction of the index the score bounds cannot rule
    /// out; the returned [`Ranked::counters`] say exactly how much. Queries
    /// the streaming engine cannot rank (quantified COMP shapes, TF-IDF
    /// over non-disjunctions) fall back to exhaustive scored-algebra
    /// ranking plus truncation.
    pub fn search_top_k(
        &self,
        query: &str,
        model: RankModel,
        k: usize,
    ) -> Result<Ranked, FtslError> {
        let surface = self.rewrite_query(&parse(query, Mode::Comp)?);
        // Decide rankability by shape *before* building any model, so
        // non-streamable queries pay nothing extra.
        let streamable = match model {
            RankModel::TfIdf => ftsl_exec::scored::flat_disjunction(&surface).is_some(),
            RankModel::Pra => classify(&surface, &self.registry) <= LanguageClass::Bool,
        };
        if streamable {
            let executor =
                Executor::with_options(&self.corpus, &self.index, &self.registry, self.options);
            let spec = ftsl_exec::ScoredTopK { k };
            let streamed = match model {
                RankModel::TfIdf => {
                    let tokens = query_tokens(&surface);
                    let m = TfIdfModel::for_query(&tokens, &self.corpus, &self.stats);
                    executor.run_top_k(
                        &surface,
                        spec,
                        &self.stats,
                        &ftsl_exec::ScoreModel::TfIdf(&m),
                    )
                }
                RankModel::Pra => {
                    let m = PraModel::new(&self.corpus, &self.stats);
                    executor.run_top_k(&surface, spec, &self.stats, &ftsl_exec::ScoreModel::Pra(&m))
                }
            };
            if let Ok(out) = streamed {
                return Ok(Ranked {
                    hits: out.hits,
                    model,
                    counters: Some(out.counters),
                    trace: out.trace,
                });
            }
        }
        let mut ranked = self.ranked_surface(&surface, model)?;
        ranked.hits.truncate(k);
        Ok(ranked)
    }

    /// Proximity-ranked NEAR/phrase search: documents where `first` and
    /// `second` co-occur within `bound` token positions — in either
    /// order, or strictly `first`-before-`second` when `ordered` — ranked
    /// by [`ftsl_scoring::closeness`] of the smallest qualifying gap
    /// (adjacent pair scores 1.0). Resolves from the word-pair auxiliary
    /// index when both tokens are covered, skipping pair blocks whose
    /// `min_gap` block-max bound cannot beat the current k-th score, and
    /// falls back to position intersection otherwise.
    pub fn search_near_top_k(
        &self,
        first: &str,
        second: &str,
        bound: u32,
        ordered: bool,
        k: usize,
    ) -> ftsl_exec::ScoredOutput {
        use ftsl_exec::{ScoredOutput, ScoredPath};
        let mut topk = ftsl_scoring::TopK::new(k);
        let (Some(first), Some(second)) =
            (self.analysis.analyze(first), self.analysis.analyze(second))
        else {
            return ScoredOutput {
                hits: Vec::new(),
                counters: ftsl_index::AccessCounters::new(),
                path: ScoredPath::PairProximity,
                trace: None,
            };
        };
        let q = ftsl_exec::PairQuery {
            first,
            second,
            directed: ordered,
            bound,
        };
        let counters =
            ftsl_exec::pairscan::near_topk_into(&q, &self.corpus, &self.index, &mut topk, Some);
        ScoredOutput {
            hits: topk.drain_ranked(),
            counters,
            path: ScoredPath::PairProximity,
            trace: None,
        }
    }

    /// Explain how a query would be executed: language class, engine, and
    /// the operator tree.
    pub fn explain(&self, query: &str) -> Result<String, FtslError> {
        let surface = self.rewrite_query(&parse(query, Mode::Comp)?);
        let class = classify(&surface, &self.registry);
        let expr = lower(&surface, &self.registry)?;
        let mut out = String::new();
        out.push_str(&format!("language class: {class}\n"));
        match class {
            LanguageClass::BoolNoNeg | LanguageClass::Bool => {
                out.push_str("engine: BOOL (doc-id list merges)\n");
            }
            LanguageClass::Dist | LanguageClass::Ppred | LanguageClass::Npred => {
                let allow_negative = class == LanguageClass::Npred;
                let engine = if allow_negative { "NPRED" } else { "PPRED" };
                out.push_str(&format!("engine: {engine} (streaming cursors)\n"));
                match ftsl_exec::plan::build_plan(&expr, &self.registry, allow_negative) {
                    Ok(plan) => {
                        out.push_str("plan:\n");
                        out.push_str(&plan.root.render_tree(&self.registry));
                    }
                    Err(e) => out.push_str(&format!("(streaming plan unavailable: {e})\n")),
                }
            }
            LanguageClass::Comp => {
                out.push_str("engine: COMP (materialized algebra)\n");
                let calc = CalcQuery::new(expr);
                if let Ok(alg) =
                    ftsl_algebra::from_calculus::query_to_algebra(&calc, &self.registry)
                {
                    out.push_str("algebra:\n");
                    out.push_str(&alg.render_tree(&self.registry));
                }
            }
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: actually run the query with tracing enabled and
    /// render the recorded span tree — per-stage wall time, counter
    /// deltas, and pair-path vs position-intersection fallback
    /// attribution — followed by the index residency footprint. Use
    /// [`Self::explain`] for the static (no-execution) plan.
    pub fn explain_analyze(&self, query: &str) -> Result<String, FtslError> {
        let mut tb = ftsl_obs::TraceBuilder::new();
        let parse_span = tb.open("parse+rewrite");
        let surface = self.rewrite_query(&parse(query, Mode::Comp)?);
        tb.close(parse_span);
        let class = classify(&surface, &self.registry);
        let mut options = self.options;
        options.trace = true;
        let executor = Executor::with_options(&self.corpus, &self.index, &self.registry, options);
        let exec_span = tb.open("execute");
        let mut output = executor.run_surface(&surface, EngineKind::Auto)?;
        if let Some(t) = output.trace.take() {
            tb.adopt(*t);
        }
        tb.close(exec_span);
        let trace = tb.finish();
        let mut out = String::new();
        out.push_str(&format!("language class: {class}\n"));
        out.push_str(&format!("engine: {}\n", output.engine));
        out.push_str(&format!("hits: {}\n", output.nodes.len()));
        out.push_str("profile:\n");
        out.push_str(&trace.render());
        out.push_str(&format!("index: {}\n", self.index.memory_footprint()));
        Ok(out)
    }
}

/// Collect the string tokens a surface query mentions (for TF-IDF weights).
pub(crate) fn query_tokens(surface: &ftsl_lang::SurfaceQuery) -> Vec<String> {
    use ftsl_lang::{SurfaceQuery as S, TokenArg};
    fn walk(q: &S, out: &mut Vec<String>) {
        match q {
            S::Lit(t) => out.push(t.clone()),
            S::VarHas(_, t) => out.push(t.clone()),
            S::Dist(a, b, _) => {
                for arg in [a, b] {
                    if let TokenArg::Lit(t) = arg {
                        out.push(t.clone());
                    }
                }
            }
            S::Any | S::VarHasAny(_) | S::Pred { .. } => {}
            S::Not(x) => walk(x, out),
            S::And(x, y) | S::Or(x, y) => {
                walk(x, out);
                walk(y, out);
            }
            S::Some(_, x) | S::Every(_, x) => walk(x, out),
        }
    }
    let mut out = Vec::new();
    walk(surface, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_exec::engine::EngineUsed;

    fn engine() -> Ftsl {
        Ftsl::from_texts(&[
            "usability of a software measures how well the software supports users",
            "an efficient algorithm for task completion",
            "software task completion with efficient usability testing",
            "",
        ])
    }

    #[test]
    fn basic_search_dispatches_to_bool() {
        let e = engine();
        let r = e.search("'software' AND 'usability'").unwrap();
        assert_eq!(r.node_ids(), vec![0, 2]);
        assert_eq!(r.engine, EngineUsed::Bool);
    }

    #[test]
    fn comp_query_runs_streaming() {
        let e = engine();
        let r = e
            .search(
                "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' \
                 AND ordered(p1,p2) AND distance(p1,p2,0))",
            )
            .unwrap();
        assert_eq!(r.node_ids(), vec![1, 2]);
        assert_eq!(r.engine, EngineUsed::Ppred);
    }

    #[test]
    fn ranked_search_orders_by_score() {
        let e = engine();
        let r = e.search_ranked("'usability'", RankModel::TfIdf).unwrap();
        assert_eq!(r.hits.len(), 2);
        assert!(r.hits[0].1 >= r.hits[1].1);
        let r = e
            .search_ranked("'software' AND 'usability'", RankModel::Pra)
            .unwrap();
        assert!(!r.hits.is_empty());
        for (_, s) in &r.hits {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn explain_reports_class_engine_and_plan() {
        let e = engine();
        let text = e
            .explain(
                "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' AND samepara(p1,p2))",
            )
            .unwrap();
        assert!(text.contains("PPRED"));
        assert!(text.contains("select samepara"));
        let text = e.explain("EVERY p1 (p1 HAS 'software')").unwrap();
        assert!(text.contains("COMP"));
    }

    #[test]
    fn top_k_streams_bool_queries_and_truncates_the_rest() {
        let e = engine();
        // Flat disjunction: streaming path, counters reported, and the hits
        // agree with exhaustive ranking (Theorem 2 ties both to classic).
        let streamed = e
            .search_top_k("'software' OR 'usability'", RankModel::TfIdf, 2)
            .unwrap();
        assert!(
            streamed.counters.is_some(),
            "should take the streaming path"
        );
        assert_eq!(streamed.hits.len(), 2);
        let exhaustive = e
            .search_ranked("'software' OR 'usability'", RankModel::TfIdf)
            .unwrap();
        for (s, x) in streamed.hits.iter().zip(&exhaustive.hits) {
            assert_eq!(s.0, x.0);
            assert!((s.1 - x.1).abs() < 1e-9);
        }
        // PRA streams full BOOL trees.
        let pra = e
            .search_top_k("'software' AND NOT 'efficient'", RankModel::Pra, 3)
            .unwrap();
        assert!(pra.counters.is_some());
        assert!(!pra.hits.is_empty());
        // COMP-shaped queries fall back to exhaustive rank-then-truncate.
        let comp = e
            .search_top_k("SOME p1 (p1 HAS 'software')", RankModel::TfIdf, 1)
            .unwrap();
        assert!(comp.counters.is_none(), "COMP shape cannot stream");
        assert_eq!(comp.hits.len(), 1);
    }

    #[test]
    fn blocks_only_residency_serves_every_engine_identically() {
        let dual = engine();
        let mut lean = engine();
        lean.set_residency(Residency::BlocksOnly);
        let fp = lean.index().memory_footprint();
        assert_eq!(fp.decoded, 0);
        assert!(fp.total() < dual.index().memory_footprint().total());
        for q in [
            "'software' AND 'usability'",     // BOOL
            "'software' AND NOT 'efficient'", // BOOL w/ NOT
            "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' \
             AND ordered(p1,p2) AND distance(p1,p2,0))", // PPRED
            "EVERY p1 (p1 HAS 'software')",   // COMP
        ] {
            assert_eq!(
                dual.search(q).unwrap().node_ids(),
                lean.search(q).unwrap().node_ids(),
                "query {q}"
            );
        }
        // Ranked paths work too (exhaustive oracle decodes via the cache).
        let a = dual.search_ranked("'usability'", RankModel::TfIdf).unwrap();
        let b = lean.search_ranked("'usability'", RankModel::TfIdf).unwrap();
        assert_eq!(a.hits.len(), b.hits.len());
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!(x.0, y.0);
            assert!((x.1 - y.1).abs() < 1e-12);
        }
        let t = lean
            .search_top_k("'software' OR 'usability'", RankModel::TfIdf, 2)
            .unwrap();
        assert_eq!(t.hits.len(), 2);
        // Round-trip back to dual residency: decoded views return and
        // queries keep agreeing.
        lean.set_residency(Residency::Dual);
        assert!(lean.index().memory_footprint().decoded > 0);
        assert_eq!(
            lean.search("'software' AND 'usability'")
                .unwrap()
                .node_ids(),
            dual.search("'software' AND 'usability'")
                .unwrap()
                .node_ids(),
        );
    }

    #[test]
    fn parse_errors_surface_cleanly() {
        let e = engine();
        assert!(matches!(e.search("'unterminated"), Err(FtslError::Lang(_))));
        assert!(matches!(e.search("AND AND"), Err(FtslError::Lang(_))));
    }

    #[test]
    fn empty_corpus_is_fine() {
        let e = Ftsl::from_texts::<&str>(&[]);
        let r = e.search("'anything'").unwrap();
        assert!(r.nodes.is_empty());
    }
}
