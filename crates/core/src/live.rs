//! The live engine facade: mutations, snapshot reads, and every search
//! path of [`crate::Ftsl`] over a dynamically maintained collection.
//!
//! [`LiveFtsl`] wraps an [`ftsl_index::LiveIndex`] (write buffer, sealed
//! segments, tombstones, background tiered merge) and serves queries from
//! point-in-time snapshots. Results are identical — bit-identical, the
//! differential suite checks — to a [`crate::Ftsl`] rebuilt from the
//! surviving documents: the engines run unchanged per segment, scoring uses
//! merged collection statistics, and tombstoned documents are filtered
//! inside the streaming evaluations.

use crate::error::FtslError;
use crate::results::{Ranked, SearchResults};
use crate::{query_tokens, RankModel};
use ftsl_calculus::CalcQuery;
use ftsl_exec::engine::{EngineKind, ExecOptions};
use ftsl_exec::snapshot::{ExecScratch, SnapshotExecutor};
use ftsl_exec::{PairQuery, ScoredOutput, ScoredPath};
use ftsl_index::{LiveConfig, LiveIndex, SegmentReport, Snapshot};
use ftsl_lang::rewrite::{map_tokens, Thesaurus};
use ftsl_lang::{classify, lower, parse, LanguageClass, Mode, SurfaceQuery};
use ftsl_model::analysis::AnalysisConfig;
use ftsl_model::{Corpus, NodeId, Tokenizer, TokenizerConfig};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::topk::sort_ranked;
use ftsl_scoring::{ScoredEvaluator, SnapshotStats};
use std::sync::{Arc, Mutex};

/// Snapshot + derived statistics cached for one mutation version, so a
/// read-heavy workload pays for snapshot assembly and statistics merging
/// once per write, not once per query.
struct CachedView {
    version: u64,
    snapshot: Snapshot,
    stats: Option<Arc<SnapshotStats>>,
}

/// The live full-text engine: `add`/`delete` documents at any time, search
/// the current (or a pinned) snapshot with any of the paper's languages and
/// scoring models.
///
/// ```
/// use ftsl_core::{LiveFtsl, RankModel};
///
/// let engine = LiveFtsl::new();
/// let a = engine.add("usability of a software measures how well it works");
/// engine.add("an efficient algorithm for task completion");
/// let hits = engine.search("'software' AND 'usability'").unwrap();
/// assert_eq!(hits.node_ids(), vec![a.0]);
/// engine.delete(a);
/// assert!(engine.search("'software'").unwrap().nodes.is_empty());
/// ```
pub struct LiveFtsl {
    live: LiveIndex,
    registry: PredicateRegistry,
    options: ExecOptions,
    analysis: AnalysisConfig,
    thesaurus: Thesaurus,
    cache: Mutex<Option<CachedView>>,
}

impl Default for LiveFtsl {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveFtsl {
    /// An empty live engine with default configuration (background merging
    /// on).
    pub fn new() -> Self {
        Self::with_config(LiveConfig::default())
    }

    /// An empty live engine with explicit index configuration.
    pub fn with_config(config: LiveConfig) -> Self {
        Self::assemble(LiveIndex::with_config(config), AnalysisConfig::none())
    }

    /// Seed from existing texts (sealed as the first segment), then accept
    /// live traffic.
    pub fn from_texts<S: AsRef<str>>(texts: &[S]) -> Self {
        Self::from_texts_with(texts, LiveConfig::default())
    }

    /// [`Self::from_texts`] with explicit index configuration.
    pub fn from_texts_with<S: AsRef<str>>(texts: &[S], config: LiveConfig) -> Self {
        Self::assemble(
            LiveIndex::from_corpus_with(Corpus::from_texts(texts), config),
            AnalysisConfig::none(),
        )
    }

    /// Seed from texts run through the stemming/stop-word analysis
    /// pipeline; later [`Self::add`]s and query tokens get the same
    /// treatment.
    pub fn from_texts_analyzed<S: AsRef<str>>(
        texts: &[S],
        analysis: AnalysisConfig,
        config: LiveConfig,
    ) -> Self {
        let tokenizer = Tokenizer::with_config(TokenizerConfig {
            analysis: analysis.clone(),
            ..Default::default()
        });
        let mut corpus = Corpus::new();
        for text in texts {
            corpus.add_text_with(&tokenizer, text.as_ref());
        }
        let live = LiveIndex::from_corpus_with(corpus, config).with_tokenizer(tokenizer);
        Self::assemble(live, analysis)
    }

    fn assemble(live: LiveIndex, analysis: AnalysisConfig) -> Self {
        LiveFtsl {
            live,
            registry: PredicateRegistry::with_builtins(),
            options: ExecOptions::default(),
            analysis,
            thesaurus: Thesaurus::new(),
            cache: Mutex::new(None),
        }
    }

    /// Replace execution options (layout, advance mode, NPRED strategy).
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Install a thesaurus: query tokens expand into synonym disjunctions
    /// before evaluation, exactly as on the frozen engine.
    pub fn set_thesaurus(&mut self, thesaurus: Thesaurus) {
        self.thesaurus = thesaurus;
    }

    /// The underlying live index (flush/merge policy, version counter).
    pub fn live_index(&self) -> &LiveIndex {
        &self.live
    }

    /// The current mutation version — bumped by every add/delete/flush/
    /// merge. A result cached against a version is stale exactly when this
    /// moves; the serving layer's result cache keys on it.
    pub fn version(&self) -> u64 {
        self.live.version()
    }

    /// The predicate registry.
    pub fn registry(&self) -> &PredicateRegistry {
        &self.registry
    }

    /// Mutable access to the predicate registry (register custom
    /// predicates before querying).
    pub fn registry_mut(&mut self) -> &mut PredicateRegistry {
        &mut self.registry
    }

    // ── mutations ────────────────────────────────────────────────────────

    /// Add one document; visible to every snapshot taken afterwards.
    /// Returns its global node id (stable for the document's lifetime).
    pub fn add(&self, text: &str) -> NodeId {
        self.live.add_document(text)
    }

    /// Tombstone a document by global node id; `false` if unknown or
    /// already deleted.
    pub fn delete(&self, node: NodeId) -> bool {
        self.live.delete_node(node)
    }

    /// Seal the write buffer into an immutable segment; `false` when the
    /// buffer was empty.
    pub fn flush(&self) -> bool {
        self.live.flush()
    }

    /// Compact every sealed segment into one, reclaiming tombstones;
    /// `false` when there was nothing to compact.
    pub fn merge(&self) -> bool {
        self.live.merge_all()
    }

    // ── snapshot reads ───────────────────────────────────────────────────

    /// The current point-in-time view (cached per mutation version). Hold
    /// it to pin a consistent collection across queries while writes
    /// continue.
    pub fn snapshot(&self) -> Snapshot {
        let mut cache = self.cache.lock().expect("live facade cache poisoned");
        if let Some(c) = &*cache {
            if c.version == self.live.version() {
                return c.snapshot.clone();
            }
        }
        let snapshot = self.live.snapshot();
        *cache = Some(CachedView {
            version: snapshot.version(),
            snapshot: snapshot.clone(),
            stats: None,
        });
        snapshot
    }

    /// Merged scoring statistics for a snapshot (cached when `snapshot` is
    /// the current version's).
    pub fn snapshot_stats(&self, snapshot: &Snapshot) -> Arc<SnapshotStats> {
        let mut cache = self.cache.lock().expect("live facade cache poisoned");
        if let Some(c) = &mut *cache {
            if c.version == snapshot.version() {
                if let Some(stats) = &c.stats {
                    return Arc::clone(stats);
                }
                let stats = Arc::new(SnapshotStats::compute(snapshot));
                c.stats = Some(Arc::clone(&stats));
                return stats;
            }
        }
        Arc::new(SnapshotStats::compute(snapshot))
    }

    /// Apply query-side rewrites (thesaurus, analysis) — same pipeline as
    /// the frozen engine.
    fn rewrite_query(&self, surface: &SurfaceQuery) -> SurfaceQuery {
        let expanded = self.thesaurus.expand(surface);
        map_tokens(&expanded, &|t| self.analysis.analyze(t))
    }

    /// Run a query (COMP syntax subsumes BOOL and DIST) on the current
    /// snapshot with automatic engine dispatch. Node ids in the result are
    /// *global* ids, as handed out by [`Self::add`].
    pub fn search(&self, query: &str) -> Result<SearchResults, FtslError> {
        self.search_with(query, Mode::Comp, EngineKind::Auto)
    }

    /// Run a query in an explicit language mode with an explicit engine.
    pub fn search_with(
        &self,
        query: &str,
        mode: Mode,
        engine: EngineKind,
    ) -> Result<SearchResults, FtslError> {
        let surface = self.rewrite_query(&parse(query, mode)?);
        let snapshot = self.snapshot();
        let exec = SnapshotExecutor::with_options(&snapshot, &self.registry, self.options);
        let output = exec.run_surface(&surface, engine)?;
        Ok(SearchResults {
            nodes: output.nodes,
            counters: output.counters,
            engine: output.engine,
            class: output.class,
            trace: output.trace,
        })
    }

    /// Exhaustively rank the current snapshot's matches under a scoring
    /// model (per-segment scored-algebra evaluation with merged corpus
    /// statistics).
    pub fn search_ranked(&self, query: &str, model: RankModel) -> Result<Ranked, FtslError> {
        let surface = self.rewrite_query(&parse(query, Mode::Comp)?);
        let snapshot = self.snapshot();
        let stats = self.snapshot_stats(&snapshot);
        self.ranked_surface(&surface, model, &snapshot, &stats)
    }

    fn ranked_surface(
        &self,
        surface: &SurfaceQuery,
        model: RankModel,
        snapshot: &Snapshot,
        stats: &SnapshotStats,
    ) -> Result<Ranked, FtslError> {
        let expr = lower(surface, &self.registry)?;
        let calc = CalcQuery::new(expr);
        let alg = ftsl_algebra::from_calculus::query_to_algebra(&calc, &self.registry)
            .map_err(|e| FtslError::Internal(e.to_string()))?;
        let tfidf = matches!(model, RankModel::TfIdf)
            .then(|| stats.tfidf_model(&query_tokens(surface), snapshot));
        let pra = matches!(model, RankModel::Pra).then(|| stats.pra_model(snapshot));
        let mut hits: Vec<(NodeId, f64)> = Vec::new();
        for (i, seg) in snapshot.segments().iter().enumerate() {
            let data = seg.data();
            let seg_stats = stats.segment(i);
            let scored = match model {
                RankModel::TfIdf => ScoredEvaluator::new(
                    data.corpus(),
                    data.index(),
                    &self.registry,
                    seg_stats,
                    tfidf.clone().expect("model built for TfIdf"),
                )
                .rank(&alg),
                RankModel::Pra => ScoredEvaluator::new(
                    data.corpus(),
                    data.index(),
                    &self.registry,
                    seg_stats,
                    pra.clone().expect("model built for Pra"),
                )
                .rank(&alg),
            }
            .map_err(|e| FtslError::Internal(e.to_string()))?;
            hits.extend(
                scored
                    .iter()
                    .filter(|(n, _)| seg.deletes().is_live(n.index()))
                    .map(|&(n, s)| (data.global_of(n.index()), s)),
            );
        }
        sort_ranked(&mut hits);
        Ok(Ranked {
            hits,
            model,
            counters: None,
            trace: None,
        })
    }

    /// Streaming top-k over the current snapshot: one bounded heap and one
    /// score threshold shared across every segment's MaxScore/block-max
    /// pruned, tombstone-filtered evaluation. Segments are visited in
    /// descending impact-bound order so later ones start against an
    /// already-tight threshold; a segment whose whole bound cannot beat the
    /// current k-th score is skipped outright
    /// (`AccessCounters::segments_skipped`). Falls back to exhaustive
    /// rank-then-truncate for shapes the streaming engine cannot rank
    /// (same dispatch as [`crate::Ftsl::search_top_k`]).
    pub fn search_top_k(
        &self,
        query: &str,
        model: RankModel,
        k: usize,
    ) -> Result<Ranked, FtslError> {
        self.search_top_k_with(query, model, k, &mut ExecScratch::new())
    }

    /// [`Self::search_top_k`] threading caller-owned reusable evaluation
    /// state through the streaming engine — the serving hot path, where a
    /// worker keeps one [`ExecScratch`] across its whole lifetime. Results
    /// are identical to [`Self::search_top_k`].
    pub fn search_top_k_with(
        &self,
        query: &str,
        model: RankModel,
        k: usize,
        scratch: &mut ExecScratch,
    ) -> Result<Ranked, FtslError> {
        let surface = self.rewrite_query(&parse(query, Mode::Comp)?);
        let snapshot = self.snapshot();
        let stats = self.snapshot_stats(&snapshot);
        let streamable = match model {
            RankModel::TfIdf => ftsl_exec::scored::flat_disjunction(&surface).is_some(),
            RankModel::Pra => classify(&surface, &self.registry) <= LanguageClass::Bool,
        };
        if streamable {
            let exec = SnapshotExecutor::with_options(&snapshot, &self.registry, self.options);
            let spec = ftsl_exec::ScoredTopK { k };
            let streamed = match model {
                RankModel::TfIdf => {
                    let m = stats.tfidf_model(&query_tokens(&surface), &snapshot);
                    exec.run_top_k_with(
                        &surface,
                        spec,
                        &stats,
                        &ftsl_exec::ScoreModel::TfIdf(&m),
                        scratch,
                    )
                }
                RankModel::Pra => {
                    let m = stats.pra_model(&snapshot);
                    exec.run_top_k_with(
                        &surface,
                        spec,
                        &stats,
                        &ftsl_exec::ScoreModel::Pra(&m),
                        scratch,
                    )
                }
            };
            if let Ok(out) = streamed {
                return Ok(Ranked {
                    hits: out.hits,
                    model,
                    counters: Some(out.counters),
                    trace: out.trace,
                });
            }
        }
        let mut ranked = self.ranked_surface(&surface, model, &snapshot, &stats)?;
        ranked.hits.truncate(k);
        Ok(ranked)
    }

    /// Segment-level diagnostics: per-segment footprint, document and
    /// tombstone counts (see [`SegmentReport`]), for the current snapshot.
    pub fn segment_reports(&self) -> Vec<SegmentReport> {
        self.snapshot().segment_reports()
    }

    /// Proximity-ranked NEAR/phrase search over the current snapshot:
    /// documents where `first` and `second` co-occur within `bound` token
    /// positions — in either order, or strictly `first`-before-`second`
    /// when `ordered` — ranked by [`ftsl_scoring::closeness`] of the
    /// smallest qualifying gap (adjacent pair scores 1.0). Resolves from
    /// the word-pair auxiliary index when coverage allows, skipping whole
    /// segments and whole pair blocks whose `min_gap` bound cannot beat
    /// the current k-th score, and falls back to position intersection
    /// for uncovered tokens. Tombstoned documents never surface; node ids
    /// are global.
    pub fn search_near_top_k(
        &self,
        first: &str,
        second: &str,
        bound: u32,
        ordered: bool,
        k: usize,
    ) -> ScoredOutput {
        self.search_near_top_k_with(first, second, bound, ordered, k, &mut ExecScratch::new())
    }

    /// [`Self::search_near_top_k`] threading caller-owned reusable
    /// evaluation state — the serving hot path.
    pub fn search_near_top_k_with(
        &self,
        first: &str,
        second: &str,
        bound: u32,
        ordered: bool,
        k: usize,
        scratch: &mut ExecScratch,
    ) -> ScoredOutput {
        // Query tokens get the same analysis as indexed text; a token the
        // analyzer drops (stop word) can never match, so the answer is
        // empty without touching the index.
        let (Some(first), Some(second)) =
            (self.analysis.analyze(first), self.analysis.analyze(second))
        else {
            return ScoredOutput {
                hits: Vec::new(),
                counters: ftsl_index::AccessCounters::new(),
                path: ScoredPath::PairProximity,
                trace: None,
            };
        };
        let q = PairQuery {
            first,
            second,
            directed: ordered,
            bound,
        };
        let snapshot = self.snapshot();
        let exec = SnapshotExecutor::with_options(&snapshot, &self.registry, self.options);
        exec.run_near_top_k_with(&q, k, scratch)
    }

    /// `EXPLAIN ANALYZE` over the current snapshot: run the query with
    /// tracing enabled and render the span tree — parse/rewrite, then
    /// per-segment engine work with counter deltas and pair-path vs
    /// fallback attribution — plus per-segment residency footprints.
    pub fn explain_analyze(&self, query: &str) -> Result<String, FtslError> {
        let mut tb = ftsl_obs::TraceBuilder::new();
        let parse_span = tb.open("parse+rewrite");
        let surface = self.rewrite_query(&parse(query, Mode::Comp)?);
        tb.close(parse_span);
        let class = classify(&surface, &self.registry);
        let snapshot = self.snapshot();
        let mut options = self.options;
        options.trace = true;
        let exec = SnapshotExecutor::with_options(&snapshot, &self.registry, options);
        let exec_span = tb.open("execute");
        let mut output = exec.run_surface(&surface, EngineKind::Auto)?;
        if let Some(t) = output.trace.take() {
            tb.adopt(*t);
        }
        tb.close(exec_span);
        let trace = tb.finish();
        let mut out = String::new();
        out.push_str(&format!("language class: {class}\n"));
        out.push_str(&format!("engine: {}\n", output.engine));
        out.push_str(&format!(
            "snapshot: version {} · {} segment(s)\n",
            self.version(),
            snapshot.segments().len()
        ));
        out.push_str(&format!("hits: {}\n", output.nodes.len()));
        out.push_str("profile:\n");
        out.push_str(&trace.render());
        for (i, seg) in snapshot.segments().iter().enumerate() {
            out.push_str(&format!(
                "segment {i}: {}\n",
                seg.data().index().memory_footprint()
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ftsl;

    fn manual() -> LiveConfig {
        LiveConfig {
            background_merge: false,
            ..LiveConfig::default()
        }
    }

    fn fixture() -> LiveFtsl {
        let e = LiveFtsl::with_config(manual());
        e.add("usability of a software measures how well the software supports users");
        e.add("an efficient algorithm for task completion");
        e.flush();
        e.add("software task completion with efficient usability testing");
        e.add("");
        e
    }

    #[test]
    fn live_search_matches_frozen_engine() {
        let live = fixture();
        let frozen = Ftsl::from_texts(&[
            "usability of a software measures how well the software supports users",
            "an efficient algorithm for task completion",
            "software task completion with efficient usability testing",
            "",
        ]);
        for q in [
            "'software' AND 'usability'",
            "'software' AND NOT 'efficient'",
            "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' \
             AND ordered(p1,p2) AND distance(p1,p2,0))",
            "EVERY p1 (p1 HAS 'software')",
        ] {
            assert_eq!(
                live.search(q).unwrap().node_ids(),
                frozen.search(q).unwrap().node_ids(),
                "query {q}"
            );
        }
    }

    #[test]
    fn deletes_take_effect_immediately_and_ids_stay_stable() {
        let live = fixture();
        assert_eq!(live.search("'software'").unwrap().node_ids(), vec![0, 2]);
        assert!(live.delete(NodeId(0)));
        assert_eq!(live.search("'software'").unwrap().node_ids(), vec![2]);
        let d = live.add("software again");
        assert_eq!(d, NodeId(4));
        assert_eq!(live.search("'software'").unwrap().node_ids(), vec![2, 4]);
    }

    #[test]
    fn ranked_and_top_k_agree_with_rebuilt_frozen_engine() {
        let live = fixture();
        live.delete(NodeId(1));
        live.add("usability testing of software tools");
        // Rebuild a frozen engine over the survivors, in order.
        let frozen = Ftsl::from_texts(&[
            "usability of a software measures how well the software supports users",
            "software task completion with efficient usability testing",
            "",
            "usability testing of software tools",
        ]);
        // Map live global ids -> frozen dense ids: 0->0, 2->1, 3->2, 4->3.
        let remap = |n: NodeId| match n.0 {
            0 => 0u32,
            2 => 1,
            3 => 2,
            4 => 3,
            other => panic!("unexpected live id {other}"),
        };
        for model in [RankModel::TfIdf, RankModel::Pra] {
            let a = live
                .search_ranked("'software' OR 'usability'", model)
                .unwrap();
            let b = frozen
                .search_ranked("'software' OR 'usability'", model)
                .unwrap();
            assert_eq!(a.hits.len(), b.hits.len());
            for (x, y) in a.hits.iter().zip(&b.hits) {
                assert_eq!(remap(x.0), y.0 .0, "{model:?} order");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "{model:?} score bits");
            }
            let a = live
                .search_top_k("'software' OR 'usability'", model, 2)
                .unwrap();
            let b = frozen
                .search_top_k("'software' OR 'usability'", model, 2)
                .unwrap();
            assert!(a.counters.is_some(), "live top-k streams");
            for (x, y) in a.hits.iter().zip(&b.hits) {
                assert_eq!(remap(x.0), y.0 .0);
                assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn snapshot_pins_a_consistent_view() {
        let live = fixture();
        let snap = live.snapshot();
        live.add("a new software document");
        live.delete(NodeId(2));
        assert_eq!(snap.live_doc_count(), 4, "pinned");
        // Fresh queries see the new state.
        assert_eq!(live.search("'software'").unwrap().node_ids(), vec![0, 4]);
    }

    #[test]
    fn snapshot_and_stats_are_cached_per_version() {
        let live = fixture();
        let s1 = live.snapshot();
        let s2 = live.snapshot();
        assert_eq!(s1.version(), s2.version());
        let st1 = live.snapshot_stats(&s1);
        let st2 = live.snapshot_stats(&s2);
        assert!(Arc::ptr_eq(&st1, &st2), "stats computed once per version");
        live.add("invalidates");
        let s3 = live.snapshot();
        assert_ne!(s1.version(), s3.version());
    }

    #[test]
    fn comp_shapes_fall_back_to_exhaustive_rank() {
        let live = fixture();
        let r = live
            .search_top_k("SOME p1 (p1 HAS 'software')", RankModel::TfIdf, 1)
            .unwrap();
        assert!(r.counters.is_none(), "COMP shape cannot stream");
        assert_eq!(r.hits.len(), 1);
    }

    #[test]
    fn empty_live_engine_serves_queries() {
        let live = LiveFtsl::with_config(manual());
        assert!(live.search("'anything'").unwrap().nodes.is_empty());
        assert!(live
            .search_ranked("'anything'", RankModel::TfIdf)
            .unwrap()
            .hits
            .is_empty());
    }
}
