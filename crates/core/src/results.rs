//! Search result types.

use crate::RankModel;
use ftsl_exec::engine::EngineUsed;
use ftsl_index::AccessCounters;
use ftsl_lang::LanguageClass;
use ftsl_model::NodeId;

/// Boolean (unranked) search results.
#[derive(Clone, Debug)]
pub struct SearchResults {
    /// Matching context nodes, ascending by id.
    pub nodes: Vec<NodeId>,
    /// Inverted-list access counters for the run.
    pub counters: AccessCounters,
    /// The engine that produced the result.
    pub engine: EngineUsed,
    /// The query's language class.
    pub class: LanguageClass,
    /// Span tree recorded when the engine ran with
    /// [`ftsl_exec::engine::ExecOptions::trace`] set.
    pub trace: Option<Box<ftsl_obs::Trace>>,
}

impl SearchResults {
    /// Node ids as raw integers (convenient in tests and examples).
    pub fn node_ids(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.0).collect()
    }

    /// Number of hits.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff nothing matched.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Ranked search results.
#[derive(Clone, Debug)]
pub struct Ranked {
    /// `(node, score)` pairs, descending by score.
    pub hits: Vec<(NodeId, f64)>,
    /// The scoring model used.
    pub model: RankModel,
    /// Access counters when the result came from the streaming top-k
    /// engine (`None` for exhaustive scored-algebra ranking, which
    /// materializes relations instead of walking cursors).
    pub counters: Option<AccessCounters>,
    /// Span tree recorded when the engine ran with
    /// [`ftsl_exec::engine::ExecOptions::trace`] set.
    pub trace: Option<Box<ftsl_obs::Trace>>,
}

impl Ranked {
    /// The top hit, if any.
    pub fn top(&self) -> Option<(NodeId, f64)> {
        self.hits.first().copied()
    }
}
