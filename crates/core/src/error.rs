//! Unified error type for the facade.

use std::fmt;

/// Any error the facade can produce.
#[derive(Clone, Debug)]
pub enum FtslError {
    /// Parse/lowering error.
    Lang(String),
    /// Execution error.
    Exec(String),
    /// Internal translation error.
    Internal(String),
}

impl fmt::Display for FtslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtslError::Lang(m) => write!(f, "query error: {m}"),
            FtslError::Exec(m) => write!(f, "execution error: {m}"),
            FtslError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for FtslError {}

impl From<ftsl_lang::LangError> for FtslError {
    fn from(e: ftsl_lang::LangError) -> Self {
        FtslError::Lang(e.to_string())
    }
}

impl From<ftsl_exec::ExecError> for FtslError {
    fn from(e: ftsl_exec::ExecError) -> Self {
        FtslError::Exec(e.to_string())
    }
}
