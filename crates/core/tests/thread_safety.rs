//! Compile-time thread-safety assertions for everything the serving layer
//! shares across worker threads.
//!
//! Concurrent serving hands one `Arc<LiveFtsl>` to N workers, each of
//! which clones `Snapshot`s (Arc'd `SegmentData` + `DeleteSet`) and reads
//! shared `SnapshotStats`. All of that requires `Send + Sync` — and those
//! bounds are *structural*, so an innocent-looking refactor (an `Rc` in
//! the tokenizer, a `Cell` counter in shared index data) would silently
//! revoke them and only explode at the first `thread::spawn`. Asserting
//! the bounds here turns that integration-time failure into a compile
//! error pointing at the exact type.

use ftsl_core::{Ftsl, LiveFtsl};
use ftsl_exec::ExecScratch;
use ftsl_index::{
    AccessCounters, BlockList, DeleteSet, InvertedIndex, LiveIndex, MemSegment, PostingList,
    SegmentData, Snapshot, SnapshotSegment,
};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::{ScoreStats, SnapshotStats};

fn assert_send_sync<T: Send + Sync>() {}

/// `Send` without `Sync`: enough for types workers own exclusively and
/// may be handed between threads (per-worker scratch).
fn assert_send<T: Send>() {}

#[test]
fn snapshot_types_are_send_sync() {
    // The point-in-time view workers pin per query, and its parts.
    assert_send_sync::<Snapshot>();
    assert_send_sync::<SnapshotSegment>();
    assert_send_sync::<SegmentData>();
    assert_send_sync::<DeleteSet>();
}

#[test]
fn sealed_index_data_is_send_sync() {
    // Everything reachable from a sealed segment: the inverted index with
    // both layouts, the write buffer the next flush seals, raw lists.
    assert_send_sync::<InvertedIndex>();
    assert_send_sync::<MemSegment>();
    assert_send_sync::<BlockList>();
    assert_send_sync::<PostingList>();
    assert_send_sync::<AccessCounters>();
}

#[test]
fn scoring_statistics_are_send_sync() {
    // Shared read-only between workers via `Arc<SnapshotStats>`.
    assert_send_sync::<SnapshotStats>();
    assert_send_sync::<ScoreStats>();
}

#[test]
fn engines_are_send_sync() {
    // The `Arc<LiveFtsl>` every pool worker holds, the frozen facade, the
    // live index underneath, and the predicate registry queries consult.
    assert_send_sync::<LiveFtsl>();
    assert_send_sync::<Ftsl>();
    assert_send_sync::<LiveIndex>();
    assert_send_sync::<PredicateRegistry>();
}

#[test]
fn per_worker_scratch_is_send() {
    // Owned by exactly one worker but created on the spawning thread, so
    // it must move across the spawn boundary.
    assert_send::<ExecScratch>();
}
