//! Differential properties of the **global** top-k pruning path.
//!
//! The contract under test: after any interleaving of adds, deletes,
//! flushes, and merges, [`SnapshotExecutor::run_top_k`] — one shared
//! bounded heap across every segment, segments ordered by descending
//! impact bound, whole segments skipped when their bound cannot beat the
//! current k-th score — returns results *bit-identical* (ids through the
//! global→dense remap, scores by exact bit pattern) to the single-index
//! streaming engine run over a monolithic rebuild of the survivors.
//!
//! Pruning must be invisible: skipping a segment, tightening the entry
//! bound mid-stream, or arriving at a segment with a heap already full
//! from earlier segments may only ever avoid work, never change answers.
//! The battery covers TF-IDF and PRA, both physical layouts, and
//! k ∈ {1, 10, 100} — the last always larger than any corpus these
//! sequences can produce, so the no-pruning (heap never fills) region is
//! exercised alongside the aggressive-pruning one.
//!
//! The scheduled CI fuzz job raises the case count via
//! `FTSL_PROPTEST_CASES`; the default keeps PR builds quick.

use ftsl_core::{Ftsl, LiveConfig, LiveFtsl};
use ftsl_exec::engine::ExecOptions;
use ftsl_exec::snapshot::SnapshotExecutor;
use ftsl_exec::{ScoreModel, ScoredTopK};
use ftsl_index::IndexLayout;
use ftsl_model::NodeId;
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::{PraModel, ScoreStats, SnapshotStats, TfIdfModel};
use proptest::prelude::*;
use std::collections::HashMap;

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// One mutation against the live index (same shape as `live_prop.rs`).
#[derive(Clone, Debug)]
enum Op {
    Add(Vec<usize>),
    Delete(usize),
    Flush,
    MergeTier,
    MergeAll,
}

fn render(tokens: &[usize]) -> String {
    let mut text = String::new();
    for &t in tokens {
        match t {
            0..=5 => {
                text.push_str(VOCAB[t]);
                text.push(' ');
            }
            6 | 7 => text.push_str(". "),
            _ => text.push_str("\n\n"),
        }
    }
    text
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            5 => proptest::collection::vec(0usize..9, 0..12).prop_map(Op::Add),
            3 => (0usize..64).prop_map(Op::Delete),
            2 => Just(Op::Flush),
            1 => Just(Op::MergeTier),
            1 => Just(Op::MergeAll),
        ],
        1..32,
    )
}

fn manual_config() -> LiveConfig {
    LiveConfig {
        background_merge: false,
        // Small thresholds so random sequences produce real multi-segment
        // snapshots with tombstones in them.
        flush_threshold: 6,
        merge_fanin: 2,
        ..LiveConfig::default()
    }
}

/// Replay `ops`; returns the live engine plus the surviving `(global id,
/// text)` pairs in ascending global order.
fn apply(ops: &[Op]) -> (LiveFtsl, Vec<(u32, String)>) {
    let engine = LiveFtsl::with_config(manual_config());
    let mut docs: Vec<(u32, String, bool)> = Vec::new();
    for op in ops {
        match op {
            Op::Add(tokens) => {
                let text = render(tokens);
                let node = engine.add(&text);
                docs.push((node.0, text, true));
            }
            Op::Delete(i) => {
                if !docs.is_empty() {
                    let i = i % docs.len();
                    if docs[i].2 {
                        assert!(engine.delete(NodeId(docs[i].0)), "live doc must delete");
                        docs[i].2 = false;
                    }
                }
            }
            Op::Flush => {
                engine.flush();
            }
            Op::MergeTier => {
                engine.live_index().maybe_merge();
            }
            Op::MergeAll => {
                engine.merge();
            }
        }
    }
    let survivors = docs
        .into_iter()
        .filter(|(_, _, alive)| *alive)
        .map(|(g, t, _)| (g, t))
        .collect();
    (engine, survivors)
}

/// Frozen oracle over the survivors, plus the global→dense id map.
fn rebuild(survivors: &[(u32, String)]) -> (Ftsl, HashMap<u32, u32>) {
    let texts: Vec<&str> = survivors.iter().map(|(_, t)| t.as_str()).collect();
    let remap = survivors
        .iter()
        .enumerate()
        .map(|(dense, &(global, _))| (global, dense as u32))
        .collect();
    (Ftsl::from_texts(&texts), remap)
}

/// Flat disjunctions: the shape TF-IDF streaming ranks (and PRA too).
const FLAT_QUERIES: &[(&str, &[&str])] = &[
    ("'alpha'", &["alpha"]),
    ("'alpha' OR 'beta' OR 'eps'", &["alpha", "beta", "eps"]),
    (
        "'gamma' OR 'delta' OR 'zeta' OR 'alpha'",
        &["gamma", "delta", "zeta", "alpha"],
    ),
];

/// BOOL tree shapes only PRA's operator-scored streams can rank.
const TREE_QUERIES: &[&str] = &[
    "('alpha' AND 'beta') OR 'gamma'",
    "'zeta' AND NOT 'alpha'",
    "('alpha' AND 'beta') OR NOT 'gamma'",
];

/// k values: aggressive pruning (1), typical (10), and larger than any
/// corpus these op sequences can produce (100) so the heap never fills.
const KS: [usize; 3] = [1, 10, 100];

fn assert_hits_bit_identical(
    live: &[(NodeId, f64)],
    oracle: &[(NodeId, f64)],
    remap: &HashMap<u32, u32>,
    ctx: &str,
) -> Result<(), ()> {
    prop_assert_eq!(live.len(), oracle.len(), "{}: hit count", ctx);
    for (l, o) in live.iter().zip(oracle) {
        let dense = *remap
            .get(&l.0 .0)
            .unwrap_or_else(|| panic!("{ctx}: hit {} is not a survivor", l.0 .0));
        prop_assert_eq!(dense, o.0 .0, "{}: ranked ids", ctx);
        prop_assert_eq!(l.1.to_bits(), o.1.to_bits(), "{}: score bits", ctx);
    }
    Ok(())
}

/// The full battery: both models, both layouts, all k, flat and tree
/// shapes, globally-pruned snapshot run vs monolithic single-index run.
fn assert_global_matches_oracle(
    engine: &LiveFtsl,
    frozen: &Ftsl,
    remap: &HashMap<u32, u32>,
) -> Result<(), ()> {
    let snapshot = engine.snapshot();
    let stats = SnapshotStats::compute(&snapshot);
    let frozen_stats = ScoreStats::compute(frozen.corpus(), frozen.index());
    let reg = PredicateRegistry::with_builtins();
    let segments = snapshot.segments().len() as u64;
    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let options = ExecOptions {
            layout,
            ..Default::default()
        };
        let exec = SnapshotExecutor::with_options(&snapshot, &reg, options);
        for (query, tokens) in FLAT_QUERIES {
            let q = ftsl_lang::parse(query, ftsl_lang::Mode::Comp).unwrap();
            let live_tfidf = stats.tfidf_model(tokens, &snapshot);
            let frozen_tfidf = TfIdfModel::for_query(tokens, frozen.corpus(), &frozen_stats);
            let live_pra = stats.pra_model(&snapshot);
            let frozen_pra = PraModel::new(frozen.corpus(), &frozen_stats);
            for k in KS {
                let spec = ScoredTopK { k };
                let live = exec
                    .run_top_k(&q, spec, &stats, &ScoreModel::TfIdf(&live_tfidf))
                    .expect("global tfidf topk");
                let oracle = ftsl_exec::scored::run_scored_top_k(
                    &q,
                    frozen.corpus(),
                    frozen.index(),
                    &frozen_stats,
                    &ScoreModel::TfIdf(&frozen_tfidf),
                    layout,
                    spec,
                )
                .expect("oracle tfidf topk");
                let ctx = format!("tfidf {query} k={k} {layout:?}");
                assert_hits_bit_identical(&live.hits, &oracle.hits, remap, &ctx)?;
                prop_assert!(live.counters.segments_skipped <= segments, "{}", ctx);

                let live = exec
                    .run_top_k(&q, spec, &stats, &ScoreModel::Pra(&live_pra))
                    .expect("global pra topk");
                let oracle = ftsl_exec::scored::run_scored_top_k(
                    &q,
                    frozen.corpus(),
                    frozen.index(),
                    &frozen_stats,
                    &ScoreModel::Pra(&frozen_pra),
                    layout,
                    spec,
                )
                .expect("oracle pra topk");
                let ctx = format!("pra {query} k={k} {layout:?}");
                assert_hits_bit_identical(&live.hits, &oracle.hits, remap, &ctx)?;
            }
        }
        for query in TREE_QUERIES {
            let q = ftsl_lang::parse(query, ftsl_lang::Mode::Comp).unwrap();
            let live_pra = stats.pra_model(&snapshot);
            let frozen_pra = PraModel::new(frozen.corpus(), &frozen_stats);
            for k in KS {
                let spec = ScoredTopK { k };
                let live = exec
                    .run_top_k(&q, spec, &stats, &ScoreModel::Pra(&live_pra))
                    .expect("global pra tree topk");
                let oracle = ftsl_exec::scored::run_scored_top_k(
                    &q,
                    frozen.corpus(),
                    frozen.index(),
                    &frozen_stats,
                    &ScoreModel::Pra(&frozen_pra),
                    layout,
                    spec,
                )
                .expect("oracle pra tree topk");
                let ctx = format!("pra tree {query} k={k} {layout:?}");
                assert_hits_bit_identical(&live.hits, &oracle.hits, remap, &ctx)?;
                prop_assert!(live.counters.segments_skipped <= segments, "{}", ctx);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// Any interleaving of adds/deletes/flushes/merges: the globally-pruned
    /// top-k over the resulting N-segment snapshot is bit-identical to the
    /// monolithic rebuild's single-index run, for every model × layout × k.
    #[test]
    fn global_topk_is_bit_identical_to_monolithic_oracle(ops in arb_ops()) {
        let (engine, survivors) = apply(&ops);
        let (frozen, remap) = rebuild(&survivors);
        assert_global_matches_oracle(&engine, &frozen, &remap)?;
    }

    /// Same contract on a snapshot pinned mid-sequence: later churn (and a
    /// full merge) must not leak into the pinned view's pruned answers.
    #[test]
    fn pinned_snapshot_prunes_against_its_own_moment(
        ops in arb_ops(),
        split in 0usize..32,
    ) {
        let split = split.min(ops.len());
        let (head, tail) = ops.split_at(split);
        let engine = LiveFtsl::with_config(manual_config());
        let mut docs: Vec<(u32, String, bool)> = Vec::new();
        let replay = |ops: &[Op], docs: &mut Vec<(u32, String, bool)>| {
            for op in ops {
                match op {
                    Op::Add(tokens) => {
                        let text = render(tokens);
                        let node = engine.add(&text);
                        docs.push((node.0, text, true));
                    }
                    Op::Delete(i) => {
                        if !docs.is_empty() {
                            let i = i % docs.len();
                            if docs[i].2 {
                                engine.delete(NodeId(docs[i].0));
                                docs[i].2 = false;
                            }
                        }
                    }
                    Op::Flush => {
                        engine.flush();
                    }
                    Op::MergeTier => {
                        engine.live_index().maybe_merge();
                    }
                    Op::MergeAll => {
                        engine.merge();
                    }
                }
            }
        };
        replay(head, &mut docs);
        let pinned = engine.snapshot();
        let survivors_then: Vec<(u32, String)> = docs
            .iter()
            .filter(|(_, _, alive)| *alive)
            .map(|(g, t, _)| (*g, t.clone()))
            .collect();
        replay(tail, &mut docs);
        engine.merge();

        let (frozen, remap) = rebuild(&survivors_then);
        let stats = SnapshotStats::compute(&pinned);
        let frozen_stats = ScoreStats::compute(frozen.corpus(), frozen.index());
        let reg = PredicateRegistry::with_builtins();
        let exec = SnapshotExecutor::new(&pinned, &reg);
        for (query, tokens) in FLAT_QUERIES {
            let q = ftsl_lang::parse(query, ftsl_lang::Mode::Comp).unwrap();
            let live_model = stats.tfidf_model(tokens, &pinned);
            let frozen_model = TfIdfModel::for_query(tokens, frozen.corpus(), &frozen_stats);
            let spec = ScoredTopK { k: 10 };
            let live = exec
                .run_top_k(&q, spec, &stats, &ScoreModel::TfIdf(&live_model))
                .expect("pinned tfidf topk");
            let oracle = ftsl_exec::scored::run_scored_top_k(
                &q,
                frozen.corpus(),
                frozen.index(),
                &frozen_stats,
                &ScoreModel::TfIdf(&frozen_model),
                IndexLayout::Blocks,
                spec,
            )
            .expect("oracle tfidf topk");
            assert_hits_bit_identical(&live.hits, &oracle.hits, &remap, query)?;
        }
    }
}

/// Deterministic skew: one segment holds a document that dominates the
/// score range, so with k=1 every later segment's bound falls below the
/// threshold and is skipped whole — and the answers are still bit-identical
/// to the oracle. Pruning that actually fires must stay invisible.
#[test]
fn skipped_segments_never_change_answers() {
    let engine = LiveFtsl::with_config(LiveConfig {
        background_merge: false,
        flush_threshold: usize::MAX,
        merge_fanin: usize::MAX,
        ..LiveConfig::default()
    });
    let mut texts: Vec<String> = Vec::new();
    let add = |engine: &LiveFtsl, texts: &mut Vec<String>, text: String| {
        engine.add(&text);
        texts.push(text);
    };
    add(&engine, &mut texts, "alpha alpha alpha alpha".to_string());
    engine.flush();
    for s in 0..8 {
        for d in 0..3 {
            add(&engine, &mut texts, format!("alpha pad{s}x{d}"));
        }
        // One document without the query token keeps idf('alpha') > 0 —
        // were df == N, every score would be zero and nothing would prune.
        add(&engine, &mut texts, format!("filler{s} filler{s}"));
        engine.flush();
    }

    let survivors: Vec<(u32, String)> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u32, t.clone()))
        .collect();
    let (frozen, remap) = rebuild(&survivors);
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.segments().len(), 9, "one strong + eight weak");
    let stats = SnapshotStats::compute(&snapshot);
    let frozen_stats = ScoreStats::compute(frozen.corpus(), frozen.index());
    let reg = PredicateRegistry::with_builtins();
    let q = ftsl_lang::parse("'alpha'", ftsl_lang::Mode::Comp).unwrap();
    let tokens = ["alpha"];
    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let options = ExecOptions {
            layout,
            ..Default::default()
        };
        let exec = SnapshotExecutor::with_options(&snapshot, &reg, options);
        let live_model = stats.tfidf_model(&tokens, &snapshot);
        let frozen_model = TfIdfModel::for_query(&tokens, frozen.corpus(), &frozen_stats);
        let spec = ScoredTopK { k: 1 };
        let live = exec
            .run_top_k(&q, spec, &stats, &ScoreModel::TfIdf(&live_model))
            .expect("skewed tfidf topk");
        assert_eq!(
            live.counters.segments_skipped, 8,
            "every weak segment skipped on {layout:?}"
        );
        let oracle = ftsl_exec::scored::run_scored_top_k(
            &q,
            frozen.corpus(),
            frozen.index(),
            &frozen_stats,
            &ScoreModel::TfIdf(&frozen_model),
            layout,
            spec,
        )
        .expect("oracle tfidf topk");
        assert_eq!(live.hits.len(), oracle.hits.len());
        for (l, o) in live.hits.iter().zip(&oracle.hits) {
            assert_eq!(remap[&l.0 .0], o.0 .0, "{layout:?}: ranked ids");
            assert_eq!(l.1.to_bits(), o.1.to_bits(), "{layout:?}: score bits");
        }
    }
}
